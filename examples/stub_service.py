#!/usr/bin/env python3
"""Typed stubs + name binding: the developer-facing surface.

The paper assumes stubs that "marshall arguments and do binding" above
gRPC.  This example shows the full developer workflow: declare a service
interface, register the server group in the binding registry, generate a
client proxy, and call it like a local object — timeouts surfacing as
exceptions rather than status codes.

Run:  python examples/stub_service.py
"""

from repro import ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.errors import RPCTimeout
from repro.stubs import (
    BindingRegistry,
    MarshallingApp,
    ServiceInterface,
    client_stub,
)

INVENTORY = ServiceInterface("inventory", ["put", "get", "keys"])


def main() -> None:
    spec = ServiceSpec(unique=True, bounded=0.5, acceptance=2)
    cluster = ServiceCluster(spec, lambda pid: MarshallingApp(KVStore()),
                             n_servers=3)

    registry = BindingRegistry()
    registry.bind("inventory", cluster.group)
    print(f"bound service 'inventory' -> group "
          f"{registry.lookup('inventory').members}")

    async def scenario():
        stub = client_stub(INVENTORY, cluster.grpc(cluster.client),
                           registry.lookup("inventory"))
        await stub.put(key="widgets", value=130)
        await stub.put(key="sprockets", value=7)
        count = await stub.get(key="widgets")
        print(f"stub.get(key='widgets')  -> {count}")
        print(f"stub.keys()              -> {await stub.keys()}")

        # Timeouts become exceptions at the stub surface.
        for pid in cluster.server_pids:
            cluster.crash(pid)
        try:
            await stub.get(key="widgets")
        except RPCTimeout as exc:
            print(f"with all replicas down  -> RPCTimeout: {exc}")

    task = cluster.spawn_client(cluster.client, scenario())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=0.5)


if __name__ == "__main__":
    main()
