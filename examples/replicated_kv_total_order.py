#!/usr/bin/env python3
"""Replicated state machine: total order, exactly-once, leader failover.

Three clients race writes to the same keys on a 3-replica KV store.  With
the Total Order micro-protocol every replica applies the same sequence,
so the replicas end byte-identical — and when the order-assigning leader
crashes, the next-highest member takes over (membership service + the
follower's tracked order counter) and new calls keep completing.

The leader is crashed at a quiescent point: the paper explicitly omits
the agreement phase that would make a crash with ORDER messages in
flight safe ("For brevity this agreement phase has been omitted"), and
this reproduction follows the paper.

Run:  python examples/replicated_kv_total_order.py
"""

from repro import LinkSpec, ServiceCluster, replicated_state_machine
from repro.apps import KVStore


def main() -> None:
    spec = replicated_state_machine(group_size=3)
    print("micro-protocols:", ", ".join(spec.micro_protocol_names()))
    cluster = ServiceCluster(
        spec, KVStore, n_servers=3, n_clients=3, seed=42,
        default_link=LinkSpec(delay=0.01, jitter=0.05),  # heavy reorder
        membership="oracle")

    async def client_loop(pid: int, rounds: int) -> None:
        for i in range(rounds):
            key = f"k{i % 4}"
            result = await cluster.call(pid, "put",
                                        {"key": key, "value": f"c{pid}-{i}"})
            assert result.ok

    async def scenario() -> None:
        # Round 1: concurrent writers under the original leader (pid 3).
        tasks = [cluster.spawn_client(pid, client_loop(pid, 4))
                 for pid in cluster.client_pids]
        for task in tasks:
            await cluster.runtime.join(task)
        print("!! crashing leader (server 3) between rounds")
        cluster.crash(3)
        # Round 2: the next-highest member (pid 2) assigns orders now.
        tasks = [cluster.spawn_client(pid, client_loop(pid, 4))
                 for pid in cluster.client_pids]
        for task in tasks:
            await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=3.0)

    print()
    logs = {}
    for pid in (1, 2):   # surviving replicas
        app = cluster.app(pid)
        logs[pid] = [(key, value) for _, key, value in app.apply_log]
        print(f"server {pid}: applied {len(logs[pid])} writes, "
              f"final state {app.data}")

    assert logs[1] == logs[2], "replicas diverged!"
    print()
    print("replicas applied IDENTICAL sequences "
          f"({len(logs[1])} writes each) despite jitter, concurrency "
          "and a leader crash.")


if __name__ == "__main__":
    main()
