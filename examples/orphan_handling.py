#!/usr/bin/env python3
"""Orphan handling: what happens to work a dead client left behind.

A client issues a slow write, crashes 100 ms in, reincarnates, and
immediately writes again.  The same story is replayed under the three
orphan policies of Section 4.4.7 and the server's application log is
shown for each — making the difference between ignoring, deferring and
killing orphans directly visible.

Run:  python examples/orphan_handling.py
"""

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore

POLICY_NOTES = {
    "none": "ignore orphans: the orphan finishes and may interleave",
    "avoid": "interference avoidance: new generation waits for orphans",
    "terminate": "orphan termination: orphans are killed on detection",
}


def run_policy(policy: str) -> None:
    spec = ServiceSpec(orphans=policy, unique=True, bounded=10.0)
    cluster = ServiceCluster(
        spec, lambda pid: KVStore(op_delay=0.5), n_servers=1,
        default_link=LinkSpec(delay=0.005, jitter=0.0))
    client = cluster.client

    async def doomed():
        await cluster.call(client, "put",
                           {"key": "from-old-incarnation", "value": 1})

    async def fresh():
        result = await cluster.call(client, "put",
                                    {"key": "from-new-incarnation",
                                     "value": 2})
        print(f"   new incarnation's call: {result.status.value} at "
              f"t={cluster.runtime.now() * 1000:.0f} ms")

    async def scenario():
        cluster.spawn_client(client, doomed())
        await cluster.runtime.sleep(0.1)
        cluster.crash(client)       # the slow put is now an orphan
        await cluster.runtime.sleep(0.05)
        cluster.recover(client)
        task = cluster.spawn_client(client, fresh())
        await cluster.runtime.join(task)

    print(f"\n== orphans={policy!r}: {POLICY_NOTES[policy]}")
    cluster.run_scenario(scenario(), extra_time=2.0)
    log = [key for _, key, _ in cluster.app(1).apply_log]
    print(f"   server apply log: {log}")
    if policy == "terminate":
        kills = cluster.grpc(1).micro("Terminate_Orphan").kills
        print(f"   orphans killed: {kills}")


def main() -> None:
    for policy in ("none", "avoid", "terminate"):
        run_policy(policy)


if __name__ == "__main__":
    main()
