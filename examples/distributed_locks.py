#!/usr/bin/env python3
"""A replicated lock service: why coordination wants total order.

Two clients race to acquire the same lock on a 3-replica lock service
over a jittery network.  Without an ordering micro-protocol the replicas
can disagree about the winner (split brain); the identical application
under Total Order gives one winner everywhere, every time — the
configuration change is one field of the spec.

Run:  python examples/distributed_locks.py
"""

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import LockService
from repro.core.microprotocols import majority_vote

JITTERY = LinkSpec(delay=0.01, jitter=0.06)
RUNS = 6


def race(ordering: str, seed: int):
    spec = ServiceSpec(unique=True, ordering=ordering, acceptance=3,
                       bounded=0.0, collation=(majority_vote, dict))
    cluster = ServiceCluster(spec, LockService, n_servers=3, n_clients=2,
                             seed=seed, default_link=JITTERY)

    async def contender(pid, name):
        await cluster.call(pid, "acquire",
                           {"lock": "leader", "owner": name})

    async def scenario():
        a, b = cluster.client_pids
        tasks = [cluster.spawn_client(a, contender(a, "alice")),
                 cluster.spawn_client(b, contender(b, "bob"))]
        for task in tasks:
            await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=2.0)
    return [cluster.app(pid).holders.get("leader")
            for pid in cluster.server_pids]


def main() -> None:
    print(f"two clients race for one lock, {RUNS} seeded runs each\n")
    for ordering in ("none", "total"):
        split = 0
        samples = []
        for seed in range(RUNS):
            holders = race(ordering, seed)
            samples.append(holders)
            if len(set(holders)) > 1:
                split += 1
        label = "no ordering " if ordering == "none" else "total order"
        print(f"{label}: {split}/{RUNS} runs ended split-brained")
        print(f"   example run (holder per replica): {samples[0]}")
    print("\nunder total order every replica grants the same winner: "
          "agreement is the configuration, not the application.")


if __name__ == "__main__":
    main()
