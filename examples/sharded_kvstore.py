#!/usr/bin/env python3
"""A sharded key-value store where every shard has its own semantics.

The deployment plane hosts many named services on one simulated fabric,
so "sharding" here is more than data placement: each shard is a full
gRPC composite with its own ServiceSpec.  This example spans one
keyspace over three shards —

* shard-0: totally ordered, all-replica acceptance (the strict shard —
  read-modify-write keys that must agree everywhere),
* shard-1: read-optimized, acceptance one (the fast shard),
* shard-2: exactly-once semantics (the careful shard),

— then routes puts/gets through a ShardRouter (CRC-32 of the key modulo
the shard list) from a single client node that participates in all
three services at once.

Run:  python examples/sharded_kvstore.py
"""

from repro import (Deployment, exactly_once, read_optimized,
                   replicated_state_machine)
from repro.apps import build_sharded_kv


def main() -> None:
    dep = Deployment(seed=7)
    specs = [
        replicated_state_machine(2),
        read_optimized(timebound=2.0),
        exactly_once(bounded=5.0),
    ]
    kv = build_sharded_kv(dep, 3, specs=specs, servers_per_shard=2)

    print("one fabric, three shard services, different semantics:")
    for name in kv.router.services:
        svc = dep.services[name]
        print(f"  {name}: servers={svc.server_pids} "
              f"ordering={svc.spec.ordering} acceptance={svc.spec.acceptance} "
              f"unique={svc.spec.unique}")
    print()

    async def workload() -> None:
        cities = {"tucson": 520, "phoenix": 602, "yuma": 928,
                  "flagstaff": 779, "tempe": 480, "sedona": 282}
        for city, code in cities.items():
            result = await kv.put(city, code)
            print(f"  put {city:<10} -> {kv.shard_of(city):<8} "
                  f"{result.status.value}")
        result = await kv.get("tucson")
        print(f"  get tucson     <- {kv.shard_of('tucson'):<8} "
              f"value={result.args}")
        print(f"  all keys: {await kv.keys()}")

    dep.run_scenario(workload())

    print()
    print("per-shard executions (from the metrics registry):")
    for name in kv.router.services:
        count = dep.metrics.value(f"service.{name}.executions")
        print(f"  service.{name}.executions = {count:.0f}")
    print()
    print(f"keyspace spanned over {len(kv.router)} shards "
          f"on one fabric: OK")


if __name__ == "__main__":
    main()
