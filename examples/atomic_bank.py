#!/usr/bin/env python3
"""Atomic execution: surviving a crash in the middle of a bank transfer.

The bank's balances live in stable storage (they survive crashes) and a
transfer is two separate stable writes — debit, then credit — so a crash
between them corrupts the books... unless the Atomic Execution
micro-protocol is configured, whose checkpoint/rollback makes the
procedure all-or-nothing (the "at most once" column of Figure 1).

Run:  python examples/atomic_bank.py
"""

from repro import LinkSpec, ServiceCluster
from repro.apps import BankApp
from repro.core.config import at_most_once, exactly_once


def run(label: str, spec) -> None:
    cluster = ServiceCluster(
        spec.with_(acceptance=1, bounded=1.0),
        lambda pid: BankApp({"alice": 100, "bob": 100},
                            transfer_delay=0.05),
        n_servers=1, default_link=LinkSpec(delay=0.01, jitter=0.0))
    # Crash the server squarely inside the transfer's non-atomic window.
    cluster.runtime.call_later(0.035, lambda: cluster.crash(1))
    result = cluster.call_and_run(
        "transfer", {"src": "alice", "dst": "bob", "amount": 30})
    cluster.recover(1)
    cluster.settle(0.3)

    stable = cluster.node(1).stable
    alice = stable.get("acct:alice")
    bob = stable.get("acct:bob")
    print(f"\n== {label}")
    print(f"   transfer status: {result.status.value} "
          f"(server crashed mid-procedure)")
    print(f"   after recovery:  alice={alice}  bob={bob}  "
          f"total={alice + bob}")
    if alice + bob == 200:
        print("   money conserved: execution was ATOMIC")
    else:
        print("   money LOST: the debit persisted without the credit")


def main() -> None:
    print("starting balances: alice=100 bob=100 (total 200)")
    run("exactly-once (NO atomic execution)", exactly_once())
    run("at-most-once (WITH atomic execution)", at_most_once())


if __name__ == "__main__":
    main()
