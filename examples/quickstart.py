#!/usr/bin/env python3
"""Quickstart: a replicated key-value store over configurable group RPC.

Builds the paper's Section-5 read-optimized service (at-least-once,
acceptance one, synchronous calls, bounded termination, RPC-level
reliability) on three simulated replicas, issues a few calls, and shows
what the configuration machinery knows about the service.

Run:  python examples/quickstart.py
"""

from repro import ServiceCluster, read_optimized
from repro.apps import KVStore


def main() -> None:
    spec = read_optimized(timebound=1.0)
    print("service spec:", spec)
    print("micro-protocols composed (the paper's `||`):")
    for name in spec.micro_protocol_names():
        print("   ||", name)
    print("failure semantics:", spec.failure_semantics)
    print()

    cluster = ServiceCluster(spec, KVStore, n_servers=3)

    result = cluster.call_and_run("put", {"key": "city", "value": "Tucson"})
    print(f"put city=Tucson        -> {result.status.value} "
          f"(call id {result.id})")

    result = cluster.call_and_run("get", {"key": "city"})
    print(f"get city               -> {result.status.value}, "
          f"value={result.args!r}")

    result = cluster.call_and_run("keys", {})
    print(f"keys                   -> {result.args}")

    # Crash two replicas; acceptance-one keeps the service available.
    cluster.crash(2)
    cluster.crash(3)
    result = cluster.call_and_run("get", {"key": "city"})
    print(f"get with 2/3 replicas crashed -> {result.status.value}, "
          f"value={result.args!r}")

    print()
    print(f"simulated time elapsed: {cluster.runtime.now() * 1000:.1f} ms")
    print(f"network messages sent:  {cluster.trace.sends}")


if __name__ == "__main__":
    main()
