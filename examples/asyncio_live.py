#!/usr/bin/env python3
"""The same micro-protocols, running in real time on asyncio.

Everything else in this repository runs on the deterministic virtual-time
kernel; this example swaps in :class:`repro.runtime.AsyncioRuntime` and
the identical protocol code runs on the standard library event loop in
wall-clock time — the runtime abstraction at work.  The "network" is
still the simulated fabric (loss and delays included), but a second now
really is a second.

Run:  python examples/asyncio_live.py
"""

import asyncio
import time

from repro import LinkSpec, ServiceCluster, exactly_once
from repro.apps import KVStore
from repro.runtime import AsyncioRuntime


async def main() -> None:
    runtime = AsyncioRuntime()
    spec = exactly_once(acceptance=2, bounded=2.0)
    cluster = ServiceCluster(
        spec, KVStore, n_servers=3,
        default_link=LinkSpec(delay=0.02, jitter=0.01, loss=0.1),
        runtime=runtime)

    print("issuing 5 exactly-once calls over a 10%-lossy network, "
          "in real time:")
    client = cluster.client
    for i in range(5):
        wall_start = time.perf_counter()
        result = await cluster.call(client, "put",
                                    {"key": f"k{i}", "value": i})
        wall_ms = (time.perf_counter() - wall_start) * 1000
        print(f"  call {result.id}: {result.status.value:7} "
              f"in {wall_ms:6.1f} real ms")

    result = await cluster.call(client, "keys", {})
    print(f"server keys: {result.args}")
    await asyncio.sleep(0.2)   # let acks drain before teardown


if __name__ == "__main__":
    asyncio.run(main())
