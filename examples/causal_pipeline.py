#!/usr/bin/env python3
"""Causal ordering across clients (extension micro-protocol).

A producer client writes a record, then hands a *causal token* to a
consumer client (think: a message queue between services).  The consumer
updates an index entry pointing at the record.  With `ordering="causal"`
no replica can ever apply the index update before the record it points
to — even though the clients use acceptance=1 and one replica's links
are wildly erratic.  The control run shows the anomaly the guarantee
removes: dangling index entries.

Run:  python examples/causal_pipeline.py
"""

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore


def run(ordering: str, seed: int) -> int:
    spec = ServiceSpec(ordering=ordering, unique=True, acceptance=1,
                       bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=3, n_clients=2,
                             seed=seed,
                             default_link=LinkSpec(delay=0.01,
                                                   jitter=0.12))
    # One replica suffers performance failures: huge delay variance.
    cluster.fabric.set_links_to(3, LinkSpec(delay=0.02, jitter=0.5))
    producer, consumer = cluster.client_pids

    async def scenario():
        async def produce():
            await cluster.call(producer, "put",
                               {"key": "record:42", "value": "payload"})

        task = cluster.spawn_client(producer, produce())
        await cluster.runtime.join(task)

        if ordering == "causal":
            token = cluster.grpc(producer).micro("Causal_Order").token()
            cluster.grpc(consumer).micro("Causal_Order").join(token)

        async def consume():
            await cluster.call(consumer, "put",
                               {"key": "index:latest", "value": "record:42"})

        task = cluster.spawn_client(consumer, consume())
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=3.0)

    dangling = 0
    for pid in cluster.server_pids:
        log = [key for _, key, _ in cluster.app(pid).apply_log]
        if log.index("index:latest") < log.index("record:42"):
            dangling += 1
    return dangling


def main() -> None:
    print("producer writes record:42, consumer (causally after) writes "
          "index:latest -> record:42\n")
    for ordering in ("none", "causal"):
        total = sum(run(ordering, seed) for seed in range(6))
        label = "no ordering    " if ordering == "none" else \
                "causal ordering"
        print(f"{label}: replicas that applied the index BEFORE the "
              f"record (6 runs x 3 replicas): {total}")
    print("\nwith causal order, a reader following the index can never "
          "hit a dangling pointer.")


if __name__ == "__main__":
    main()
