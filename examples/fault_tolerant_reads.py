#!/usr/bin/env python3
"""Section 5's motivation, measured: acceptance policy vs response time.

Five replicas serve read-only requests; one replica suffers a
performance failure (every message to it is delayed 250 ms).  The same
workload runs under three acceptance policies and a collation choice:

* acceptance=1  (the paper's read-optimized service): first reply wins;
* acceptance=3  (majority): still fast — the four healthy replicas
  outvote the slow one;
* acceptance=ALL: every call waits for the slow replica...
* ...unless a membership oracle marks a *crashed* replica failed, in
  which case ALL completes with the survivors.

Run:  python examples/fault_tolerant_reads.py
"""

from repro import LinkSpec, ServiceCluster, read_optimized
from repro.apps import KVStore
from repro.bench import ClosedLoopWorkload, read_only_workload
from repro.core.microprotocols import ALL

N_SERVERS = 5
SLOW = 0.25
CALLS = 40


def measure(label: str, acceptance: int, *, crash_slow: bool = False,
            membership=None) -> None:
    spec = read_optimized(timebound=5.0, acceptance=acceptance)
    cluster = ServiceCluster(spec, KVStore, n_servers=N_SERVERS, seed=1,
                             default_link=LinkSpec(delay=0.01,
                                                   jitter=0.005),
                             membership=membership)
    cluster.make_slow(N_SERVERS, SLOW)
    if crash_slow:
        cluster.crash(N_SERVERS)
    workload = ClosedLoopWorkload(lambda i: read_only_workload(seed=i),
                                  calls_per_client=CALLS)
    result = workload.run(cluster)
    stats = result.latency_stats().scaled(1000.0)
    print(f"{label:<46} mean={stats.mean:7.2f} ms   "
          f"p95={stats.p95:7.2f} ms   ok={result.ok_ratio:.0%}")


def main() -> None:
    print(f"{N_SERVERS} replicas, replica {N_SERVERS} suffers a "
          f"+{SLOW * 1000:.0f} ms performance failure; "
          f"{CALLS} read-only calls\n")
    measure("acceptance=1 (paper's read-optimized)", 1)
    measure("acceptance=3 (majority)", 3)
    measure("acceptance=ALL", ALL)
    measure("acceptance=ALL, slow replica crashed + membership",
            ALL, crash_slow=True, membership="oracle")


if __name__ == "__main__":
    main()
