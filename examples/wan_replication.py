#!/usr/bin/env python3
"""Geo-replication: acceptance policy vs WAN round trips.

Five replicas across two datacenters (3 in DC-A with the client, 2 in
DC-B behind a 40 ms WAN link).  The acceptance limit decides whether a
write's latency is a LAN or a WAN quantity:

* acceptance=3 can complete entirely inside DC-A (sub-millisecond);
* acceptance=5 (ALL) must hear from DC-B on every call (~2 WAN hops).

Run:  python examples/wan_replication.py
"""

from repro import ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.bench import ClosedLoopWorkload, kv_workload
from repro.net.topology import two_datacenters

DC_A_SERVERS = [1, 2, 3]
DC_B_SERVERS = [4, 5]
CALLS = 40


def measure(acceptance: int, label: str) -> None:
    spec = ServiceSpec(unique=True, acceptance=acceptance, bounded=10.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=5, seed=7)
    # Client 101 lives in DC-A.
    two_datacenters(cluster.fabric,
                    DC_A_SERVERS + [cluster.client], DC_B_SERVERS)
    workload = ClosedLoopWorkload(lambda i: kv_workload(seed=i),
                                  calls_per_client=CALLS)
    result = workload.run(cluster)
    stats = result.latency_stats().scaled(1000.0)
    print(f"{label:<34} mean={stats.mean:7.2f} ms   "
          f"p95={stats.p95:7.2f} ms")


def main() -> None:
    print("5 replicas: 3 in DC-A (with the client), 2 in DC-B over a "
          "40 ms WAN\n")
    measure(1, "acceptance=1 (nearest replica)")
    measure(3, "acceptance=3 (DC-A quorum)")
    measure(5, "acceptance=ALL (cross-DC)")
    print("\nthe acceptance property turns the same service from a "
          "LAN-latency\nsystem into a WAN-latency one — choose per "
          "operation class.")


if __name__ == "__main__":
    main()
