"""X4 — message loss vs completion latency under Reliable Communication
(extension).

Sweeps link omission rates with the exactly-once service.  Expected
shape: every call still completes (reliability = retransmission), but
mean latency and messages/call grow with the loss rate, with the tail
(p95) growing fastest — each lost message costs one retransmission
timeout.
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster
from repro.apps import KVStore
from repro.bench import ClosedLoopWorkload, banner, kv_workload, render_table
from repro.core.config import exactly_once

CALLS = 40
LOSS_RATES = (0.0, 0.05, 0.1, 0.2, 0.3)
RETRANS = 0.08


def run_point(loss):
    link = LinkSpec(delay=0.01, jitter=0.004, loss=loss)
    spec = exactly_once(acceptance=3, bounded=30.0,
                        retrans_timeout=RETRANS)
    cluster = ServiceCluster(spec, KVStore, n_servers=3, seed=6,
                             default_link=link, keep_trace=False)
    workload = ClosedLoopWorkload(lambda i: kv_workload(seed=i),
                                  calls_per_client=CALLS)
    result = workload.run(cluster, settle_time=1.0)
    stats = result.latency_stats().scaled(1000.0)
    return {"loss": loss, "mean_ms": stats.mean, "p95_ms": stats.p95,
            "msgs_per_call": result.messages_per_call,
            "ok": result.ok_ratio}


def test_x4_loss_sweep(benchmark):
    def experiment():
        return [run_point(loss) for loss in LOSS_RATES]

    rows = run_once(benchmark, experiment)

    table = render_table(
        ["loss", "mean ms", "p95 ms", "msgs/call", "ok%"],
        [[f"{r['loss']:.0%}", f"{r['mean_ms']:.2f}",
          f"{r['p95_ms']:.2f}", f"{r['msgs_per_call']:.1f}",
          f"{r['ok'] * 100:.0f}"] for r in rows])
    save_result("x4_loss_sweep", "\n".join([
        banner("X4 — omission failures vs completion latency",
               f"exactly-once, acceptance=3, retransmission timer "
               f"{RETRANS * 1000:.0f}ms, {CALLS} calls"),
        table]))
    attach(benchmark, {f"loss={r['loss']:.0%}": round(r["mean_ms"], 2)
                       for r in rows})

    # Reliability holds: everything completes at every loss rate.
    assert all(r["ok"] == 1.0 for r in rows)
    # Latency and message cost grow with loss.
    assert rows[-1]["mean_ms"] > rows[0]["mean_ms"]
    assert rows[-1]["msgs_per_call"] > rows[0]["msgs_per_call"]
    # The tail pays retransmission timeouts: p95 at 30% loss at least
    # one full retransmission interval above the lossless p95.
    assert rows[-1]["p95_ms"] > rows[0]["p95_ms"] + RETRANS * 1000 / 2
