"""E2 — Figure 2: the semantic property taxonomy and its dependencies.

Regenerates the property/variant table and the dependency edges, then
*demonstrates* the paper's example edge ("to implement FIFO or total
ordering ... the reliability property must hold") empirically: a
hand-assembled composite with FIFO Order but no Reliable Communication
stalls under message loss, while the properly configured service
completes every call.
"""

import pytest
from _common import attach, run_once, save_result

from repro import Group, LinkSpec, Status
from repro.apps import KVStore, ServerDispatcher
from repro.bench import banner, render_table
from repro.core.grpc import GroupRPC
from repro.core.messages import NetMsg
from repro.core.microprotocols import (
    Acceptance,
    Collation,
    FIFOOrder,
    ReliableCommunication,
    RPCMain,
    SynchronousCall,
    UniqueExecution,
    last_reply,
)
from repro.core.properties import CATEGORIES, figure1_rows, figure2_edges
from repro.net import NetworkFabric, Node, UnreliableTransport
from repro.runtime import SimRuntime
from repro.sim import RandomSource
from repro.xkernel import TypeDemux, compose_stack

LOSSY = LinkSpec(delay=0.01, jitter=0.02, loss=0.2)


def build_manual_cluster(with_reliable: bool, seed: int = 0):
    """A 2-server deployment assembled without config validation."""
    rt = SimRuntime()
    fabric = NetworkFabric(rt, rand=RandomSource(seed), default_link=LOSSY)
    group = Group("servers", [1, 2])
    grpcs, apps = {}, {}
    for pid in (1, 2, 101):
        node = Node(pid, rt, fabric)
        grpc = GroupRPC(node)
        micros = [RPCMain(), SynchronousCall()]
        if with_reliable:
            micros.append(ReliableCommunication(0.05))
            micros.append(UniqueExecution())
        micros += [FIFOOrder(), Collation(last_reply, None), Acceptance(2)]
        grpc.add(*micros)
        demux = TypeDemux(f"demux@{pid}")
        compose_stack(demux, UnreliableTransport(node))
        demux.attach(NetMsg, grpc)
        if pid != 101:
            app = KVStore()
            compose_stack(ServerDispatcher(node, app), grpc)
            apps[pid] = app
        node.start()
        grpcs[pid] = grpc
    return rt, grpcs, group, apps


def drive_calls(rt, grpc, group, n_calls: int, deadline: float):
    """Issue n sequential calls; count how many completed by deadline."""
    done = []

    async def client():
        for i in range(n_calls):
            result = await grpc.call("put", {"key": f"k{i}", "value": i},
                                     group)
            done.append(result.status)

    grpc.node.spawn(client())
    rt.kernel.run_until(deadline)
    return len(done)


def test_figure2_property_graph(benchmark):
    def experiment():
        outcomes = {}
        for with_reliable in (False, True):
            rt, grpcs, group, apps = build_manual_cluster(with_reliable)
            outcomes[with_reliable] = drive_calls(
                rt, grpcs[101], group, n_calls=10, deadline=30.0)
        return outcomes

    outcomes = run_once(benchmark, experiment)

    taxonomy = render_table(
        ["property", "scope", "variants"],
        [[c.name, "group RPC" if c.group_only else "RPC",
          " | ".join(c.variants)] for c in CATEGORIES])
    edges = render_table(
        ["dependent property", "requires"],
        [[a, b] for a, b in figure2_edges()])
    demo = render_table(
        ["configuration", "calls completed of 10 (30s budget, 20% loss)"],
        [["FIFO Order WITHOUT Reliable Communication",
          outcomes[False]],
         ["FIFO Order WITH Reliable Communication", outcomes[True]]])
    save_result("figure2_property_graph", "\n".join([
        banner("Figure 2 — semantic properties of group RPC",
               "taxonomy + dependency edges + empirical edge check"),
        taxonomy, "", edges, "",
        "Empirical check of the ordering -> reliability edge:", demo]))
    attach(benchmark, {"completed_without_reliable": outcomes[False],
                       "completed_with_reliable": outcomes[True]})

    # The dependency is real: without reliability the FIFO gate starves
    # after the first lost call; with it, everything completes.
    assert outcomes[True] == 10
    assert outcomes[False] < 10


def test_figure1_static_matrix(benchmark):
    rows = run_once(benchmark, figure1_rows)
    assert rows == [("at least once", "NO", "NO"),
                    ("exactly once", "YES", "NO"),
                    ("at most once", "YES", "YES")]
