"""X20 — coordinator failover: killing the migration driver mid-flight.

The replicated placement-view plane claims that a migration survives
its coordinator: the plan and warm snapshots are persisted on every
coordinator candidate, so a successor (largest live candidate pid)
either resumes from the last persisted phase or rolls the reshape back
— with zero acknowledged-call loss and no stale-epoch mis-routes.

This benchmark kills the coordinator at *each* of the four migration
phases of a 4->5 grow under a closed-loop read/write workload:

* **snapshot** / **transfer** — plan phase ``warm``: nothing
  irreversible has happened, so the successor rolls back (destination
  scrub, ``view-rollback`` tape); the ring stays at 4 shards and the
  epoch does not advance;
* **catch-up** / **cutover** — the successor resumes from the persisted
  plan (``coord-takeover`` tape) and completes the migration: 5 shards,
  epoch advanced, ``view-commit`` tape.

Every phase's run is executed **twice** and must produce an identical
result row — the determinism the whole simulation stands on, now
through a crash + takeover.
"""

import os

from _common import (attach, percentiles, run_once, save_bench_json,
                     save_result)

from repro import Deployment, LinkSpec, build_elastic_kv
from repro.bench import banner, render_table
from repro.placement import ElasticKV

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

LINK = LinkSpec(delay=0.001, jitter=0.0005)
N_KEYS = 40 if TINY else 120
KEYS = [f"key-{i}" for i in range(N_KEYS)]

PHASES = ("snapshot", "transfer", "catchup", "cutover")
#: Phases whose plan is still ``warm`` when the crash lands: the
#: successor rolls back instead of resuming.
ROLLBACK_PHASES = {"snapshot", "transfer"}

#: Flight-recorder tapes that narrate the failover.
TAPES = ("view-propose", "coord-takeover", "view-commit",
         "view-rollback")


def kill_at(phase):
    """One full run: grow 4->5 under load, crash the coordinator at
    ``phase``, verify the successor's outcome and every acked call."""
    dep = Deployment(seed=20, default_link=LINK, keep_trace=False,
                     observatory=True)
    plane, kv = build_elastic_kv(dep, 4, clients=3)
    dep.auto_rebind(plane=plane)
    victim = plane.coordinator
    # The workload drives through a *different* candidate, so killing
    # the coordinator kills neither the workload nor the supervisor.
    worker = ElasticKV(plane, [p for p in plane.coordinators
                               if p != victim][0])
    values = {}

    async def preload():
        for i, key in enumerate(KEYS):
            values[key] = i
            assert (await worker.put(key, i)).ok

    dep.run_scenario(preload())

    armed = {"fired": False}

    async def killer():
        dep.crash(victim)

    def hook(p):
        if p == phase and not armed["fired"]:
            armed["fired"] = True
            dep.runtime.spawn(killer(), name="coordinator-killer",
                              daemon=True)

    plane.phase_hook = hook

    failures = []
    stalls = []
    done = {"workload": False}

    async def workload():
        i = 0
        while not done["workload"]:
            key = KEYS[i % len(KEYS)]
            start = dep.runtime.now()
            if i % 3 == 2:
                value = values[key] + 1000
                result = await worker.put(key, value)
                if result.ok:
                    values[key] = value      # acknowledged: must survive
                else:
                    failures.append((key, "put", result.status))
            else:
                result = await worker.get(key)
                if not (result.ok and result.args == values[key]):
                    failures.append((key, "get", result.status))
            stalls.append(dep.runtime.now() - start)
            i += 1
            await dep.runtime.sleep(0.002)

    async def scenario():
        work = dep.runtime.spawn(workload(), name="workload")
        await plane.add_shard()
        done["workload"] = True
        await dep.runtime.join(work)
        # Every key must still read back its last acknowledged value
        # through the (old or new) ring.
        for key in KEYS:
            result = await worker.get(key)
            if not (result.ok and result.args == values[key]):
                failures.append((key, "audit", result.status))

    begin = dep.runtime.now()
    dep.run_scenario(scenario(), extra_time=1.0)
    elapsed = dep.runtime.now() - begin
    tapes = [kind for _, _, kind, _ in dep.flight.entries()
             if kind in TAPES]
    row = {
        "phase": phase,
        "outcome": "rollback" if phase in ROLLBACK_PHASES else "resume",
        "shards": len(plane.ring),
        "epoch": plane.epoch,
        "successor": plane.coordinator,
        "ops": len(stalls),
        "failures": len(failures),
        "acked_lost": sum(1 for f in failures if f[1] == "audit"),
        "takeovers": int(dep.metrics.value("placement.view.takeovers")),
        "stale_bounces": int(
            dep.metrics.value("placement.view.stale_bounces")),
        "parked": int(dep.metrics.value("placement.parked_calls")),
        "tapes": tapes,
        "worst_stall_ms": round(max(stalls) * 1000, 3),
        "latencies": list(stalls),
        "elapsed": elapsed,
    }
    dep.shutdown()
    return row


def run_all():
    rows = []
    for phase in PHASES:
        first = kill_at(phase)
        second = kill_at(phase)
        stable_a = {k: v for k, v in first.items()
                    if k not in ("latencies", "elapsed")}
        stable_b = {k: v for k, v in second.items()
                    if k not in ("latencies", "elapsed")}
        assert stable_a == stable_b, (
            f"phase {phase!r} not deterministic on reseed:\n"
            f"{stable_a}\n{stable_b}")
        assert first["latencies"] == second["latencies"], phase
        rows.append(first)
    return rows


def test_x20_failover(benchmark):
    rows = run_once(benchmark, run_all)

    table = render_table(
        ["killed at", "outcome", "shards", "epoch", "ops", "failures",
         "takeovers", "bounces", "worst stall"],
        [[r["phase"], r["outcome"], r["shards"], r["epoch"], r["ops"],
          r["failures"], r["takeovers"], r["stale_bounces"],
          f"{r['worst_stall_ms']:.1f}ms"] for r in rows])
    save_result("x20_failover", "\n".join([
        banner("X20 — migration coordinator failover",
               f"{N_KEYS} keys, grow 4->5 under closed-loop load, "
               f"coordinator killed at each phase, successor resumes "
               f"or rolls back (two runs per phase, identical)"),
        table]))
    attach(benchmark, {f"{r['phase']}_outcome": r["outcome"]
                       for r in rows})
    save_bench_json("x20_failover", {
        "phases": [{
            "phase": r["phase"],
            "outcome": r["outcome"],
            "shards": r["shards"],
            "epoch": r["epoch"],
            "successor": r["successor"],
            "ops": r["ops"],
            "failures": r["failures"],
            "takeovers": r["takeovers"],
            "stale_bounces": r["stale_bounces"],
            "parked": r["parked"],
            "tapes": r["tapes"],
            "worst_stall_ms": r["worst_stall_ms"],
            **percentiles(r["latencies"]),
        } for r in rows]}, tiny=TINY)

    for r in rows:
        # Zero acknowledged-call loss, zero workload failures, and no
        # call was ever dispatched against a stale routing table.
        assert r["failures"] == 0, r
        assert r["acked_lost"] == 0, r
        assert r["stale_bounces"] == 0, r
        # Exactly one takeover per run, narrated on the flight tape.
        assert r["takeovers"] == 1, r
        assert "view-propose" in r["tapes"], r
        assert "coord-takeover" in r["tapes"], r
        if r["outcome"] == "rollback":
            assert r["shards"] == 4 and r["epoch"] == 0, r
            assert "view-rollback" in r["tapes"], r
        else:
            assert r["shards"] == 5 and r["epoch"] == 1, r
            assert "view-commit" in r["tapes"], r
