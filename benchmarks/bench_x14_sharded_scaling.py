"""X14 — sharded-keyspace throughput scaling (extension).

One keyspace spanned over 1..8 independently-configured KV shards on a
single fabric (the deployment plane).  Every shard runs Serial Execution
with a fixed per-operation service time, so one shard's throughput is
capacity-bound; a pool of closed-loop client nodes drives the same total
workload against every shard count.  Expected shape: throughput grows
with shard count until the client pool stops saturating the shards, and
the key->shard hash spreads the keyspace evenly enough that no shard
serializes the rest.
"""

import os

from _common import (attach, percentiles, run_once, save_bench_json,
                     save_result)

from repro import Deployment, LinkSpec, ServiceSpec
from repro.apps import KVStore, ShardedKV, build_sharded_kv
from repro.bench import banner, render_table

#: CI smoke mode: a fraction of the workload, enough to prove the
#: benchmark still runs end to end without owning a CI lane for minutes.
TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

LINK = LinkSpec(delay=0.001, jitter=0.0005)
OP_DELAY = 0.005           # server-side service time per put
SHARD_COUNTS = (1, 2, 4) if TINY else (1, 2, 4, 8)
N_WORKERS = 8 if TINY else 16      # closed-loop client nodes
OPS_PER_WORKER = 5 if TINY else 15


def run_point(n_shards):
    dep = Deployment(seed=14, default_link=LINK, keep_trace=False)
    spec = ServiceSpec(execution="serial", bounded=30.0, acceptance=1)
    kv = build_sharded_kv(
        dep, n_shards, spec=spec, servers_per_shard=1, clients=N_WORKERS,
        app_factory=lambda: KVStore(op_delay=OP_DELAY, keep_log=False))
    workers = dep.services[kv.router.services[0]].client_pids
    ops_total = N_WORKERS * OPS_PER_WORKER
    failures = []
    latencies = []

    async def worker(pid, lane):
        view = ShardedKV(dep, pid, kv.router)
        for i in range(OPS_PER_WORKER):
            begin = dep.runtime.now()
            result = await view.put(f"w{lane}-k{i}", i)
            latencies.append(dep.runtime.now() - begin)
            if not result.ok:
                failures.append((pid, i, result.status))

    async def scenario():
        tasks = [dep.spawn_client(pid, worker(pid, lane))
                 for lane, pid in enumerate(workers)]
        for task in tasks:
            await dep.runtime.join(task)

    start = dep.runtime.now()
    dep.run_scenario(scenario())
    elapsed = dep.runtime.now() - start
    dep.settle(1.0)  # drain retransmits so no coroutine dies mid-flight
    dep.shutdown()
    per_shard = [
        dep.metrics.value(f"service.{name}.executions")
        for name in kv.router.services]
    return {"shards": n_shards,
            "throughput": ops_total / elapsed,
            "elapsed_s": elapsed,
            "failures": len(failures),
            "envelopes": int(dep.metrics.value("net.envelopes")),
            "latencies": latencies,
            "exec_spread": max(per_shard) / max(1, min(per_shard))}


def test_x14_sharded_scaling(benchmark):
    def experiment():
        return [run_point(n) for n in SHARD_COUNTS]

    rows = run_once(benchmark, experiment)

    base = rows[0]["throughput"]
    table = render_table(
        ["shards", "ops/s (virtual)", "speedup", "exec spread"],
        [[r["shards"], f"{r['throughput']:.0f}",
          f"{r['throughput'] / base:.2f}x",
          f"{r['exec_spread']:.2f}"] for r in rows])
    save_result("x14_sharded_scaling", "\n".join([
        banner("X14 — sharded keyspace scaling",
               f"{N_WORKERS} closed-loop clients, "
               f"{N_WORKERS * OPS_PER_WORKER} puts, serial execution, "
               f"{OP_DELAY * 1000:.0f}ms/op service time, link "
               f"{LINK.delay * 1000:.1f}ms"),
        table]))
    attach(benchmark, {f"shards_{r['shards']}":
                       round(r["throughput"], 1) for r in rows})
    save_bench_json("x14_sharded_scaling", {
        "workload": {"clients": N_WORKERS,
                     "ops": N_WORKERS * OPS_PER_WORKER,
                     "op_delay_ms": OP_DELAY * 1000},
        "points": [{"shards": r["shards"],
                    "ops_per_sec": round(r["throughput"], 1),
                    "envelopes": r["envelopes"],
                    "failures": r["failures"],
                    **percentiles(r["latencies"])} for r in rows]},
        tiny=TINY)

    assert all(r["failures"] == 0 for r in rows)
    by_shards = {r["shards"]: r["throughput"] for r in rows}
    if TINY:
        # Smoke thresholds: the tiny workload is too small for the full
        # scaling law, but sharding must still visibly help.
        assert by_shards[2] > 1.2 * by_shards[1]
        assert by_shards[4] > by_shards[2]
        return
    # Sharding must actually scale: each doubling helps, and 8 shards
    # beat one by a wide margin.
    assert by_shards[2] > 1.5 * by_shards[1]
    assert by_shards[4] > 2.5 * by_shards[1]
    assert by_shards[8] > by_shards[4]
    # The hash router keeps the shards reasonably balanced.
    assert all(r["exec_spread"] < 3.0 for r in rows[1:])
