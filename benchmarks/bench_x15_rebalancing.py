"""X15 — elastic rebalancing: ring vs modulo churn, live-resize dip.

Two questions about the placement plane:

1. **Churn** — when a 4-shard keyspace resizes to 5 and back, what
   fraction of keys changes owner?  The consistent-hash ring should move
   O(K/N) keys per step; the modulo-N baseline remaps most of the
   keyspace (every key whose ``crc % 4`` differs from its ``crc % 5``).
2. **Availability** — during a *live* resize (grow 4->5, shrink 5->4)
   under a steady closed-loop workload, how many operations fail, and how
   long does the worst op stall?  The migration protocol parks only calls
   to moving keys during the catch-up/cutover window, so nothing fails
   and the dip is bounded by the moving ranges, not the keyspace.
"""

import os

from _common import (attach, percentiles, run_once, save_bench_json,
                     save_result)

from repro import Deployment, HashRing, LinkSpec, build_elastic_kv
from repro.apps import ShardRouter
from repro.bench import banner, render_table

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

LINK = LinkSpec(delay=0.001, jitter=0.0005)
N_KEYS = 60 if TINY else 240
N_OPS = 40 if TINY else 160      # steady workload ops across the resizes
KEYS = [f"key-{i}" for i in range(N_KEYS)]


def churn_comparison():
    """Owner-change fraction for 4->5 and 5->4 under each router."""
    rows = []
    for step, (n_before, n_after) in (("grow 4->5", (4, 5)),
                                      ("shrink 5->4", (5, 4))):
        ring_a = HashRing([f"s{i}" for i in range(n_before)], vnodes=64)
        ring_b = HashRing([f"s{i}" for i in range(n_after)], vnodes=64)
        ring_moved = sum(1 for k in KEYS
                         if ring_a.route(k) != ring_b.route(k))
        mod_a = ShardRouter([f"s{i}" for i in range(n_before)])
        mod_b = ShardRouter([f"s{i}" for i in range(n_after)])
        mod_moved = sum(1 for k in KEYS
                        if mod_a.route(k) != mod_b.route(k))
        rows.append({"step": step,
                     "ring_frac": ring_moved / len(KEYS),
                     "modulo_frac": mod_moved / len(KEYS)})
    return rows


def live_resize():
    """Grow 4->5 and shrink 5->4 with a workload running throughout."""
    dep = Deployment(seed=15, default_link=LINK, keep_trace=False)
    plane, kv = build_elastic_kv(dep, 4)
    values = {}

    async def preload():
        for i, key in enumerate(KEYS):
            values[key] = i
            assert (await kv.put(key, i)).ok

    dep.run_scenario(preload())

    failures = []
    stalls = []
    done = {"workload": False}

    async def workload():
        i = 0
        while not done["workload"]:
            key = KEYS[i % len(KEYS)]
            start = dep.runtime.now()
            result = await kv.get(key)
            stalls.append(dep.runtime.now() - start)
            if not (result.ok and result.args == values[key]):
                failures.append((key, result.status))
            i += 1
            await dep.runtime.sleep(0.002)

    moved = {}

    async def resize():
        before = dep.metrics.value("placement.migration.keys_moved")
        await plane.add_shard()                      # 4 -> 5
        moved["grow"] = dep.metrics.value(
            "placement.migration.keys_moved") - before
        await dep.runtime.sleep(0.05)
        before = dep.metrics.value("placement.migration.keys_moved")
        await plane.remove_shard("shard-4")          # 5 -> 4
        moved["shrink"] = dep.metrics.value(
            "placement.migration.keys_moved") - before
        done["workload"] = True

    async def scenario():
        work = dep.runtime.spawn(workload(), name="workload")
        shape = dep.runtime.spawn(resize(), name="resize")
        await dep.runtime.join(shape)
        await dep.runtime.join(work)

    begin = dep.runtime.now()
    dep.run_scenario(scenario(), extra_time=1.0)
    elapsed = dep.runtime.now() - begin  # includes the 1 s drain tail
    dep.shutdown()
    baseline = min(stalls)
    return {"ops": len(stalls),
            "ops_per_sec": len(stalls) / elapsed,
            "failures": len(failures),
            "grow_moved_frac": moved["grow"] / len(KEYS),
            "shrink_moved_frac": moved["shrink"] / len(KEYS),
            "parked": dep.metrics.value("placement.parked_calls"),
            "envelopes": int(dep.metrics.value("net.envelopes")),
            "latencies": list(stalls),
            "baseline_ms": baseline * 1000,
            "worst_stall_ms": max(stalls) * 1000}


def test_x15_rebalancing(benchmark):
    def experiment():
        return {"churn": churn_comparison(), "live": live_resize()}

    out = run_once(benchmark, experiment)
    churn, live = out["churn"], out["live"]

    table = render_table(
        ["resize", "ring moved", "modulo moved"],
        [[r["step"], f"{r['ring_frac'] * 100:.0f}%",
          f"{r['modulo_frac'] * 100:.0f}%"] for r in churn])
    live_table = render_table(
        ["ops", "failures", "grow moved", "shrink moved", "parked",
         "worst stall"],
        [[live["ops"], live["failures"],
          f"{live['grow_moved_frac'] * 100:.0f}%",
          f"{live['shrink_moved_frac'] * 100:.0f}%",
          int(live["parked"]),
          f"{live['worst_stall_ms']:.1f}ms"]])
    save_result("x15_rebalancing", "\n".join([
        banner("X15 — elastic rebalancing",
               f"{N_KEYS} keys, 4->5->4 shards, ring (64 vnodes) vs "
               f"modulo-N, live migration under closed-loop reads"),
        table, live_table]))
    attach(benchmark, {
        "ring_grow_frac": round(churn[0]["ring_frac"], 3),
        "modulo_grow_frac": round(churn[0]["modulo_frac"], 3),
        "live_failures": live["failures"],
        "live_worst_stall_ms": round(live["worst_stall_ms"], 2)})
    save_bench_json("x15_rebalancing", {
        "churn": [{"step": r["step"],
                   "ring_moved_frac": round(r["ring_frac"], 3),
                   "modulo_moved_frac": round(r["modulo_frac"], 3)}
                  for r in churn],
        "live": {"ops_per_sec": round(live["ops_per_sec"], 1),
                 "failures": live["failures"],
                 "parked": int(live["parked"]),
                 "envelopes": live["envelopes"],
                 "worst_stall_ms": round(live["worst_stall_ms"], 3),
                 **percentiles(live["latencies"])}},
        tiny=TINY)

    # The headline: consistent hashing moves O(K/N) keys per resize,
    # modulo-N remaps most of the keyspace.
    for row in churn:
        assert row["ring_frac"] <= 0.45, row
        assert row["modulo_frac"] >= 0.60, row
        assert row["ring_frac"] < 0.6 * row["modulo_frac"], row
    # The live migrations matched the ring's churn prediction and no
    # operation failed or saw a stale value while the system reshaped.
    assert live["failures"] == 0
    assert live["ops"] >= 10
    assert 0 < live["grow_moved_frac"] <= 0.45
    assert 0 < live["shrink_moved_frac"] <= 0.45
