"""X2 — the price of ordering guarantees (extension).

Multi-client concurrent workload against server groups of increasing
size, under no ordering, FIFO ordering and Total ordering.  Expected
shape: none < FIFO < Total in both latency and message cost, with Total's
gap growing with group size (the leader's ORDER multicast is O(group)
per call).
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.bench import ClosedLoopWorkload, banner, kv_workload, render_table

LINK = LinkSpec(delay=0.01, jitter=0.004)
CALLS = 25
CLIENTS = 3
GROUP_SIZES = (2, 4, 8)

VARIANTS = {
    "none": lambda n: ServiceSpec(acceptance=n, unique=True,
                                  ordering="none"),
    "fifo": lambda n: ServiceSpec(acceptance=n, unique=True,
                                  ordering="fifo"),
    "causal": lambda n: ServiceSpec(acceptance=n, unique=True,
                                    ordering="causal"),
    "total": lambda n: ServiceSpec(acceptance=n, unique=True,
                                   ordering="total"),
}


def run_point(ordering, n_servers):
    spec = VARIANTS[ordering](n_servers)
    cluster = ServiceCluster(spec, KVStore, n_servers=n_servers,
                             n_clients=CLIENTS, seed=4,
                             default_link=LINK, keep_trace=False)
    workload = ClosedLoopWorkload(lambda i: kv_workload(seed=i),
                                  calls_per_client=CALLS)
    result = workload.run(cluster, settle_time=1.0)
    stats = result.latency_stats().scaled(1000.0)
    return {"ordering": ordering, "servers": n_servers,
            "mean_ms": stats.mean, "p95_ms": stats.p95,
            "msgs_per_call": result.messages_per_call,
            "ok": result.ok_ratio}


def test_x2_ordering_cost(benchmark):
    def experiment():
        return [run_point(ordering, n)
                for n in GROUP_SIZES
                for ordering in ("none", "fifo", "causal", "total")]

    rows = run_once(benchmark, experiment)

    table = render_table(
        ["servers", "ordering", "mean ms", "p95 ms", "msgs/call"],
        [[r["servers"], r["ordering"], f"{r['mean_ms']:.2f}",
          f"{r['p95_ms']:.2f}", f"{r['msgs_per_call']:.1f}"]
         for r in rows])
    save_result("x2_ordering_cost", "\n".join([
        banner("X2 — ordering cost (none vs FIFO vs Total)",
               f"{CLIENTS} concurrent clients x {CALLS} calls, "
               f"acceptance = group size"),
        table]))
    attach(benchmark, {f"{r['ordering']}@{r['servers']}":
                       round(r['mean_ms'], 2) for r in rows})

    assert all(r["ok"] == 1.0 for r in rows)
    point = {(r["ordering"], r["servers"]): r for r in rows}
    for n in GROUP_SIZES:
        # Total Order pays the extra ORDER dissemination on every call.
        assert point[("total", n)]["msgs_per_call"] \
            > point[("none", n)]["msgs_per_call"]
        assert point[("total", n)]["mean_ms"] \
            >= point[("none", n)]["mean_ms"]
        # FIFO and Causal add no extra messages, only gating (causal
        # piggybacks its dependencies on the calls themselves).
        assert point[("fifo", n)]["msgs_per_call"] \
            <= point[("total", n)]["msgs_per_call"]
        assert point[("causal", n)]["msgs_per_call"] \
            <= point[("total", n)]["msgs_per_call"]
