"""X8 — retransmission-timer sensitivity (ablation).

Sweeps Reliable Communication's retransmission timeout under 15% loss.
Expected shape: a too-aggressive timer wastes messages (duplicates that
Unique Execution must absorb) at little latency benefit; a too-lazy
timer saves messages but pays the full timeout on every lost message,
inflating tail latency.  A knee sits around the network round-trip
region — the classic timer-tuning trade-off the paper's configurable
parameter leaves to the deployer.
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster
from repro.apps import KVStore
from repro.bench import ClosedLoopWorkload, banner, kv_workload, render_table
from repro.core.config import exactly_once

LINK = LinkSpec(delay=0.01, jitter=0.004, loss=0.15)
CALLS = 40
TIMERS = (0.03, 0.06, 0.12, 0.25, 0.5)


def run_point(retrans):
    spec = exactly_once(acceptance=3, bounded=0.0,
                        retrans_timeout=retrans)
    cluster = ServiceCluster(spec, KVStore, n_servers=3, seed=9,
                             default_link=LINK, keep_trace=False)
    workload = ClosedLoopWorkload(lambda i: kv_workload(seed=i),
                                  calls_per_client=CALLS)
    result = workload.run(cluster, settle_time=1.0)
    stats = result.latency_stats().scaled(1000.0)
    return {"timer_ms": retrans * 1000, "mean_ms": stats.mean,
            "p95_ms": stats.p95,
            "msgs_per_call": result.messages_per_call,
            "ok": result.ok_ratio}


def test_x8_retransmission_tuning(benchmark):
    def experiment():
        return [run_point(t) for t in TIMERS]

    rows = run_once(benchmark, experiment)

    table = render_table(
        ["retransmit timer ms", "mean ms", "p95 ms", "msgs/call"],
        [[f"{r['timer_ms']:.0f}", f"{r['mean_ms']:.2f}",
          f"{r['p95_ms']:.2f}", f"{r['msgs_per_call']:.1f}"]
         for r in rows])
    save_result("x8_retransmission_tuning", "\n".join([
        banner("X8 — retransmission timer trade-off",
               f"15% loss, exactly-once, acceptance=3, {CALLS} calls"),
        table]))
    attach(benchmark, {f"{r['timer_ms']:.0f}ms": round(r["mean_ms"], 2)
                       for r in rows})

    assert all(r["ok"] == 1.0 for r in rows)
    fastest, laziest = rows[0], rows[-1]
    # Aggressive timers cost messages; lazy timers cost latency.
    assert fastest["msgs_per_call"] > laziest["msgs_per_call"]
    assert laziest["mean_ms"] > fastest["mean_ms"]
    assert laziest["p95_ms"] > 2 * fastest["p95_ms"]
