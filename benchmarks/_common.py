"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper artifact (Figures 1–4, the Section-5
configuration) or one extension experiment (X1–X6 in DESIGN.md).  The
regenerated table is printed and also written to ``benchmarks/results/``
so EXPERIMENTS.md can quote it verbatim.

Wall-clock timing comes from pytest-benchmark; the scientific metrics
(latencies, message counts, execution counts) are *virtual-time* results
attached to ``benchmark.extra_info``.

Benchmarks that feed the **bench trajectory** additionally write
``benchmarks/results/BENCH_<name>.json`` via :func:`save_bench_json` — a
machine-readable point (ops/sec, latency watermarks, envelope counts,
git revision) that CI archives per run, so regressions show up as a
diffable series rather than prose.
"""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
from typing import Any, Dict, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a regenerated table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def git_rev() -> str:
    """Short revision of the working tree, or ``"unknown"``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10)
        return proc.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def percentiles(values: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank p50/p95/p99 of a latency sample, in milliseconds."""
    if not values:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    ordered = sorted(values)
    def rank(p: int) -> float:
        idx = max(0, math.ceil(p / 100 * len(ordered)) - 1)
        return round(ordered[idx] * 1000, 3)
    return {"p50_ms": rank(50), "p95_ms": rank(95), "p99_ms": rank(99)}


def save_bench_json(bench: str, payload: Dict[str, Any], *,
                    tiny: bool = False) -> None:
    """Write one machine-readable trajectory point for ``bench``.

    Stable rendering (sorted keys, trailing newline) so successive runs
    of an unchanged tree produce byte-identical files.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    doc: Dict[str, Any] = {"schema": 1, "bench": bench,
                           "rev": git_rev(), "tiny": tiny}
    doc.update(payload)
    path = RESULTS_DIR / f"BENCH_{bench}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def run_once(benchmark, fn):
    """Run a heavy simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def attach(benchmark, info: Dict[str, Any]) -> None:
    """Record virtual-time metrics in the benchmark report."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
