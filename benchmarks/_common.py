"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper artifact (Figures 1–4, the Section-5
configuration) or one extension experiment (X1–X6 in DESIGN.md).  The
regenerated table is printed and also written to ``benchmarks/results/``
so EXPERIMENTS.md can quote it verbatim.

Wall-clock timing comes from pytest-benchmark; the scientific metrics
(latencies, message counts, execution counts) are *virtual-time* results
attached to ``benchmark.extra_info``.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a regenerated table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def run_once(benchmark, fn):
    """Run a heavy simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def attach(benchmark, info: Dict[str, Any]) -> None:
    """Record virtual-time metrics in the benchmark report."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
