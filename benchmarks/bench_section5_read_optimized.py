"""E5 — Section 5: the paper's worked configuration.

"Consider a simple group RPC designed to provide quick response time to
read-only requests ... 'at least once' semantics, acceptance one,
synchronous call semantics, and bounded termination time" with
reliability in the RPC layer.

The benchmark deploys that exact composition (RPC_Main ||
Synchronous_Call || Reliable_Communication || Bounded_Termination(1.0) ||
Collation(id) || Acceptance(1)) on five replicas, one of which suffers a
performance failure, and compares it against an acceptance=ALL variant:
acceptance-one must track the fastest replica while ALL is dragged to the
slow one — the 'quick response time' claim.  It also shows the bounded
termination guarantee: with every server partitioned away, the call
returns TIMEOUT at almost exactly the 1.0s bound.
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, Status
from repro.apps import KVStore
from repro.bench import (
    ClosedLoopWorkload,
    banner,
    read_only_workload,
    render_table,
)
from repro.core.config import read_optimized
from repro.core.microprotocols import ALL

LINK = LinkSpec(delay=0.01, jitter=0.005)
SLOW_REPLICA_DELAY = 0.25
CALLS = 60


def run_variant(label, spec):
    cluster = ServiceCluster(spec, KVStore, n_servers=5, seed=1,
                             default_link=LINK, keep_trace=False)
    cluster.make_slow(5, SLOW_REPLICA_DELAY)
    workload = ClosedLoopWorkload(
        lambda i: read_only_workload(seed=i), calls_per_client=CALLS)
    result = workload.run(cluster)
    stats = result.latency_stats().scaled(1000.0)
    return {"label": label, "mean_ms": stats.mean, "p95_ms": stats.p95,
            "ok": result.ok_ratio}


def test_section5_read_optimized(benchmark):
    def experiment():
        fast = run_variant("Section-5 service (acceptance=1)",
                           read_optimized(timebound=1.0))
        slow = run_variant("same but acceptance=ALL",
                           read_optimized(timebound=1.0,
                                          acceptance=ALL))
        # Bounded termination in action: total outage -> 1.0s TIMEOUT.
        cluster = ServiceCluster(read_optimized(timebound=1.0), KVStore,
                                 n_servers=5, default_link=LINK)
        cluster.partition([cluster.client], cluster.server_pids)
        t0 = cluster.runtime.now()
        outage = cluster.call_and_run("get", {"key": "k"})
        outage_latency = cluster.runtime.now() - t0
        return fast, slow, outage, outage_latency

    fast, slow, outage, outage_latency = run_once(benchmark, experiment)

    table = render_table(
        ["configuration", "mean ms", "p95 ms", "ok%"],
        [[fast["label"], f"{fast['mean_ms']:.2f}",
          f"{fast['p95_ms']:.2f}", f"{fast['ok'] * 100:.0f}"],
         [slow["label"], f"{slow['mean_ms']:.2f}",
          f"{slow['p95_ms']:.2f}", f"{slow['ok'] * 100:.0f}"]])
    save_result("section5_read_optimized", "\n".join([
        banner("Section 5 — read-optimized group RPC",
               f"5 replicas, one with +{SLOW_REPLICA_DELAY * 1000:.0f}ms "
               f"performance failure, {CALLS} read-only calls"),
        table, "",
        f"bounded termination under total outage: status="
        f"{outage.status.value}, returned after "
        f"{outage_latency * 1000:.0f}ms (bound: 1000ms)"]))
    attach(benchmark, {"fast_mean_ms": fast["mean_ms"],
                       "all_mean_ms": slow["mean_ms"]})

    # Quick response time: acceptance-one is far below the slow replica's
    # delay; acceptance-ALL pays it on every call.
    assert fast["mean_ms"] < 60.0
    assert slow["mean_ms"] > SLOW_REPLICA_DELAY * 1000 * 0.9
    assert slow["mean_ms"] > 3 * fast["mean_ms"]
    # Bounded termination: TIMEOUT at (approximately) the bound.
    assert outage.status is Status.TIMEOUT
    assert 0.99 <= outage_latency <= 1.1
