"""X7 — composition overhead: composite gRPC vs the compact P2P protocol.

Section 4.1 predicts that point-to-point RPC "would likely be implemented
separately to obtain a more compact and efficient protocol".  This
ablation quantifies the prediction: the same exactly-once synchronous
semantics between one client and one server, implemented (a) by the full
micro-protocol composite configured for a group of one and (b) by the
hand-fused :class:`~repro.core.p2p.PointToPointRPC`.

Expected shape: identical simulated latency (the protocols exchange the
same messages) but a clear CPU-per-call gap — the price of the event bus,
handler dispatch and HOLD bookkeeping, i.e. the cost of configurability.
"""

import time

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, Status
from repro.apps import KVStore, ServerDispatcher
from repro.bench import banner, render_table
from repro.core.config import exactly_once
from repro.core.p2p import P2PMsg, PointToPointRPC
from repro.net import NetworkFabric, Node, UnreliableTransport
from repro.runtime import SimRuntime
from repro.sim import RandomSource
from repro.xkernel import TypeDemux, compose_stack

LINK = LinkSpec(delay=0.01, jitter=0.0)
CALLS = 300


def run_composite():
    cluster = ServiceCluster(exactly_once(acceptance=1, bounded=0.0),
                             KVStore, n_servers=1, seed=0,
                             default_link=LINK, keep_trace=False)
    latencies = []

    async def client():
        for i in range(CALLS):
            t0 = cluster.runtime.now()
            result = await cluster.call(cluster.client, "put",
                                        {"key": f"k{i % 8}", "value": i})
            assert result.status is Status.OK
            latencies.append(cluster.runtime.now() - t0)

    task = cluster.spawn_client(cluster.client, client())
    wall0 = time.perf_counter()
    cluster.run_scenario(_join(cluster.runtime, task))
    wall = time.perf_counter() - wall0
    return latencies, wall


def run_compact():
    rt = SimRuntime()
    fabric = NetworkFabric(rt, rand=RandomSource(0), default_link=LINK)
    fabric.trace.keep_events = False
    endpoints = {}
    for pid in (1, 101):
        node = Node(pid, rt, fabric)
        p2p = PointToPointRPC(node, retrans_timeout=0.05)
        demux = TypeDemux(f"demux@{pid}")
        compose_stack(demux, UnreliableTransport(node))
        demux.attach(P2PMsg, p2p)
        if pid == 1:
            compose_stack(ServerDispatcher(node, KVStore()), p2p)
        node.start()
        endpoints[pid] = p2p
    latencies = []

    async def client():
        for i in range(CALLS):
            t0 = rt.now()
            result = await endpoints[101].call(
                "put", {"key": f"k{i % 8}", "value": i}, 1)
            assert result.status is Status.OK
            latencies.append(rt.now() - t0)

    task = fabric.node(101).spawn(client())
    wall0 = time.perf_counter()
    rt.run(_join(rt, task), shutdown=False)
    wall = time.perf_counter() - wall0
    return latencies, wall


def _join(runtime, task):
    async def waiter():
        await runtime.join(task)
    return waiter()


def test_x7_composite_vs_compact(benchmark):
    def experiment():
        # Best-of-3 wall times: one-shot wall clocks are too noisy when
        # the whole benchmark suite shares the CPU.
        comp_runs = [run_composite() for _ in range(3)]
        compact_runs = [run_compact() for _ in range(3)]
        comp_lat = comp_runs[0][0]
        compact_lat = compact_runs[0][0]
        comp_wall = min(wall for _, wall in comp_runs)
        compact_wall = min(wall for _, wall in compact_runs)
        return comp_lat, comp_wall, compact_lat, compact_wall

    comp_lat, comp_wall, compact_lat, compact_wall = \
        run_once(benchmark, experiment)

    comp_mean = sum(comp_lat) / len(comp_lat) * 1000
    compact_mean = sum(compact_lat) / len(compact_lat) * 1000
    comp_cpu = comp_wall / CALLS * 1e6
    compact_cpu = compact_wall / CALLS * 1e6
    table = render_table(
        ["implementation", "sim mean ms", "cpu us/call"],
        [["composite gRPC (7 micro-protocols, group of 1)",
          f"{comp_mean:.2f}", f"{comp_cpu:.0f}"],
         ["compact point-to-point (hand-fused)",
          f"{compact_mean:.2f}", f"{compact_cpu:.0f}"],
         ["composition overhead", "-",
          f"{comp_cpu / compact_cpu:.1f}x"]])
    save_result("x7_composite_vs_compact", "\n".join([
        banner("X7 — the price of configurability",
               f"{CALLS} exactly-once calls, 1 client, 1 server"),
        table]))
    attach(benchmark, {"composite_cpu_us": round(comp_cpu),
                       "compact_cpu_us": round(compact_cpu)})

    # Same wire behavior: simulated latency within 15%.
    assert abs(comp_mean - compact_mean) / compact_mean < 0.15
    # The compact protocol is cheaper per call in real CPU terms.
    assert compact_cpu < comp_cpu
