"""X10 — heartbeat membership tuning: detection latency vs accuracy.

The membership substrate is timeout-based and therefore unreliable in an
asynchronous system.  This ablation sweeps the suspicion threshold on a
network with performance failures (delay spikes) and measures both sides
of the trade-off: how fast a real crash is detected, and how often a
merely-slow peer is falsely suspected.

Expected shape: detection latency grows linearly with the threshold;
false suspicions fall sharply as the threshold grows — pick your poison.
"""

from _common import attach, run_once, save_result

from repro import LinkSpec
from repro.bench import banner, render_table
from repro.core.messages import MemChange
from repro.membership import HeartbeatDetector
from repro.membership.detector import Heartbeat
from repro.net import NetworkFabric, Node, UnreliableTransport
from repro.runtime import SimRuntime
from repro.sim import RandomSource
from repro.xkernel import TypeDemux, compose_stack

SPIKY = LinkSpec(delay=0.01, jitter=0.005, spike_prob=0.05,
                 spike_delay=0.3)
INTERVAL = 0.05
THRESHOLDS = (2, 3, 5, 8, 12)
OBSERVATION = 30.0
CRASH_AT = 10.0


def run_point(suspect_after, seed=0):
    rt = SimRuntime()
    fabric = NetworkFabric(rt, rand=RandomSource(seed),
                           default_link=SPIKY)
    detectors = {}
    for pid in (1, 2):
        node = Node(pid, rt, fabric)
        demux = TypeDemux(f"demux@{pid}")
        compose_stack(demux, UnreliableTransport(node))
        detector = HeartbeatDetector(node, [1, 2], interval=INTERVAL,
                                     suspect_after=suspect_after)
        demux.attach(Heartbeat, detector)
        node.start()
        detector.start()
        detectors[pid] = detector

    events = []
    detectors[1].listeners.append(
        lambda pid, change: events.append((rt.now(), pid, change)))
    rt.kernel.run_until(CRASH_AT)
    fabric.node(2).crash()
    rt.kernel.run_until(OBSERVATION)

    detection = next((t - CRASH_AT for t, pid, ch in events
                      if t >= CRASH_AT and ch is MemChange.FAILURE), None)
    false_suspicions = sum(1 for t, pid, ch in events
                           if t < CRASH_AT and ch is MemChange.FAILURE)
    return {"threshold": suspect_after,
            "detection_ms": detection * 1000 if detection else None,
            "false_suspicions": false_suspicions}


def test_x10_heartbeat_tuning(benchmark):
    def experiment():
        return [run_point(k) for k in THRESHOLDS]

    rows = run_once(benchmark, experiment)

    table = render_table(
        ["suspect after (missed beats)", "detection latency ms",
         "false suspicions in 10s"],
        [[r["threshold"],
          f"{r['detection_ms']:.0f}" if r["detection_ms"] else "-",
          r["false_suspicions"]] for r in rows])
    save_result("x10_heartbeat_tuning", "\n".join([
        banner("X10 — failure detector tuning",
               f"heartbeats every {INTERVAL * 1000:.0f}ms over a link "
               f"with 5% x {SPIKY.spike_delay * 1000:.0f}ms delay "
               f"spikes"),
        table]))
    attach(benchmark, {f"k={r['threshold']}":
                       r["false_suspicions"] for r in rows})

    # Every threshold eventually detects the real crash...
    assert all(r["detection_ms"] is not None for r in rows)
    # ...with latency growing in the threshold...
    assert rows[-1]["detection_ms"] > rows[0]["detection_ms"]
    # ...while aggressive thresholds false-positive on delay spikes and
    # conservative ones do not.
    assert rows[0]["false_suspicions"] > 0
    assert rows[-1]["false_suspicions"] == 0
