"""X16 — link-level batching across co-hosted services (extension).

The wire pipeline's coalescing stage merges messages that share a
``(src, dst)`` link within one scheduling round into a single envelope.
The win grows with co-hosting: S services on the same three server
nodes, driven by one client node, put S call messages on each
client->server link per round — one envelope with batching, S without.

This benchmark measures envelopes, messages per envelope and throughput
at 1/4/16 co-hosted services with batching on vs off, all on identical
seeds and workloads.  Expected shape: batching-off pays one envelope per
message regardless of S; batching-on amortizes toward one envelope per
link per round, so the envelope-reduction factor scales with S (>= 2x
required from 4 services up), while delivered payloads and call results
are identical.
"""

import os

from _common import (attach, percentiles, run_once, save_bench_json,
                     save_result)

from repro import Deployment, LinkSpec, ServiceSpec, WireConfig
from repro.apps import KVStore
from repro.bench import banner, render_table

#: CI smoke mode: fewer rounds and service counts, enough to prove the
#: benchmark (and the >=2x batching win) end to end.
TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

LINK = LinkSpec(delay=0.002, jitter=0.0005)
SERVER_PIDS = [1, 2, 3]
CLIENT = 101
SERVICE_COUNTS = (1, 4) if TINY else (1, 4, 16)
ROUNDS = 5 if TINY else 20

#: Batching-on configuration: cap above 16 so a full round of co-hosted
#: calls coalesces; no queue budget, to isolate the coalescing effect.
BATCHED = WireConfig(batch=True, max_batch_msgs=64, max_batch_bytes=65536)


def run_point(n_services, wire):
    dep = Deployment(seed=16, default_link=LINK, keep_trace=False,
                     wire=wire)
    spec = ServiceSpec(bounded=10.0, acceptance=1)
    for j in range(n_services):
        dep.add_service(f"svc{j}", spec,
                        lambda: KVStore(keep_log=False),
                        servers=SERVER_PIDS, clients=[CLIENT])
    failures = []
    latencies = []

    async def call_one(j, r):
        begin = dep.runtime.now()
        result = await dep.call(CLIENT, f"svc{j}", "put",
                                {"key": f"r{r}-s{j}", "value": r})
        latencies.append(dep.runtime.now() - begin)
        if not result.ok:
            failures.append((j, r, result.status))

    async def scenario():
        # One call per service, fired in the same scheduling round: the
        # pattern a multi-service node generates under concurrent load.
        for r in range(ROUNDS):
            tasks = [dep.spawn_client(CLIENT, call_one(j, r))
                     for j in range(n_services)]
            for task in tasks:
                await dep.runtime.join(task)

    start = dep.runtime.now()
    dep.run_scenario(scenario())
    elapsed = dep.runtime.now() - start
    dep.settle(0.5)
    dep.shutdown()
    messages = dep.metrics.value("net.send")
    envelopes = dep.metrics.value("net.envelopes")
    return {"services": n_services,
            "messages": int(messages),
            "envelopes": int(envelopes),
            "msgs_per_envelope": messages / max(1, envelopes),
            "throughput": (n_services * ROUNDS) / elapsed,
            "latencies": latencies,
            "failures": len(failures)}


def test_x16_wire_batching(benchmark):
    def experiment():
        rows = []
        for n in SERVICE_COUNTS:
            off = run_point(n, None)
            on = run_point(n, BATCHED)
            rows.append({"off": off, "on": on,
                         "reduction": off["envelopes"]
                         / max(1, on["envelopes"])})
        return rows

    rows = run_once(benchmark, experiment)

    table = render_table(
        ["services", "envelopes off", "envelopes on", "reduction",
         "msgs/env on", "ops/s off", "ops/s on"],
        [[r["off"]["services"], r["off"]["envelopes"],
          r["on"]["envelopes"], f"{r['reduction']:.1f}x",
          f"{r['on']['msgs_per_envelope']:.1f}",
          f"{r['off']['throughput']:.0f}",
          f"{r['on']['throughput']:.0f}"] for r in rows])
    save_result("x16_wire_batching", "\n".join([
        banner("X16 — wire-pipeline link batching",
               f"{ROUNDS} rounds of concurrent calls, services co-hosted "
               f"on {len(SERVER_PIDS)} servers + 1 client node, link "
               f"{LINK.delay * 1000:.1f}ms"),
        table]))
    attach(benchmark, {f"reduction_{r['off']['services']}":
                       round(r["reduction"], 2) for r in rows})
    save_bench_json("x16_wire_batching", {
        "points": [{"services": r["off"]["services"],
                    "envelopes_off": r["off"]["envelopes"],
                    "envelopes_on": r["on"]["envelopes"],
                    "reduction": round(r["reduction"], 2),
                    "msgs_per_envelope_on":
                        round(r["on"]["msgs_per_envelope"], 2),
                    "ops_per_sec_off": round(r["off"]["throughput"], 1),
                    "ops_per_sec_on": round(r["on"]["throughput"], 1),
                    **{f"{key}_on": value for key, value in
                       percentiles(r["on"]["latencies"]).items()}}
                   for r in rows]},
        tiny=TINY)

    for r in rows:
        off, on = r["off"], r["on"]
        assert off["failures"] == 0 and on["failures"] == 0
        # Same seed, same workload: identical message-level traffic.
        assert on["messages"] == off["messages"]
        # Batching off IS the per-message path: one envelope per message.
        assert off["envelopes"] == off["messages"]
        # Acceptance criterion: >= 2x fewer envelopes from 4 services up.
        if off["services"] >= 4:
            assert r["reduction"] >= 2.0
    # The reduction factor grows with co-hosting.
    reductions = [r["reduction"] for r in rows]
    assert reductions == sorted(reductions)
