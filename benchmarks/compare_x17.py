"""Warn-only comparison of a fresh bench_x17 run against the committed point.

Usage::

    python benchmarks/compare_x17.py <committed.json> <fresh.json>

Reads the committed ``BENCH_x17_hotpath.json`` (saved aside before the
CI run overwrites it) and the freshly produced one, compares wall-clock
ops/sec, and emits a GitHub Actions ``::warning::`` annotation when the
fresh number regresses by more than 25%.  Regression deltas exit 0: CI
runners vary wildly in speed, and the committed point may have been
measured in full mode on a fast dev box while CI runs tiny mode on a
shared vCPU — the delta is a tripwire for catastrophic slowdowns, not a
gate.  A **missing or unreadable baseline**, however, is a hard error
(``::error`` + exit 1): it means the committed trajectory point was
deleted, renamed, or emptied, and every subsequent comparison would
silently skip — the exact failure mode this script exists to prevent.

Same-mode points are preferred for the reference (tiny vs tiny beats
tiny vs full); the ``pre-refactor`` baseline is never used as the
reference, since regressing toward it is exactly what the warning is
meant to catch.
"""

import json
import sys

THRESHOLD = 0.75  # warn when fresh ops/sec drops below 75% of reference


def _points(path, *, required=False):
    try:
        with open(path) as fh:
            return json.load(fh).get("points", [])
    except (OSError, ValueError) as exc:
        if required:
            print(f"::error title=bench_x17 baseline missing::"
                  f"could not read committed baseline {path}: {exc}")
            raise SystemExit(1)
        print(f"note: could not read {path}: {exc}")
        return []


def _current(points, mode=None):
    """The newest non-baseline point, optionally restricted to a mode."""
    for point in reversed(points):
        if point.get("phase") == "pre-refactor":
            continue
        if mode is not None and point.get("mode") != mode:
            continue
        return point
    return None


def main(committed_path, fresh_path):
    committed_points = _points(committed_path, required=True)
    reference = _current(committed_points)
    if reference is None:
        print(f"::error title=bench_x17 baseline missing::"
              f"committed baseline {committed_path} holds no comparable "
              f"point (only pre-refactor entries, or none at all)")
        return 1
    fresh = _current(_points(fresh_path))
    if fresh is None:
        print("note: fresh run produced no comparable point; skipping")
        return 0
    reference = (_current(committed_points, mode=fresh.get("mode"))
                 or reference)
    fresh_ops = fresh["ops_per_sec_wall"]
    ref_ops = reference["ops_per_sec_wall"]
    ratio = fresh_ops / ref_ops if ref_ops else 1.0
    same_mode = fresh.get("mode") == reference.get("mode")
    print(f"bench_x17 ops/sec: fresh={fresh_ops:.0f} "
          f"({fresh.get('mode')}) vs committed={ref_ops:.0f} "
          f"({reference.get('mode')}) -> {ratio:.2f}x"
          + ("" if same_mode else "  [cross-mode: indicative only]"))
    if ratio < THRESHOLD:
        print(f"::warning title=bench_x17 hot-path regression::"
              f"ops/sec is {ratio:.2f}x the committed point "
              f"({fresh_ops:.0f} vs {ref_ops:.0f}); threshold "
              f"{THRESHOLD}. CI hardware varies — treat as a tripwire, "
              f"re-measure locally with the full-mode bench.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1], sys.argv[2]))
