"""X12 — saturation behavior under open-loop (Poisson) load.

A serially executing server (the Serial Execution micro-protocol plus a
5 ms procedure) has a hard capacity of ~200 calls/s.  Poisson arrivals
are offered at increasing rates; below capacity, latency sits near the
network + service floor, and as the offered load approaches capacity the
queue (calls blocked on the execution gate) drives latency up
super-linearly — the classic open-loop saturation curve, with work left
in flight at the deadline once the service is overloaded.
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.bench import OpenLoopWorkload, banner, read_only_workload, \
    render_table

LINK = LinkSpec(delay=0.002, jitter=0.001)
OP_DELAY = 0.005                       # capacity ~200 calls/s
RATES = (50, 100, 160, 260)
DURATION = 4.0


def run_point(rate):
    spec = ServiceSpec(acceptance=1, bounded=0.0, execution="serial")
    cluster = ServiceCluster(
        spec, lambda pid: KVStore(op_delay=OP_DELAY, keep_log=False),
        n_servers=1, seed=12, default_link=LINK, keep_trace=False)
    workload = OpenLoopWorkload(lambda i: read_only_workload(seed=i),
                                rate=rate, duration=DURATION, seed=rate)
    result = workload.run(cluster, drain_time=3.0)
    stats = result.latency_stats().scaled(1000.0)
    return {"rate": rate, "mean_ms": stats.mean, "p95_ms": stats.p95,
            "completed": result.calls, "incomplete": result.incomplete,
            "throughput": result.calls / DURATION}


def test_x12_saturation(benchmark):
    def experiment():
        return [run_point(rate) for rate in RATES]

    rows = run_once(benchmark, experiment)

    table = render_table(
        ["offered calls/s", "completed/s", "mean ms", "p95 ms",
         "in flight at deadline"],
        [[r["rate"], f"{r['throughput']:.0f}", f"{r['mean_ms']:.2f}",
          f"{r['p95_ms']:.2f}", r["incomplete"]] for r in rows])
    save_result("x12_saturation", "\n".join([
        banner("X12 — open-loop saturation",
               f"serial execution, {OP_DELAY * 1000:.0f}ms procedures "
               f"(capacity ~{1 / OP_DELAY:.0f}/s), Poisson arrivals for "
               f"{DURATION:.0f}s"),
        table]))
    attach(benchmark, {f"{r['rate']}/s": round(r["mean_ms"], 2)
                       for r in rows})

    by_rate = {r["rate"]: r for r in rows}
    # Far below capacity: latency near the floor (~service+network).
    assert by_rate[50]["mean_ms"] < 20
    # Approaching capacity: queueing dominates.
    assert by_rate[160]["mean_ms"] > 2 * by_rate[50]["mean_ms"]
    # Past capacity: the backlog grows for the whole run, so mean
    # latency explodes by an order of magnitude over the near-capacity
    # point (completions continue through the drain window, which is why
    # "completed/s" can exceed capacity in the table).
    assert by_rate[260]["mean_ms"] > 10 * by_rate[160]["mean_ms"]
    assert by_rate[260]["mean_ms"] > 300