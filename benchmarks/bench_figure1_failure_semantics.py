"""E1 — Figure 1: failure semantics as combinations of properties.

The paper's Figure 1 is a static table mapping {at least once, exactly
once, at most once} to the unique/atomic execution properties.  This
benchmark regenerates it *empirically*: each semantics is configured,
driven through a lossy duplicating network with non-idempotent increments
(and, for atomicity, a crash mid-transfer on a bank with stable state),
and the observed guarantees are tabulated next to the configured
properties.

Expected shape (paper): at-least-once may over-execute; exactly-once
executes exactly once; at-most-once additionally keeps partial effects
from surviving a crash.
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, Status
from repro.apps import BankApp, CounterApp
from repro.bench import banner, render_table
from repro.core.config import at_least_once, at_most_once, exactly_once

LOSSY = LinkSpec(delay=0.01, jitter=0.005, loss=0.15, duplicate=0.1)
N_CALLS = 12
SEEDS = (0, 1, 2)


def measure_execution_counts(spec):
    """Max executions of any single call across seeds and servers."""
    max_exec = 0
    ok = 0
    total = 0
    for seed in SEEDS:
        cluster = ServiceCluster(spec.with_(acceptance=3, bounded=30.0),
                                 CounterApp, n_servers=3, seed=seed,
                                 default_link=LOSSY)
        for tag in range(N_CALLS):
            result = cluster.call_and_run(
                "inc", {"amount": 1, "tag": tag}, extra_time=0.3)
            total += 1
            ok += result.status is Status.OK
        for pid in cluster.server_pids:
            for tag in range(N_CALLS):
                max_exec = max(max_exec,
                               cluster.dispatcher(pid).executions(tag))
    return max_exec, ok / total


def measure_atomicity(spec):
    """Crash a bank server mid-transfer; is money conserved after
    recovery?"""
    cluster = ServiceCluster(
        spec.with_(acceptance=1, bounded=1.0),
        lambda pid: BankApp({"alice": 100, "bob": 100},
                            transfer_delay=0.05),
        n_servers=1, default_link=LinkSpec(delay=0.01, jitter=0.0))
    cluster.runtime.call_later(0.035, lambda: cluster.crash(1))
    cluster.call_and_run("transfer",
                         {"src": "alice", "dst": "bob", "amount": 30})
    cluster.recover(1)
    cluster.settle(0.3)
    stable = cluster.node(1).stable
    total = stable.get("acct:alice") + stable.get("acct:bob")
    return total == 200


def test_figure1_failure_semantics(benchmark):
    def experiment():
        rows = []
        for name, spec in (("at least once", at_least_once()),
                           ("exactly once", exactly_once()),
                           ("at most once", at_most_once())):
            max_exec, ok_ratio = measure_execution_counts(spec)
            conserved = measure_atomicity(spec)
            rows.append({
                "semantics": name,
                "unique_cfg": "YES" if spec.unique else "NO",
                "atomic_cfg": "YES" if spec.atomic else "NO",
                "max_exec": max_exec,
                "ok_ratio": ok_ratio,
                "conserved": conserved,
            })
        return rows

    rows = run_once(benchmark, experiment)

    table = render_table(
        ["semantics", "unique execution", "atomic execution",
         "max executions/call (observed)", "crash-safe invariant"],
        [[r["semantics"], r["unique_cfg"], r["atomic_cfg"],
          r["max_exec"], "YES" if r["conserved"] else "NO"]
         for r in rows])
    save_result("figure1_failure_semantics", "\n".join([
        banner("Figure 1 — failure semantics as property combinations",
               f"lossy link {LOSSY.loss:.0%} loss / "
               f"{LOSSY.duplicate:.0%} dup, {N_CALLS} calls x "
               f"{len(SEEDS)} seeds"),
        table]))
    attach(benchmark, {r["semantics"]: r["max_exec"] for r in rows})

    by_name = {r["semantics"]: r for r in rows}
    # at-least-once: permitted (and under this fault load, observed)
    # to over-execute.
    assert by_name["at least once"]["max_exec"] >= 1
    # exactly-once and at-most-once: never more than one execution.
    assert by_name["exactly once"]["max_exec"] == 1
    assert by_name["at most once"]["max_exec"] == 1
    # only at-most-once preserves the stable-state invariant over a crash.
    assert not by_name["at least once"]["conserved"]
    assert not by_name["exactly once"]["conserved"]
    assert by_name["at most once"]["conserved"]
    # normal termination always means >= 1 execution (all rows OK'd).
    assert all(r["ok_ratio"] == 1.0 for r in rows)
