"""X13 — framework micro-benchmark: the cost of event dispatch itself.

The paper claims the event-driven style "decouples the micro-protocols
enough to facilitate configurability without adversely affecting
programmability" — and the performance question underneath is how much
a dispatch costs.  This CPU micro-benchmark measures the framework's
primitive operations in isolation: triggering an event with 1/4/8
registered handlers under blocking-sequential dispatch, the concurrent
variant (per-handler tasks), and the baseline of plain awaited calls
without any framework.

Expected shape: sequential dispatch costs a small constant per handler
over plain calls; the concurrent mode pays task creation per handler and
is the expensive variant — use it for genuinely parallel handlers, not
by default (the paper's micro-protocols all use sequential dispatch).
"""

import time

from _common import attach, run_once, save_result

from repro.bench import banner, render_table
from repro.core.events import EventBus
from repro.runtime import SimRuntime

TRIGGERS = 3000
HANDLER_COUNTS = (1, 4, 8)


async def _noop_handler():
    return None


def measure(mode, n_handlers):
    rt = SimRuntime()
    bus = EventBus(rt)
    for _ in range(n_handlers):
        bus.register("E", _noop_handler)

    async def main():
        if mode == "sequential":
            for _ in range(TRIGGERS):
                await bus.trigger("E")
        elif mode == "concurrent":
            for _ in range(TRIGGERS):
                await bus.trigger_concurrent("E")
        else:   # plain awaited calls, no framework
            for _ in range(TRIGGERS):
                for _ in range(n_handlers):
                    await _noop_handler()

    wall0 = time.perf_counter()
    rt.run(main())
    wall = time.perf_counter() - wall0
    return wall / TRIGGERS * 1e6    # us per trigger


def test_x13_dispatch_modes(benchmark):
    def experiment():
        rows = []
        for n in HANDLER_COUNTS:
            rows.append({
                "handlers": n,
                "plain": min(measure("plain", n) for _ in range(3)),
                "sequential": min(measure("sequential", n)
                                  for _ in range(3)),
                "concurrent": min(measure("concurrent", n)
                                  for _ in range(3)),
            })
        return rows

    rows = run_once(benchmark, experiment)

    table = render_table(
        ["handlers", "plain calls us", "sequential trigger us",
         "concurrent trigger us"],
        [[r["handlers"], f"{r['plain']:.2f}", f"{r['sequential']:.2f}",
          f"{r['concurrent']:.2f}"] for r in rows])
    save_result("x13_dispatch_modes", "\n".join([
        banner("X13 — event dispatch cost",
               f"{TRIGGERS} triggers per point, best of 3, no-op "
               f"handlers"),
        table]))
    attach(benchmark, {f"seq@{r['handlers']}":
                       round(r["sequential"], 2) for r in rows})

    for r in rows:
        # The framework costs something over plain calls...
        assert r["sequential"] > r["plain"]
        # ...but stays within an order of magnitude at every fan-out,
        assert r["sequential"] < 20 * r["plain"] + 20
        # and per-handler task creation makes concurrent the costly mode.
        assert r["concurrent"] > r["sequential"]
    # Sequential dispatch scales roughly linearly in handler count.
    assert rows[-1]["sequential"] < 12 * rows[0]["sequential"]