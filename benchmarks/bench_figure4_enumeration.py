"""E4 — Figure 4 / Section 5: dependency graph and the service count.

The paper: "micro-protocols can be selected from among two that implement
different call semantics; three that deal with orphans; three that give
serial execution, atomic execution, or no special execution property; and
a total of 11 possible choices for dealing with unique execution,
reliable communication, termination, and ordering" — 2 x 3 x 3 x 11 =
198 possible group RPC services.

This benchmark reproduces the arithmetic mechanically from the encoded
graph, reports the stricter count when *every* Figure-4 edge (including
Interference Avoidance -> Reliable Communication) is enforced, and
instantiates every strict configuration to prove each is buildable.
"""

from _common import attach, run_once, save_result

from repro.bench import banner, render_table
from repro.core.enumerate import (
    enumerate_services,
    figure4_choice_groups,
    figure4_edges,
    iter_cluster_combinations,
)


def test_figure4_enumeration(benchmark):
    def experiment():
        result = enumerate_services()
        built = sum(len(spec.build()) > 0 for spec in result.strict_specs)
        return result, built

    result, built = run_once(benchmark, experiment)

    cluster_rows = [[("YES" if u else "NO"), ("YES" if r else "NO"),
                     ("YES" if b else "NO"), o]
                    for u, r, b, o in iter_cluster_combinations()]
    counts = render_table(
        ["quantity", "value"],
        [["call semantics choices", result.call_choices],
         ["orphan handling choices", result.orphan_choices],
         ["execution discipline choices", result.execution_choices],
         ["unique/reliable/termination/ordering combos (the '11')",
          result.cluster_choices],
         ["paper count (2 x 3 x 3 x 11)", result.paper_count],
         ["strict count (every Figure-4 edge enforced)",
          result.strict_count]])
    edges = render_table(["dependent", "requires"],
                         [[a, b] for a, b in figure4_edges()])
    groups = render_table(
        ["choice group ('any one, but only one')"],
        [[" | ".join(g)] for g in figure4_choice_groups()])
    save_result("figure4_enumeration", "\n".join([
        banner("Figure 4 — dependency graph and buildable services",
               "paper: 198 possible group RPC services"),
        counts, "",
        "The 11 legal cluster combinations (unique, reliable, bounded, "
        "ordering):",
        render_table(["unique", "reliable", "bounded", "ordering"],
                     cluster_rows), "",
        edges, "", groups]))
    attach(benchmark, {"paper_count": result.paper_count,
                       "strict_count": result.strict_count})

    assert result.cluster_choices == 11
    assert result.paper_count == 198
    assert result.strict_count == 186
    assert built == result.strict_count   # every one instantiates
