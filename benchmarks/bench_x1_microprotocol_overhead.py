"""X1 — per-micro-protocol overhead (extension; the paper defers
performance evaluation).

Starting from the minimal functional composite, micro-protocols are added
one at a time and the same KV workload is replayed.  Two costs are
reported per configuration: the simulated per-call latency (protocol
round trips the semantics add) and the real CPU time per call (the
framework/composition overhead a 1995 reviewer would have asked about).

Expected shape: each addition costs a little; ordering micro-protocols
cost the most (extra ORDER round for Total Order); nothing is
catastrophic — the paper's claim that micro-protocol composition is a
practical way to build RPC.
"""

import time

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.bench import ClosedLoopWorkload, banner, kv_workload, render_table

LINK = LinkSpec(delay=0.01, jitter=0.002)
CALLS = 80

LADDER = [
    ("minimal (Main+Sync+Collation+Acceptance)",
     ServiceSpec(reliable=False, acceptance=1)),
    ("+ Reliable Communication",
     ServiceSpec(acceptance=1)),
    ("+ Bounded Termination",
     ServiceSpec(acceptance=1, bounded=5.0)),
    ("+ Unique Execution",
     ServiceSpec(acceptance=1, bounded=5.0, unique=True)),
    ("+ Serial Execution",
     ServiceSpec(acceptance=1, bounded=5.0, unique=True,
                 execution="serial")),
    ("+ Atomic Execution",
     ServiceSpec(acceptance=1, bounded=5.0, unique=True,
                 execution="atomic")),
    ("+ Terminate Orphan",
     ServiceSpec(acceptance=1, bounded=5.0, unique=True,
                 execution="atomic", orphans="terminate")),
    ("FIFO Order variant",
     ServiceSpec(acceptance=1, bounded=5.0, unique=True,
                 ordering="fifo")),
    ("Total Order variant",
     ServiceSpec(acceptance=1, unique=True, ordering="total")),
]


def run_rung(label, spec):
    cluster = ServiceCluster(spec, KVStore, n_servers=3, seed=2,
                             default_link=LINK, keep_trace=False)
    workload = ClosedLoopWorkload(lambda i: kv_workload(seed=i),
                                  calls_per_client=CALLS)
    wall_start = time.perf_counter()
    result = workload.run(cluster, settle_time=0.5)
    wall = time.perf_counter() - wall_start
    stats = result.latency_stats().scaled(1000.0)
    # Message cost straight from the metrics registry (the workload's
    # messages_per_call reads the same counter; asserting they agree
    # keeps the two reporting paths honest).
    sends = cluster.metrics.value("net.send")
    assert sends / result.calls == result.messages_per_call
    return {"label": label,
            "micros": len(spec.build()),
            "mean_ms": stats.mean,
            "p95_ms": stats.p95,
            "msgs_per_call": sends / result.calls,
            "cpu_us_per_call": wall / result.calls * 1e6,
            "ok": result.ok_ratio}


def test_x1_microprotocol_overhead(benchmark):
    def experiment():
        return [run_rung(label, spec) for label, spec in LADDER]

    rows = run_once(benchmark, experiment)

    table = render_table(
        ["configuration", "#micros", "sim mean ms", "sim p95 ms",
         "msgs/call", "cpu us/call"],
        [[r["label"], r["micros"], f"{r['mean_ms']:.2f}",
          f"{r['p95_ms']:.2f}", f"{r['msgs_per_call']:.1f}",
          f"{r['cpu_us_per_call']:.0f}"] for r in rows])
    save_result("x1_microprotocol_overhead", "\n".join([
        banner("X1 — cost of adding micro-protocols",
               f"3 servers, {CALLS} mixed KV calls, link "
               f"{LINK.delay * 1000:.0f}ms +/- {LINK.jitter * 1000:.0f}ms"),
        table]))
    attach(benchmark, {r["label"]: round(r["mean_ms"], 3) for r in rows})

    by_label = {r["label"]: r for r in rows}
    assert all(r["ok"] == 1.0 for r in rows)
    minimal = by_label["minimal (Main+Sync+Collation+Acceptance)"]
    total = by_label["Total Order variant"]
    # Total Order pays an extra ordering round: strictly more messages
    # and higher latency than the minimal service.
    assert total["msgs_per_call"] > minimal["msgs_per_call"]
    assert total["mean_ms"] > minimal["mean_ms"]
    # Reliability/termination/unique-execution rungs add bookkeeping but
    # no extra blocking round trips on the failure-free path: within 3x
    # of minimal latency.
    for label in ("+ Reliable Communication", "+ Bounded Termination",
                  "+ Unique Execution"):
        assert by_label[label]["mean_ms"] < 3 * minimal["mean_ms"]
