"""X6 — orphan-handling policies compared (extension).

A client repeatedly crashes mid-call and reincarnates, against a server
with slow procedures.  Per policy we measure: wasted work (orphan
executions that ran to completion), interference incidents (an
old-generation execution finishing after a new-generation call had
already started), kills, and the recovered client's success rate.

Expected shape: ignoring orphans wastes the most work and is the only
policy with interference; interference avoidance eliminates interference
at some latency cost for the recovered client; orphan termination
eliminates both wasted work and interference.
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.bench import banner, render_table

LINK = LinkSpec(delay=0.005, jitter=0.0)
OP_DELAY = 0.4
ROUNDS = 6


def run_policy(policy, seed=0):
    spec = ServiceSpec(orphans=policy, bounded=10.0, unique=True)
    cluster = ServiceCluster(spec, lambda pid: KVStore(),
                             n_servers=1, seed=seed, default_link=LINK)
    client = cluster.client
    successes = []

    async def doomed(i):
        # The orphan is a long-running write...
        await cluster.call(client, "put",
                           {"key": f"orphan-{i}", "value": i,
                            "delay": OP_DELAY})

    async def fresh(i):
        # ...the recovered client's write is quick, so an ignored orphan
        # lands AFTER it: textbook interference.
        result = await cluster.call(client, "put",
                                    {"key": f"fresh-{i}", "value": i,
                                     "delay": 0.02})
        successes.append(result.ok)

    async def scenario():
        for i in range(ROUNDS):
            cluster.spawn_client(client, doomed(i))
            await cluster.runtime.sleep(0.1)   # mid-execution
            cluster.crash(client)
            await cluster.runtime.sleep(0.05)
            cluster.recover(client)
            task = cluster.spawn_client(client, fresh(i))
            await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=3.0)

    app = cluster.app(1)
    log = [key for kind, key, _ in app.apply_log]
    wasted = sum(1 for key in log if key.startswith("orphan-"))
    # Interference: an orphan write landing after the same round's fresh
    # write had already been applied.
    interference = 0
    for i in range(ROUNDS):
        if f"orphan-{i}" in log and f"fresh-{i}" in log:
            if log.index(f"orphan-{i}") > log.index(f"fresh-{i}"):
                interference += 1
    kills = 0
    if policy == "terminate":
        kills = cluster.grpc(1).micro("Terminate_Orphan").kills
    return {"policy": policy, "wasted": wasted,
            "interference": interference, "kills": kills,
            "ok": all(successes) and len(successes) == ROUNDS}


def test_x6_orphan_policies(benchmark):
    def experiment():
        return [run_policy(p) for p in ("none", "avoid", "terminate")]

    rows = run_once(benchmark, experiment)

    label = {"none": "ignore orphans", "avoid": "interference avoidance",
             "terminate": "orphan termination"}
    table = render_table(
        ["policy", "orphan executions completed",
         "interference incidents", "orphans killed",
         "recovered client ok"],
        [[label[r["policy"]], r["wasted"], r["interference"],
          r["kills"], "YES" if r["ok"] else "NO"] for r in rows])
    save_result("x6_orphan_policies", "\n".join([
        banner("X6 — orphan handling policies",
               f"{ROUNDS} crash/reincarnate rounds, "
               f"{OP_DELAY * 1000:.0f}ms server procedures"),
        table]))
    attach(benchmark, {r["policy"]: r["wasted"] for r in rows})

    by_policy = {r["policy"]: r for r in rows}
    assert all(r["ok"] for r in rows)
    # Ignoring orphans wastes the full round count of work AND lets the
    # slow orphans land after the recovered client's writes.
    assert by_policy["none"]["wasted"] == ROUNDS
    assert by_policy["none"]["interference"] > 0
    # Interference avoidance still runs the orphans but never lets them
    # interleave after the new generation.
    assert by_policy["avoid"]["wasted"] == ROUNDS
    assert by_policy["avoid"]["interference"] == 0
    # Termination kills every orphan: no wasted completions at all.
    assert by_policy["terminate"]["wasted"] == 0
    assert by_policy["terminate"]["kills"] == ROUNDS
    assert by_policy["terminate"]["interference"] == 0
