"""X5 — group size scaling (extension).

The same workload against groups of 1..16 replicas, in the two acceptance
regimes.  Expected shape: message cost grows linearly with group size in
both regimes (the call is multicast to everyone); latency stays nearly
flat with acceptance-one (first reply wins) but grows slowly with
acceptance-ALL (max of n samples of the link-delay distribution).
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.bench import (
    ClosedLoopWorkload,
    banner,
    read_only_workload,
    render_table,
)

LINK = LinkSpec(delay=0.01, jitter=0.01)
CALLS = 30
GROUP_SIZES = (1, 2, 4, 8, 16)


def run_point(n_servers, accept_all):
    spec = ServiceSpec(acceptance=n_servers if accept_all else 1,
                       bounded=10.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=n_servers, seed=8,
                             default_link=LINK, keep_trace=False)
    workload = ClosedLoopWorkload(lambda i: read_only_workload(seed=i),
                                  calls_per_client=CALLS)
    result = workload.run(cluster, settle_time=0.5)
    stats = result.latency_stats().scaled(1000.0)
    return {"servers": n_servers,
            "acceptance": "ALL" if accept_all else "1",
            "mean_ms": stats.mean,
            "msgs_per_call": result.messages_per_call,
            "ok": result.ok_ratio}


def test_x5_group_scaling(benchmark):
    def experiment():
        return [run_point(n, accept_all)
                for n in GROUP_SIZES for accept_all in (False, True)]

    rows = run_once(benchmark, experiment)

    table = render_table(
        ["servers", "acceptance", "mean ms", "msgs/call"],
        [[r["servers"], r["acceptance"], f"{r['mean_ms']:.2f}",
          f"{r['msgs_per_call']:.1f}"] for r in rows])
    save_result("x5_group_scaling", "\n".join([
        banner("X5 — group size scaling",
               f"read-only workload, {CALLS} calls, link "
               f"{LINK.delay * 1000:.0f}ms + U(0,"
               f"{LINK.jitter * 1000:.0f})ms"),
        table]))
    attach(benchmark, {f"{r['acceptance']}@{r['servers']}":
                       round(r["mean_ms"], 2) for r in rows})

    point = {(r["acceptance"], r["servers"]): r for r in rows}
    assert all(r["ok"] == 1.0 for r in rows)
    # Message cost scales with the group in both regimes.
    assert point[("1", 16)]["msgs_per_call"] \
        > 6 * point[("1", 1)]["msgs_per_call"] / 2
    # Acceptance-one latency is flat-ish; acceptance-ALL grows (max of n
    # jitter draws) and is the slower of the two at every size > 1.
    assert point[("1", 16)]["mean_ms"] < 2 * point[("1", 1)]["mean_ms"]
    for n in GROUP_SIZES[1:]:
        assert point[("ALL", n)]["mean_ms"] \
            >= point[("1", n)]["mean_ms"]
    assert point[("ALL", 16)]["mean_ms"] > point[("ALL", 2)]["mean_ms"]
