"""X17 — call hot-path throughput: wall-clock ops/sec, open loop.

Every other benchmark in the suite reports *virtual-time* metrics; this
one deliberately reports **wall clock**, because it exists to measure
the hot-path speed program (kernel scheduler, event dispatch,
marshalling, wire pipeline) rather than any protocol property.  The
virtual-time results — latencies, failure counts, message counts — are
asserted identical across refactors; the wall-clock ops/sec is the
number the speed program moves.

Workload: an open-loop driver.  N client lanes each issue calls at a
fixed virtual-time arrival interval *without waiting for completions*
(each call runs in its own task), against a sharded KV deployment.  A
per-lane admission window bounds in-flight calls purely as a memory
guard; arrivals are paced well below service capacity so the window
almost never binds and the workload stays open-loop.  Payloads carry a
nested dict with a string blob so the stub marshaller is a realistic
fraction of the per-call cost.

Modes:

* full (default): 10^6 calls — the published trajectory point;
* ``REPRO_BENCH_TINY=1``: 20k calls — the CI perf-smoke point;
* ``REPRO_X17_PROFILE=1``: 40k calls under the observatory's kernel
  profiler; writes ``x17_hotpath_profile_<phase>.txt`` (collapsed
  stacks + profiler report) instead of a trajectory point.

The trajectory file ``BENCH_x17_hotpath.json`` keeps *two* points: the
committed ``pre-refactor`` baseline (measured on the tree as it stood
before the hot-path refactor, preserved across runs) and the current
measurement (phase from ``REPRO_X17_PHASE``, default ``current``), so
the before/after comparison travels with the repo.
"""

import json
import os
import time

from _common import (RESULTS_DIR, attach, percentiles, run_once,
                     save_bench_json, save_result)

from repro import Deployment, LinkSpec, ServiceSpec
from repro.apps import KVStore, ShardedKV, build_sharded_kv
from repro.bench import banner, render_table

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"
PROFILE = os.environ.get("REPRO_X17_PROFILE") == "1"
PHASE = os.environ.get("REPRO_X17_PHASE", "current")

LINK = LinkSpec(delay=0.001, jitter=0.0005)
N_SHARDS = 8
N_CLIENTS = 16
TOTAL_OPS = 20_000 if TINY else (40_000 if PROFILE else 1_000_000)
KEYS_PER_LANE = 512            # bounds the stores' resident key count
ARRIVAL_INTERVAL = 0.0005      # virtual seconds between a lane's calls
WINDOW = 256                   # per-lane in-flight cap (memory guard)
BLOB = "x" * 64

JSON_PATH = RESULTS_DIR / "BENCH_x17_hotpath.json"


def run_point():
    dep = Deployment(seed=17, default_link=LINK, keep_trace=False,
                     observatory=PROFILE)
    spec = ServiceSpec(bounded=30.0, acceptance=1)
    kv = build_sharded_kv(
        dep, N_SHARDS, spec=spec, servers_per_shard=1, clients=N_CLIENTS,
        app_factory=lambda: KVStore(keep_log=False))
    workers = dep.services[kv.router.services[0]].client_pids
    per_lane = TOTAL_OPS // N_CLIENTS
    latencies = []
    failures = [0]
    completed = [0]

    async def one_call(view, window, key, i):
        try:
            begin = dep.runtime.now()
            result = await view.put(key, {"n": i, "blob": BLOB})
            latencies.append(dep.runtime.now() - begin)
            completed[0] += 1
            if not result.ok:
                failures[0] += 1
        finally:
            window.release()

    async def lane(pid, lane_no):
        view = ShardedKV(dep, pid, kv.router)
        window = dep.runtime.semaphore(WINDOW)
        for i in range(per_lane):
            await window.acquire()
            dep.spawn_client(
                pid, one_call(view, window,
                              f"w{lane_no}-k{i % KEYS_PER_LANE}", i))
            await dep.runtime.sleep(ARRIVAL_INTERVAL)
        for _ in range(WINDOW):      # drain this lane's window
            await window.acquire()

    async def scenario():
        tasks = [dep.spawn_client(pid, lane(pid, lane_no))
                 for lane_no, pid in enumerate(workers)]
        for task in tasks:
            await dep.runtime.join(task)

    virtual_start = dep.runtime.now()
    wall_start = time.perf_counter()
    dep.run_scenario(scenario())
    wall = time.perf_counter() - wall_start
    virtual = dep.runtime.now() - virtual_start
    steps = dep.runtime.stats()["steps_executed"]
    profile_text = None
    if PROFILE:
        profiler = dep.observatory.profiler
        profile_text = "\n".join(
            ["# bench_x17 hot-path profile — phase: " + PHASE, ""]
            + profiler.report_lines(top=12)
            + ["", "# collapsed stacks (self virtual microseconds)",
               profiler.collapsed()])
    dep.settle(1.0)
    dep.shutdown()
    return {"ops": completed[0],
            "failures": failures[0],
            "wall_s": wall,
            "ops_per_sec_wall": completed[0] / wall,
            "virtual_s": virtual,
            "ops_per_sec_virtual": completed[0] / max(1e-9, virtual),
            "steps": steps,
            "steps_per_op": steps / max(1, completed[0]),
            "envelopes": int(dep.metrics.value("net.envelopes")),
            "latencies": latencies,
            "profile": profile_text}


def _merged_points(current):
    """The committed pre-refactor baseline survives every re-run."""
    points = []
    if JSON_PATH.exists():
        try:
            doc = json.loads(JSON_PATH.read_text())
        except (ValueError, OSError):
            doc = {}
        points = [p for p in doc.get("points", [])
                  if p.get("phase") == "pre-refactor"
                  and current.get("phase") != "pre-refactor"]
    points.append(current)
    return points


def test_x17_hotpath(benchmark):
    row = run_once(benchmark, run_point)

    assert row["failures"] == 0
    assert row["ops"] == TOTAL_OPS

    if PROFILE:
        save_result(f"x17_hotpath_profile_{PHASE}", row["profile"])
        return

    point = {"phase": PHASE,
             "mode": "tiny" if TINY else "full",
             "ops": row["ops"],
             "ops_per_sec_wall": round(row["ops_per_sec_wall"], 1),
             "wall_s": round(row["wall_s"], 3),
             "virtual_s": round(row["virtual_s"], 3),
             "steps_per_op": round(row["steps_per_op"], 2),
             "envelopes": row["envelopes"],
             **percentiles(row["latencies"])}
    points = _merged_points(point)

    baseline = next((p for p in points if p["phase"] == "pre-refactor"
                     and p.get("mode") == point["mode"]
                     and p is not point), None)
    speedup = (point["ops_per_sec_wall"] / baseline["ops_per_sec_wall"]
               if baseline else None)

    table = render_table(
        ["phase", "mode", "ops", "ops/s wall", "steps/op", "p95 ms"],
        [[p["phase"], p.get("mode", "full"), p["ops"],
          f"{p['ops_per_sec_wall']:.0f}", p.get("steps_per_op", "-"),
          p.get("p95_ms", "-")] for p in points]
        + ([["speedup", "", "", f"{speedup:.2f}x", "", ""]]
           if speedup else []))
    save_result("x17_hotpath", "\n".join([
        banner("X17 — call hot-path wall-clock throughput",
               f"open loop, {TOTAL_OPS} calls over {N_CLIENTS} lanes x "
               f"{N_SHARDS} shards, arrival interval "
               f"{ARRIVAL_INTERVAL * 1000:.2f}ms/lane, link "
               f"{LINK.delay * 1000:.1f}ms"),
        table]))
    attach(benchmark, {"ops_per_sec_wall": point["ops_per_sec_wall"],
                       "steps_per_op": point["steps_per_op"],
                       **({"speedup": round(speedup, 2)}
                          if speedup else {})})
    save_bench_json("x17_hotpath", {"points": points}, tiny=TINY)
