"""X17 — call hot-path throughput: wall-clock ops/sec, open loop.

Every other benchmark in the suite reports *virtual-time* metrics; this
one deliberately reports **wall clock**, because it exists to measure
the hot-path speed program (kernel scheduler, event dispatch,
marshalling, wire pipeline) rather than any protocol property.  The
virtual-time results — latencies, failure counts, message counts — are
asserted identical across refactors; the wall-clock ops/sec is the
number the speed program moves.

Workload: an open-loop driver.  N client lanes each issue calls at a
fixed virtual-time arrival interval *without waiting for completions*
(each call runs in its own task), against a sharded KV deployment.  A
per-lane admission window bounds in-flight calls purely as a memory
guard; arrivals are paced well below service capacity so the window
almost never binds and the workload stays open-loop.  Payloads carry a
nested dict with a string blob so the stub marshaller is a realistic
fraction of the per-call cost.

Modes:

* full (default): 10^6 calls — the published trajectory point;
* ``REPRO_BENCH_TINY=1``: 20k calls — the CI perf-smoke point;
* ``REPRO_X17_PROFILE=1``: 40k calls under the observatory's kernel
  profiler; writes ``x17_hotpath_profile_<phase>.txt`` (collapsed
  stacks + profiler report) instead of a trajectory point.
* ``REPRO_X17_DIST=zipf`` (the CLI's ``--dist=zipf``): keys are drawn
  from a Zipf(s=1.1) distribution per lane instead of cycling
  uniformly, so a handful of hot keys absorb most of the load — the
  shape the hot-key accounting and placement work are built for.  The
  skewed run writes its own trajectory file
  (``BENCH_x17_zipf.json``, with the measured top-key share) and
  leaves the uniform hot-path trajectory untouched.

The trajectory file ``BENCH_x17_hotpath.json`` keeps *two* points: the
committed ``pre-refactor`` baseline (measured on the tree as it stood
before the hot-path refactor, preserved across runs) and the current
measurement (phase from ``REPRO_X17_PHASE``, default ``current``), so
the before/after comparison travels with the repo.
"""

import bisect
import itertools
import json
import os
import random
import time
from collections import Counter

from _common import (RESULTS_DIR, attach, percentiles, run_once,
                     save_bench_json, save_result)

from repro import Deployment, LinkSpec, ServiceSpec
from repro.apps import KVStore, ShardedKV, build_sharded_kv
from repro.bench import banner, render_table

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"
PROFILE = os.environ.get("REPRO_X17_PROFILE") == "1"
PHASE = os.environ.get("REPRO_X17_PHASE", "current")
DIST = os.environ.get("REPRO_X17_DIST", "uniform")
if DIST not in ("uniform", "zipf"):
    raise ValueError(f"REPRO_X17_DIST must be 'uniform' or 'zipf', "
                     f"got {DIST!r}")
ZIPF_S = 1.1                   # classic web-cache skew exponent

LINK = LinkSpec(delay=0.001, jitter=0.0005)
N_SHARDS = 8
N_CLIENTS = 16
TOTAL_OPS = 20_000 if TINY else (40_000 if PROFILE else 1_000_000)
KEYS_PER_LANE = 512            # bounds the stores' resident key count
ARRIVAL_INTERVAL = 0.0005      # virtual seconds between a lane's calls
WINDOW = 256                   # per-lane in-flight cap (memory guard)
BLOB = "x" * 64

JSON_PATH = RESULTS_DIR / "BENCH_x17_hotpath.json"


def _zipf_cdf(n, s):
    """Cumulative Zipf(s) weights over ranks 1..n (deterministic)."""
    return list(itertools.accumulate(
        1.0 / (rank ** s) for rank in range(1, n + 1)))


def run_point():
    dep = Deployment(seed=17, default_link=LINK, keep_trace=False,
                     observatory=PROFILE)
    spec = ServiceSpec(bounded=30.0, acceptance=1)
    kv = build_sharded_kv(
        dep, N_SHARDS, spec=spec, servers_per_shard=1, clients=N_CLIENTS,
        app_factory=lambda: KVStore(keep_log=False))
    workers = dep.services[kv.router.services[0]].client_pids
    per_lane = TOTAL_OPS // N_CLIENTS
    latencies = []
    failures = [0]
    completed = [0]
    rank_counts: Counter = Counter()
    if DIST == "zipf":
        cdf = _zipf_cdf(KEYS_PER_LANE, ZIPF_S)
        total_weight = cdf[-1]

    def pick_key(rng, lane_no, i):
        if DIST == "uniform":
            return f"w{lane_no}-k{i % KEYS_PER_LANE}"
        # Seeded per-lane draws, so the skewed schedule is as
        # reproducible as the uniform one.
        rank = bisect.bisect_left(cdf, rng.random() * total_weight)
        rank_counts[rank] += 1
        return f"w{lane_no}-k{rank}"

    async def one_call(view, window, key, i):
        try:
            begin = dep.runtime.now()
            result = await view.put(key, {"n": i, "blob": BLOB})
            latencies.append(dep.runtime.now() - begin)
            completed[0] += 1
            if not result.ok:
                failures[0] += 1
        finally:
            window.release()

    async def lane(pid, lane_no):
        view = ShardedKV(dep, pid, kv.router)
        window = dep.runtime.semaphore(WINDOW)
        rng = random.Random(1017 + lane_no)
        for i in range(per_lane):
            await window.acquire()
            dep.spawn_client(
                pid, one_call(view, window,
                              pick_key(rng, lane_no, i), i))
            await dep.runtime.sleep(ARRIVAL_INTERVAL)
        for _ in range(WINDOW):      # drain this lane's window
            await window.acquire()

    async def scenario():
        tasks = [dep.spawn_client(pid, lane(pid, lane_no))
                 for lane_no, pid in enumerate(workers)]
        for task in tasks:
            await dep.runtime.join(task)

    virtual_start = dep.runtime.now()
    wall_start = time.perf_counter()
    dep.run_scenario(scenario())
    wall = time.perf_counter() - wall_start
    virtual = dep.runtime.now() - virtual_start
    steps = dep.runtime.stats()["steps_executed"]
    profile_text = None
    if PROFILE:
        profiler = dep.observatory.profiler
        profile_text = "\n".join(
            ["# bench_x17 hot-path profile — phase: " + PHASE, ""]
            + profiler.report_lines(top=12)
            + ["", "# collapsed stacks (self virtual microseconds)",
               profiler.collapsed()])
    dep.settle(1.0)
    dep.shutdown()
    skew = {}
    if DIST == "zipf":
        drawn = sum(rank_counts.values())
        skew = {"distinct_keys": len(rank_counts),
                "top_key_share": rank_counts.most_common(1)[0][1] / drawn,
                "top10_share": sum(c for _, c in
                                   rank_counts.most_common(10)) / drawn}
    return {"ops": completed[0],
            "failures": failures[0],
            "wall_s": wall,
            "ops_per_sec_wall": completed[0] / wall,
            "virtual_s": virtual,
            "ops_per_sec_virtual": completed[0] / max(1e-9, virtual),
            "steps": steps,
            "steps_per_op": steps / max(1, completed[0]),
            "envelopes": int(dep.metrics.value("net.envelopes")),
            "latencies": latencies,
            "skew": skew,
            "profile": profile_text}


def _merged_points(current):
    """The committed pre-refactor baseline survives every re-run."""
    points = []
    if JSON_PATH.exists():
        try:
            doc = json.loads(JSON_PATH.read_text())
        except (ValueError, OSError):
            doc = {}
        points = [p for p in doc.get("points", [])
                  if p.get("phase") == "pre-refactor"
                  and current.get("phase") != "pre-refactor"]
    points.append(current)
    return points


def test_x17_hotpath(benchmark):
    row = run_once(benchmark, run_point)

    assert row["failures"] == 0
    assert row["ops"] == TOTAL_OPS

    if PROFILE:
        save_result(f"x17_hotpath_profile_{PHASE}", row["profile"])
        return

    if DIST == "zipf":
        # The skewed run is its own trajectory: it answers "what does a
        # hot-key workload cost", not "did the hot path get faster", so
        # it never merges with the uniform pre-refactor baseline.
        point = {"phase": PHASE,
                 "mode": "tiny" if TINY else "full",
                 "dist": "zipf",
                 "zipf_s": ZIPF_S,
                 "ops": row["ops"],
                 "ops_per_sec_wall": round(row["ops_per_sec_wall"], 1),
                 "wall_s": round(row["wall_s"], 3),
                 "virtual_s": round(row["virtual_s"], 3),
                 "steps_per_op": round(row["steps_per_op"], 2),
                 "envelopes": row["envelopes"],
                 "distinct_keys": row["skew"]["distinct_keys"],
                 "top_key_share": round(row["skew"]["top_key_share"], 4),
                 "top10_share": round(row["skew"]["top10_share"], 4),
                 **percentiles(row["latencies"])}
        save_result("x17_zipf", "\n".join([
            banner("X17 — hot path under Zipfian keys (--dist=zipf)",
                   f"open loop, {TOTAL_OPS} calls over {N_CLIENTS} "
                   f"lanes x {N_SHARDS} shards, Zipf s={ZIPF_S} over "
                   f"{KEYS_PER_LANE} keys/lane"),
            render_table(
                ["dist", "ops", "ops/s wall", "top key", "top 10",
                 "p95 ms"],
                [["zipf", point["ops"],
                  f"{point['ops_per_sec_wall']:.0f}",
                  f"{point['top_key_share'] * 100:.1f}%",
                  f"{point['top10_share'] * 100:.1f}%",
                  point["p95_ms"]]])]))
        attach(benchmark, {"ops_per_sec_wall": point["ops_per_sec_wall"],
                           "top_key_share": point["top_key_share"]})
        save_bench_json("x17_zipf", {"points": [point]}, tiny=TINY)
        return

    point = {"phase": PHASE,
             "mode": "tiny" if TINY else "full",
             "ops": row["ops"],
             "ops_per_sec_wall": round(row["ops_per_sec_wall"], 1),
             "wall_s": round(row["wall_s"], 3),
             "virtual_s": round(row["virtual_s"], 3),
             "steps_per_op": round(row["steps_per_op"], 2),
             "envelopes": row["envelopes"],
             **percentiles(row["latencies"])}
    points = _merged_points(point)

    baseline = next((p for p in points if p["phase"] == "pre-refactor"
                     and p.get("mode") == point["mode"]
                     and p is not point), None)
    speedup = (point["ops_per_sec_wall"] / baseline["ops_per_sec_wall"]
               if baseline else None)

    table = render_table(
        ["phase", "mode", "ops", "ops/s wall", "steps/op", "p95 ms"],
        [[p["phase"], p.get("mode", "full"), p["ops"],
          f"{p['ops_per_sec_wall']:.0f}", p.get("steps_per_op", "-"),
          p.get("p95_ms", "-")] for p in points]
        + ([["speedup", "", "", f"{speedup:.2f}x", "", ""]]
           if speedup else []))
    save_result("x17_hotpath", "\n".join([
        banner("X17 — call hot-path wall-clock throughput",
               f"open loop, {TOTAL_OPS} calls over {N_CLIENTS} lanes x "
               f"{N_SHARDS} shards, arrival interval "
               f"{ARRIVAL_INTERVAL * 1000:.2f}ms/lane, link "
               f"{LINK.delay * 1000:.1f}ms"),
        table]))
    attach(benchmark, {"ops_per_sec_wall": point["ops_per_sec_wall"],
                       "steps_per_op": point["steps_per_op"],
                       **({"speedup": round(speedup, 2)}
                          if speedup else {})})
    save_bench_json("x17_hotpath", {"points": points}, tiny=TINY)
