"""Benchmark-suite pytest options.

The benchmarks are parameterised by environment variables
(``REPRO_BENCH_TINY``, ``REPRO_X17_PROFILE``, ...) so CI YAML can set
them per step; this conftest adds the ergonomic command-line spellings
and translates them *before* the bench modules import and read the
environment.
"""

import os


def pytest_addoption(parser):
    parser.addoption(
        "--dist", choices=("uniform", "zipf"), default=None,
        help="key distribution for bench_x17 (same as REPRO_X17_DIST)")


def pytest_configure(config):
    dist = config.getoption("--dist")
    if dist is not None:
        os.environ["REPRO_X17_DIST"] = dist
