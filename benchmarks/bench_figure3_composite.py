"""E3 — Figure 3: a composite protocol's event wiring.

Figure 3 depicts the composite built from RPC Main (R), Synchronous Call
(S), Bounded Termination (B) and Unique Execution (U), with the event
lists: "Msg from network -> R, U; Call from user -> R, S; Timeout -> B;
Reply from server -> U".  This benchmark assembles exactly that
composite, dumps the live registration table from the framework, checks
it against the figure, and pushes one call through it to show the wiring
works.
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.bench import banner, render_table

#: Figure 3's composite: R + S + B + U (plus the always-needed
#: Collation/Acceptance completing the minimal functional set).
SPEC = ServiceSpec(call="synchronous", reliable=True, bounded=1.0,
                   unique=True)


def short(qualname: str) -> str:
    return qualname.split(".")[0]


def test_figure3_composite_wiring(benchmark):
    def experiment():
        cluster = ServiceCluster(SPEC, KVStore, n_servers=1,
                                 default_link=LinkSpec(delay=0.005,
                                                       jitter=0.0))
        grpc = cluster.grpc(1)
        table = grpc.bus.registration_table()
        result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                      extra_time=0.2)
        return table, result, cluster

    table, result, cluster = run_once(benchmark, experiment)

    rendered = render_table(
        ["event", "handlers (dispatch order)"],
        [[event, ", ".join(short(h) for h in handlers)]
         for event, handlers in sorted(table.items())])
    save_result("figure3_composite", "\n".join([
        banner("Figure 3 — composite protocol event wiring",
               "R=RPCMain S=SynchronousCall B=BoundedTermination "
               "U=UniqueExecution"),
        rendered,
        "",
        f"one call through the composite: id={result.id} "
        f"status={result.status.value}"]))
    attach(benchmark, {"events": len(table)})

    msg_net = [short(h) for h in table["MSG_FROM_NETWORK"]]
    # Figure 3: message arrival dispatches to R and U — and U's duplicate
    # filter runs before R's main handler, per the paper's priorities
    # (U=2 < R=3).  R also appears earlier with its dedup pre-check, so
    # compare against R's *last* (main) position.
    last_main = len(msg_net) - 1 - msg_net[::-1].index("RPCMain")
    assert msg_net.index("UniqueExecution") < last_main
    call_user = [short(h) for h in table["CALL_FROM_USER"]]
    # Figure 3: R first (records + transmits), then S (blocks the caller).
    assert call_user.index("RPCMain") < call_user.index("SynchronousCall")
    reply = [short(h) for h in table["REPLY_FROM_SERVER"]]
    assert "UniqueExecution" in reply
    # B's TIMEOUT registration is a per-call one-shot; once the bound
    # passes, only Reliable Communication's perpetual retransmission
    # timer stays armed.
    cluster.settle(SPEC.bounded + 0.1)
    assert cluster.grpc(cluster.client).bus.pending_timeouts() == 1
    assert result.ok
