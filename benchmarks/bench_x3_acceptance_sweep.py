"""X3 — acceptance limit vs response time (extension).

Sweeps the acceptance limit across a 5-replica group where one replica
suffers a performance failure.  Expected shape: latency is flat for
k = 1..4 (the four healthy replicas answer quickly) and jumps at k = 5,
where the client must wait for the slow replica — the quantitative
version of the paper's Section-5 motivation for acceptance-one reads.
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.bench import (
    ClosedLoopWorkload,
    banner,
    read_only_workload,
    render_series,
)

LINK = LinkSpec(delay=0.01, jitter=0.003)
SLOW_DELAY = 0.2
N_SERVERS = 5
CALLS = 40


def run_point(k):
    spec = ServiceSpec(acceptance=k, bounded=10.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=N_SERVERS, seed=5,
                             default_link=LINK, keep_trace=False)
    cluster.make_slow(N_SERVERS, SLOW_DELAY)
    workload = ClosedLoopWorkload(lambda i: read_only_workload(seed=i),
                                  calls_per_client=CALLS)
    result = workload.run(cluster, settle_time=0.5)
    return result.latency_stats().scaled(1000.0)


def test_x3_acceptance_sweep(benchmark):
    def experiment():
        return {k: run_point(k) for k in range(1, N_SERVERS + 1)}

    stats = run_once(benchmark, experiment)

    series = render_series(
        "acceptance limit", "mean latency (ms)",
        [(k, stats[k].mean) for k in sorted(stats)])
    save_result("x3_acceptance_sweep", "\n".join([
        banner("X3 — acceptance limit vs latency",
               f"{N_SERVERS} replicas, one with "
               f"+{SLOW_DELAY * 1000:.0f}ms performance failure"),
        series]))
    attach(benchmark, {f"k={k}": round(s.mean, 2)
                       for k, s in stats.items()})

    # Flat while the healthy replicas suffice...
    assert stats[4].mean < 3 * stats[1].mean
    assert stats[4].mean < SLOW_DELAY * 1000 / 2
    # ...and a cliff at k = n when the slow replica must be awaited.
    assert stats[5].mean > SLOW_DELAY * 1000 * 0.9
    assert stats[5].mean > 4 * stats[4].mean
