"""X19 — live adaptation: mid-run Total Order -> FIFO -> Total Order.

The experiment the adaptation plane exists for.  A three-server group
runs the replicated-state-machine composition (Total Order, acceptance
2) under sustained closed-loop client load.  Mid-run the ordering
leader develops a performance failure (every link toward it gains a
large delay), and the *running* service is reconfigured — no restart,
no dropped call — to FIFO delivery, which the two fast replicas can
satisfy without the slow leader's ORDER round.  After the leader heals,
a second live switch restores the original composition.

Four phases, all under continuous load:

* **A** — Total Order, healthy (the baseline);
* **B** — Total Order, slow leader (why you want to adapt: every call
  pays the leader's delay twice);
* **C** — FIFO, slow leader (the win: the fast replicas answer);
* **D** — Total Order, healed (round-trip complete: the service is
  back on its original composition, epoch 2).

Assertions:

* **zero acknowledged-call loss** — every call issued across all four
  phases (including the ones parked at the adaptation gate mid-switch)
  completes OK;
* the FIFO phase is strictly faster than the degraded Total Order
  phase;
* both switches keep the parameter-free micro-protocols' running
  instances (reply stores, call-id cursors survive);
* **reseed determinism** — the whole scenario, run twice from the same
  seed, produces byte-identical results (latencies, fence drops,
  parked counts included): the adaptation plane adds no scheduling
  nondeterminism.

Modes: full (default) or ``REPRO_BENCH_TINY=1`` (CI bench-smoke).
Writes ``BENCH_x19_adaptation.json``.
"""

import os

from _common import (attach, percentiles, run_once, save_bench_json,
                     save_result)

from repro import Deployment, LinkSpec, ServiceSpec
from repro.apps import KVStore
from repro.bench import banner, render_table

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

LINK = LinkSpec(delay=0.01, jitter=0.0)
N_SERVERS = 3
N_LANES = 2
CALLS_PER_PHASE = 8 if TINY else 60    # completions per phase (summed
                                       # over lanes) before moving on
SLOW = 0.25                            # leader's injected one-way delay

PHASES = ("A", "B", "C", "D")
PHASE_LABELS = {
    "A": "total order, healthy",
    "B": "total order, slow leader",
    "C": "fifo, slow leader",
    "D": "total order, healed",
}


def run_point(seed=19):
    dep = Deployment(seed=seed, default_link=LINK, keep_trace=False)
    spec = ServiceSpec(reliable=True, unique=True, ordering="total",
                       acceptance=2)
    svc = dep.add_service("adaptive", spec, KVStore,
                          servers=N_SERVERS, clients=N_LANES)
    leader = max(svc.server_pids)      # the paper's leader rule
    phase = ["A"]
    latencies = {p: [] for p in PHASES}
    issued = [0]
    completed_ok = [0]

    async def lane(pid, lane_no):
        i = 0
        while phase[0] != "done":
            begin = dep.runtime.now()
            issued[0] += 1
            result = await dep.call(pid, "adaptive", "put",
                                    {"key": f"l{lane_no}-k{i}",
                                     "value": i})
            if result.ok:
                completed_ok[0] += 1
            bucket = latencies.get(phase[0])
            if bucket is not None:     # a call landing after phase D
                bucket.append(round(dep.runtime.now() - begin, 9))
            i += 1

    async def until(p):
        while len(latencies[p]) < CALLS_PER_PHASE:
            await dep.runtime.sleep(0.005)

    async def scenario():
        tasks = [dep.spawn_client(pid, lane(pid, n))
                 for n, pid in enumerate(svc.client_pids)]
        await until("A")
        dep.make_slow(leader, SLOW)
        phase[0] = "B"
        await until("B")
        # The first live switch, under load: lanes keep calling; the
        # engine parks them, drains, swaps, releases.
        degrade = await dep.adapt(
            "adaptive", svc.spec.with_(ordering="fifo"),
            reason="bench: leader slow")
        phase[0] = "C"
        await until("C")
        dep.fabric.set_links_to(leader, LINK)
        restore = await dep.adapt(
            "adaptive", svc.spec.with_(ordering="total"),
            reason="bench: leader healed")
        phase[0] = "D"
        await until("D")
        phase[0] = "done"
        for task in tasks:
            await dep.runtime.join(task)
        return degrade, restore

    degrade, restore = dep.run_scenario(scenario(), extra_time=1.0)
    fenced = int(dep.metrics.counter("adapt.fence.dropped").value)
    dep.shutdown()

    def mean_ms(p):
        vals = latencies[p]
        return round(sum(vals) / len(vals) * 1000, 3)

    return {
        "issued": issued[0],
        "completed_ok": completed_ok[0],
        "per_phase": {p: {"calls": len(latencies[p]),
                          "mean_ms": mean_ms(p),
                          **percentiles(latencies[p])}
                      for p in PHASES},
        "fenced_messages": fenced,
        "switches": [
            {"reason": r.reason, "epoch": r.epoch, "parked": r.parked,
             "kept": r.kept, "drain_ms": round(r.drain_s * 1000, 3),
             "switch_ms": round(r.switch_s * 1000, 3),
             "to": r.to_protocols}
            for r in (degrade, restore)],
    }


def test_x19_adaptation(benchmark):
    row = run_once(benchmark, run_point)

    # Zero acknowledged-call loss across both live switches.
    assert row["completed_ok"] == row["issued"]
    for p in PHASES:
        assert row["per_phase"][p]["calls"] >= CALLS_PER_PHASE

    # The switch is why you adapt: FIFO under the slow leader must beat
    # degraded Total Order (which pays the leader's delay per call).
    degraded = row["per_phase"]["B"]["mean_ms"]
    adapted = row["per_phase"]["C"]["mean_ms"]
    assert adapted < degraded
    win = round(degraded / adapted, 2)

    # Round trip: epoch 1 then 2, parameter-free instances kept.
    assert [s["epoch"] for s in row["switches"]] == [1, 2]
    for switch in row["switches"]:
        assert "Unique_Execution" in switch["kept"]
        assert "RPC_Main" in switch["kept"]
    assert "Total_Order" in row["switches"][1]["to"]

    # Reseed determinism: the adaptation plane adds no scheduling
    # nondeterminism — the whole scenario replays byte-identically.
    assert run_point(seed=19) == row

    table = render_table(
        ["phase", "composition", "calls", "mean ms", "p95 ms"],
        [[p, PHASE_LABELS[p], row["per_phase"][p]["calls"],
          row["per_phase"][p]["mean_ms"], row["per_phase"][p]["p95_ms"]]
         for p in PHASES]
        + [["", "fifo-vs-degraded speedup", "", f"{win}x", ""]])
    switch_table = render_table(
        ["switch", "epoch", "parked", "kept", "drain ms"],
        [[s["reason"], s["epoch"], s["parked"], len(s["kept"]),
          s["drain_ms"]] for s in row["switches"]])
    save_result("x19_adaptation", "\n".join([
        banner("X19 — live adaptation: Total Order -> FIFO -> Total "
               "Order on a running group",
               f"{N_SERVERS} servers, {N_LANES} closed-loop lanes, "
               f"{CALLS_PER_PHASE} calls/phase, leader delay "
               f"{SLOW * 1000:.0f}ms; zero acknowledged-call loss"),
        table, "", switch_table,
        "", f"stale cross-epoch messages fenced: "
            f"{row['fenced_messages']}"]))
    attach(benchmark, {"speedup": win,
                       "parked": row["switches"][0]["parked"],
                       "fenced": row["fenced_messages"]})
    save_bench_json("x19_adaptation", {
        "mode": "tiny" if TINY else "full",
        "issued": row["issued"],
        "completed_ok": row["completed_ok"],
        "speedup_fifo_vs_degraded_total": win,
        "per_phase": row["per_phase"],
        "switches": row["switches"],
        "fenced_messages": row["fenced_messages"],
    }, tiny=TINY)
