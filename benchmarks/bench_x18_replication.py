"""X18 — replicated shard groups: read scaling and primary failover.

Two experiments over the ``repro.replication`` subsystem, both in
virtual time (deterministic; a reseeded run reproduces every number):

* **Read scaling (active mode).**  One shard deployed as an active
  replica group of 1..3 replicas, serial execution with a fixed
  per-operation service time, reads round-robined over in-sync replicas
  by the deployment's read/write routing split.  A closed-loop reader
  pool drives the same workload against every group size; read
  throughput must grow monotonically with the replica count, because
  each replica serves its share of reads independently.  A write-latency
  sweep across compositions (acceptance 1 vs ALL, no ordering vs total
  order, passive) shows what each consistency knob costs on the same
  group.

* **Primary failover (passive mode).**  A primary-backup group absorbs
  a steady write load; the primary is crashed *while a write executes on
  it*.  The group promotes a backup (deterministic largest-pid rule),
  parks and transparently re-issues the interrupted write, and resumes.
  The benchmark verifies **zero acknowledged-write loss** (every OK'd
  write is readable after the crash) and that the unavailability window
  is bounded by the composition's bounded-termination timeout plus the
  promotion, not by luck.

``REPRO_BENCH_TINY=1`` shrinks the workload for the CI smoke lane.
"""

import os

from _common import (attach, percentiles, run_once, save_bench_json,
                     save_result)

from repro import Deployment, LinkSpec
from repro.apps import KVStore, ShardedKV, build_sharded_kv
from repro.bench import banner, render_table
from repro.core.microprotocols import ALL
from repro.replication import active_replicas, primary_backup

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

LINK = LinkSpec(delay=0.001, jitter=0.0005)
OP_DELAY = 0.005             # server-side service time per operation
REPLICA_COUNTS = (1, 2, 3)
N_READERS = 4 if TINY else 6
READS_PER_READER = 12 if TINY else 60
N_KEYS = 12                  # preloaded keyspace the readers cycle over
WRITES_PER_COMP = 8 if TINY else 40
FAILOVER_BOUND = 0.5         # passive bounded-termination timeout
PRE_WRITES = 6 if TINY else 25
POST_WRITES = 6 if TINY else 25

#: The write-latency sweep: label -> ReplicaSpec factory (3 replicas).
COMPOSITIONS = [
    ("active acc=1",       lambda: active_replicas(3)),
    ("active acc=ALL",     lambda: active_replicas(3, acceptance=ALL)),
    ("active total order", lambda: active_replicas(3, acceptance=ALL,
                                                   ordering="total")),
    ("passive (pb)",       lambda: primary_backup(3)),
]


def run_read_point(replicas):
    dep = Deployment(seed=18, default_link=LINK, keep_trace=False)
    kv = build_sharded_kv(
        dep, 1, replication=active_replicas(replicas),
        clients=N_READERS,
        app_factory=lambda: KVStore(op_delay=OP_DELAY, keep_log=False))
    readers = dep.services["shard-0"].client_pids

    async def preload():
        for i in range(N_KEYS):
            assert (await kv.put(f"k{i}", i)).ok

    dep.run_scenario(preload())
    latencies = []
    failures = [0]

    async def reader(pid, lane):
        view = ShardedKV(dep, pid, kv.router)
        for i in range(READS_PER_READER):
            begin = dep.runtime.now()
            result = await view.get(f"k{(lane + i) % N_KEYS}")
            latencies.append(dep.runtime.now() - begin)
            if not result.ok:
                failures[0] += 1

    async def scenario():
        tasks = [dep.spawn_client(pid, reader(pid, lane))
                 for lane, pid in enumerate(readers)]
        for task in tasks:
            await dep.runtime.join(task)

    start = dep.runtime.now()
    dep.run_scenario(scenario())
    elapsed = dep.runtime.now() - start
    total = N_READERS * READS_PER_READER
    dep.settle(1.0)
    dep.shutdown()
    return {"replicas": replicas,
            "reads": total,
            "read_ops_per_sec": total / elapsed,
            "elapsed_s": elapsed,
            "reads_routed": int(dep.metrics.value("repl.reads.routed")),
            "failures": failures[0],
            "latencies": latencies}


def run_write_point(label, rspec_factory):
    dep = Deployment(seed=18, default_link=LINK, keep_trace=False)
    kv = build_sharded_kv(
        dep, 1, replication=rspec_factory(),
        app_factory=lambda: KVStore(op_delay=OP_DELAY, keep_log=False))
    latencies = []
    failures = [0]

    async def scenario():
        for i in range(WRITES_PER_COMP):
            begin = dep.runtime.now()
            result = await kv.put(f"w{i}", i)
            latencies.append(dep.runtime.now() - begin)
            if not result.ok:
                failures[0] += 1

    dep.run_scenario(scenario())
    dep.settle(1.0)
    dep.shutdown()
    return {"composition": label,
            "writes": WRITES_PER_COMP,
            "mean_ms": sum(latencies) / len(latencies) * 1000,
            "failures": failures[0],
            "latencies": latencies}


def run_failover_point():
    dep = Deployment(seed=118, default_link=LINK, keep_trace=False,
                     membership="oracle")
    kv = build_sharded_kv(
        dep, 1, replication=primary_backup(3, bounded=FAILOVER_BOUND),
        app_factory=lambda: KVStore(op_delay=OP_DELAY, keep_log=False))
    group = dep.replication.group("shard-0")
    old_primary = group.primary
    acked = []
    latencies = []

    async def timed_put(key, value, **extra):
        begin = dep.runtime.now()
        result = await kv.put(key, value, **extra)
        latencies.append(dep.runtime.now() - begin)
        if result.ok:
            acked.append((key, value))
        return result

    async def scenario():
        for i in range(PRE_WRITES):
            await timed_put(f"pre{i}", i)
        # Crash the primary while a write is executing on it; the group
        # parks the call, promotes, and re-issues it transparently.
        handle = dep.runtime.spawn(
            timed_put("inflight", -1, delay=0.4), name="victim-write")
        await dep.runtime.sleep(0.1)
        dep.crash(old_primary)
        await dep.runtime.join(handle)
        for i in range(POST_WRITES):
            await timed_put(f"post{i}", i)

    dep.run_scenario(scenario())

    lost = []

    async def audit():
        for key, value in acked:
            result = await kv.get(key)
            if not result.ok or result.args != value:
                lost.append(key)

    dep.run_scenario(audit())
    dep.settle(1.0)
    dep.shutdown()
    steady = sorted(latencies)[len(latencies) // 2]
    return {"writes": PRE_WRITES + POST_WRITES + 1,
            "acked": len(acked),
            "lost_acked": len(lost),
            "promotions": int(dep.metrics.value("repl.promotions")),
            "failover_retries": int(
                dep.metrics.value("repl.failover.retries")),
            "new_primary": group.primary,
            "old_primary": old_primary,
            "steady_write_ms": steady * 1000,
            "max_write_ms": max(latencies) * 1000,
            "latencies": latencies}


def test_x18_replication(benchmark):
    def experiment():
        return {"reads": [run_read_point(n) for n in REPLICA_COUNTS],
                "writes": [run_write_point(label, factory)
                           for label, factory in COMPOSITIONS],
                "failover": run_failover_point()}

    result = run_once(benchmark, experiment)
    reads, writes, failover = (result["reads"], result["writes"],
                               result["failover"])

    base = reads[0]["read_ops_per_sec"]
    read_table = render_table(
        ["replicas", "read ops/s (virtual)", "speedup", "p95 ms"],
        [[r["replicas"], f"{r['read_ops_per_sec']:.0f}",
          f"{r['read_ops_per_sec'] / base:.2f}x",
          percentiles(r["latencies"])["p95_ms"]] for r in reads])
    write_table = render_table(
        ["composition", "mean write ms", "p95 ms"],
        [[w["composition"], f"{w['mean_ms']:.2f}",
          percentiles(w["latencies"])["p95_ms"]] for w in writes])
    failover_table = render_table(
        ["writes", "acked", "lost", "promotions", "steady ms", "max ms"],
        [[failover["writes"], failover["acked"], failover["lost_acked"],
          failover["promotions"], f"{failover['steady_write_ms']:.2f}",
          f"{failover['max_write_ms']:.2f}"]])
    save_result("x18_replication", "\n".join([
        banner("X18 — replicated shard groups",
               f"{N_READERS} readers x {READS_PER_READER} reads, "
               f"{OP_DELAY * 1000:.0f}ms/op service time, link "
               f"{LINK.delay * 1000:.1f}ms; passive failover with an "
               f"in-flight write, bounded {FAILOVER_BOUND}s"),
        "read scaling (active, acceptance=1, no ordering):", read_table,
        "", "write cost by composition (3 replicas):", write_table,
        "", "passive primary crash under load:", failover_table]))

    attach(benchmark, {
        **{f"read_ops_{r['replicas']}r":
           round(r["read_ops_per_sec"], 1) for r in reads},
        "failover_lost_acked": failover["lost_acked"],
        "failover_max_write_ms": round(failover["max_write_ms"], 2)})
    save_bench_json("x18_replication", {
        "workload": {"readers": N_READERS,
                     "reads_per_reader": READS_PER_READER,
                     "writes_per_composition": WRITES_PER_COMP,
                     "op_delay_ms": OP_DELAY * 1000,
                     "failover_bound_s": FAILOVER_BOUND},
        "read_scaling": [{"replicas": r["replicas"],
                          "read_ops_per_sec":
                              round(r["read_ops_per_sec"], 1),
                          "reads_routed": r["reads_routed"],
                          "failures": r["failures"],
                          **percentiles(r["latencies"])} for r in reads],
        "write_compositions": [{"composition": w["composition"],
                                "mean_ms": round(w["mean_ms"], 3),
                                "failures": w["failures"],
                                **percentiles(w["latencies"])}
                               for w in writes],
        "failover": {key: (round(value, 3)
                           if isinstance(value, float) else value)
                     for key, value in failover.items()
                     if key != "latencies"}},
        tiny=TINY)

    # Read throughput must grow monotonically with the replica count.
    rates = [r["read_ops_per_sec"] for r in reads]
    assert rates[1] > rates[0] and rates[2] > rates[1], rates
    assert all(r["failures"] == 0 for r in reads)
    # Every narrowed read was routed by the replica group.
    assert all(r["reads_routed"] == N_READERS * READS_PER_READER
               for r in reads)

    # Stronger acceptance / ordering must not be cheaper than acc=1.
    by_comp = {w["composition"]: w["mean_ms"] for w in writes}
    assert all(w["failures"] == 0 for w in writes)
    assert by_comp["active acc=ALL"] >= by_comp["active acc=1"]
    assert by_comp["active total order"] >= by_comp["active acc=1"]
    assert by_comp["passive (pb)"] >= by_comp["active acc=1"]

    # Failover: no acknowledged write lost, exactly one promotion, and
    # the outage is bounded by the timeout + promotion, not unbounded.
    assert failover["lost_acked"] == 0
    assert failover["acked"] == failover["writes"]
    assert failover["promotions"] == 1
    assert failover["failover_retries"] == 1
    assert failover["max_write_ms"] < (FAILOVER_BOUND + 1.0) * 1000
