"""X9 — Atomic Execution's checkpoint cost vs server state size.

The paper flags this exact issue: "this implementation is inefficient
when the state of the user protocol is large.  This can be optimized by
just storing the changes ('deltas') from one checkpoint to the next."

This ablation measures whole-state checkpointing (the paper's baseline
design) as server state grows — CPU time per call grows with the state
size — and then measures the implemented delta extension
(``atomic_delta=True``) on the same sweep, quantifying how much of that
cost the paper's proposed optimization recovers.
"""

import time

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster
from repro.apps import KVStore
from repro.bench import banner, render_table
from repro.core.config import at_most_once

LINK = LinkSpec(delay=0.005, jitter=0.0)
CALLS = 20
STATE_SIZES = (10, 100, 1000, 5000)


def run_point(n_keys, delta=False):
    spec = at_most_once(acceptance=1, bounded=0.0, atomic_delta=delta,
                        atomic_compact_every=1000)
    cluster = ServiceCluster(spec, lambda pid: KVStore(keep_log=False),
                             n_servers=1, seed=0,
                             default_link=LINK, keep_trace=False)
    # Pre-populate the server state directly (setup, not measured).
    app = cluster.app(1)
    for i in range(n_keys):
        app.data[f"pre-{i}"] = "x" * 32

    async def client():
        for i in range(CALLS):
            result = await cluster.call(cluster.client, "put",
                                        {"key": f"k{i}", "value": i})
            assert result.ok

    task = cluster.spawn_client(cluster.client, client())
    before_writes = cluster.node(1).stable.checkpoint_writes
    wall0 = time.perf_counter()

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=0.3)
    wall = time.perf_counter() - wall0
    writes = cluster.node(1).stable.checkpoint_writes - before_writes
    return {"state_keys": n_keys, "delta": delta,
            "checkpoint_writes_per_call": writes / CALLS,
            "cpu_us_per_call": wall / CALLS * 1e6}


def test_x9_checkpoint_cost(benchmark):
    def experiment():
        whole = [run_point(n, delta=False) for n in STATE_SIZES]
        deltas = [run_point(n, delta=True) for n in STATE_SIZES]
        return whole, deltas

    whole, deltas = run_once(benchmark, experiment)

    table = render_table(
        ["server state (keys)", "whole-state cpu us/call",
         "delta cpu us/call", "delta speedup"],
        [[w["state_keys"], f"{w['cpu_us_per_call']:.0f}",
          f"{d['cpu_us_per_call']:.0f}",
          f"{w['cpu_us_per_call'] / d['cpu_us_per_call']:.1f}x"]
         for w, d in zip(whole, deltas)])
    save_result("x9_checkpoint_cost", "\n".join([
        banner("X9 — checkpoint cost: whole-state vs deltas",
               "at-most-once service; the paper's noted inefficiency "
               "and its proposed fix"),
        table, "",
        'paper: "inefficient when the state of the user protocol is '
        'large ... can be optimized by just storing the changes '
        '(deltas)"']))
    attach(benchmark, {f"{w['state_keys']}keys":
                       round(w["cpu_us_per_call"]) for w in whole})

    # One checkpoint per execution (plus the one-off bootstrap).
    assert all(1.0 <= r["checkpoint_writes_per_call"] <= 1.0 + 2 / CALLS
               for r in whole)
    # Whole-state CPU cost grows with state size — the paper's concern.
    assert whole[-1]["cpu_us_per_call"] > 3 * whole[0]["cpu_us_per_call"]
    # The delta optimization substantially flattens the largest case.
    assert deltas[-1]["cpu_us_per_call"] \
        < whole[-1]["cpu_us_per_call"] / 2
