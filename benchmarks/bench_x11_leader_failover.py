"""X11 — Total Order leader failover: availability cost of the agreement
phase (extension).

Measures service interruption when the order-assigning leader crashes
under continuous load: the gap between the last call completed before
the crash and the first call completed after it, as a function of the
resync grace period.  A longer grace tolerates slower ORDER_INFO replies
but extends the window in which the new leader assigns nothing.

Expected shape: downtime ≈ membership detection + one query round; it
grows with the grace only when responders are lost (not here), so the
dominant term is the detection delay — and the no-resync baseline is
only marginally faster while being unsafe under partial dissemination
(see tests/test_total_order_resync.py).
"""

from _common import attach, run_once, save_result

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.bench import banner, render_table

LINK = LinkSpec(delay=0.01, jitter=0.005)
CRASH_AT = 1.0
GRACES = (0.1, 0.3, 0.6)


def run_point(resync, grace, seed=0):
    spec = ServiceSpec(ordering="total", unique=True, bounded=0.0,
                       acceptance=3, total_resync=resync,
                       total_resync_grace=grace)
    cluster = ServiceCluster(spec, KVStore, n_servers=3, seed=seed,
                             default_link=LINK, membership="oracle",
                             keep_trace=False)
    completions = []

    async def client_loop():
        i = 0
        while cluster.runtime.now() < CRASH_AT + 8.0:
            result = await cluster.call(cluster.client, "put",
                                        {"key": f"k{i % 4}", "value": i})
            if result.ok:
                completions.append(cluster.runtime.now())
            i += 1

    async def scenario():
        task = cluster.spawn_client(cluster.client, client_loop())
        await cluster.runtime.sleep(CRASH_AT)
        cluster.crash(3)
        try:
            await cluster.runtime.join(task)
        except BaseException:
            pass

    cluster.run_scenario(scenario(), extra_time=1.0)
    before = max((t for t in completions if t <= CRASH_AT), default=None)
    after = min((t for t in completions if t > CRASH_AT), default=None)
    downtime = (after - CRASH_AT) if after is not None else None
    total_after = sum(1 for t in completions if t > CRASH_AT)
    return {"resync": resync, "grace": grace, "downtime": downtime,
            "completed_after": total_after}


def test_x11_leader_failover(benchmark):
    def experiment():
        rows = [run_point(False, 0.0)]
        rows.extend(run_point(True, g) for g in GRACES)
        return rows

    rows = run_once(benchmark, experiment)

    def label(r):
        if not r["resync"]:
            return "no agreement phase (paper's simplified protocol)"
        return f"resync, grace {r['grace'] * 1000:.0f} ms"

    table = render_table(
        ["configuration", "failover downtime ms", "calls after crash"],
        [[label(r),
          f"{r['downtime'] * 1000:.0f}" if r["downtime"] else "stalled",
          r["completed_after"]] for r in rows])
    save_result("x11_leader_failover", "\n".join([
        banner("X11 — Total Order leader failover",
               "sequential load, leader crashed at t=1s, oracle "
               "membership"),
        table]))
    attach(benchmark, {label(r): (round(r["downtime"] * 1000)
                                  if r["downtime"] else -1)
                       for r in rows})

    # Service resumes under every configuration in this benign scenario
    # (the unsafe cases need targeted injection; see the test suite).
    assert all(r["downtime"] is not None for r in rows)
    assert all(r["completed_after"] > 10 for r in rows)
    # The agreement phase costs at most ~a query round on top of the
    # baseline: well under a second here.
    for r in rows:
        assert r["downtime"] < 1.5