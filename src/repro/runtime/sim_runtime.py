"""Runtime adapter for the deterministic simulation kernel."""

from __future__ import annotations

from typing import Any, Callable, Coroutine

from repro.errors import NoCurrentTask, TaskCancelled
from repro.runtime.base import Runtime
from repro.sim import kernel as _kernel
from repro.sim.kernel import Kernel, Task, Timer
from repro.sim.sync import Event, Lock, Queue, Semaphore

__all__ = ["SimRuntime"]


class SimRuntime(Runtime):
    """The default runtime: virtual time, deterministic scheduling.

    Wraps a :class:`repro.sim.kernel.Kernel`.  Experiments construct one
    runtime, build the simulated network and protocol stacks against it,
    then drive it with :meth:`run`/:meth:`run_for`.
    """

    cancelled_exceptions = (TaskCancelled,)

    def __init__(self, kernel: Kernel | None = None):
        self.kernel = kernel or Kernel()

    # -- time -----------------------------------------------------------

    def now(self) -> float:
        return self.kernel.now

    async def sleep(self, delay: float) -> None:
        await _kernel.sleep(delay)

    def call_later(self, delay: float,
                   action: Callable[[], None]) -> Timer:
        return self.kernel.call_later(delay, action)

    # -- tasks ----------------------------------------------------------

    def spawn(self, coro: Coroutine, *, name: str = "",
              daemon: bool = False) -> Task:
        return self.kernel.spawn(coro, name=name, daemon=daemon)

    def cancel(self, handle: Task) -> None:
        handle.cancel()

    async def current_handle(self) -> Task:
        return await _kernel.current_task()

    def current_handle_nowait(self) -> Task:
        task = self.kernel._current
        if task is None:
            raise NoCurrentTask("no task is currently executing")
        return task

    async def join(self, handle: Task) -> Any:
        return await handle.join()

    # -- primitives -----------------------------------------------------

    def semaphore(self, value: int = 1) -> Semaphore:
        return Semaphore(value)

    def lock(self) -> Lock:
        return Lock()

    def event(self) -> Event:
        # Bound to the owning kernel so configuration actions (crash ->
        # promotion -> gate release) may set it between runs.
        return Event(kernel=self.kernel)

    def queue(self) -> Queue:
        return Queue()

    # -- drivers (sim-only conveniences) --------------------------------

    def run(self, coro: Coroutine | None = None, *, strict: bool = True,
            shutdown: bool = True):
        """Run the kernel; see :meth:`repro.sim.kernel.Kernel.run`."""
        return self.kernel.run(coro, strict=strict, shutdown=shutdown)

    def run_for(self, duration: float, *, strict: bool = True) -> None:
        self.kernel.run_for(duration, strict=strict)

    def run_until_idle(self, *, strict: bool = True) -> None:
        self.kernel.run_until_idle(strict=strict)

    # -- observability ---------------------------------------------------

    def attach_profiler(self, profiler) -> None:
        """Install the profiler and hook the kernel's step path."""
        super().attach_profiler(profiler)
        self.kernel.profile_hook = (profiler.on_step
                                    if profiler is not None else None)

    def stats(self) -> dict:
        """The kernel's scheduler counters (steps, spawns, timer fires)."""
        return self.kernel.stats()
