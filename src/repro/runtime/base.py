"""Runtime abstraction: one interface over the sim kernel and asyncio.

The paper's micro-protocols are written once and composed into different
services; we additionally make them *runtime portable* — the same protocol
code runs on the deterministic virtual-time kernel (for tests, experiments
and benchmarks) or on ``asyncio`` in real time (for the live demo example).

Protocol code must obtain every primitive it blocks on from the runtime
(``rt.semaphore()``, ``rt.queue()``, ``await rt.sleep(...)``); never mix
primitives from different runtimes.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Coroutine, Tuple

__all__ = ["Runtime", "CancelScope"]


class Runtime(abc.ABC):
    """Factory and scheduler facade used by all protocol code."""

    #: Exception classes that signal task cancellation on this runtime.
    cancelled_exceptions: Tuple[type, ...] = ()

    #: The attached observability recorder; ``None`` when disabled.
    _obs: Any = None

    #: The attached kernel profiler; ``None`` when disabled.
    _profiler: Any = None

    # -- observability ---------------------------------------------------

    def attach_obs(self, recorder: Any) -> None:
        """Install an observability recorder for this runtime's stacks.

        The enabled check happens HERE, once: a disabled (or ``None``)
        recorder is stored as ``None``, and every instrumented component
        (event buses, composites, the fabric) captures that reference at
        construction time — so the disabled hot path is a single
        ``is None`` test.  Attach before building protocol stacks.
        """
        if recorder is not None and getattr(recorder, "enabled", False):
            self._obs = recorder
            recorder.bind(self)
        else:
            self._obs = None

    @property
    def obs(self) -> Any:
        """The enabled recorder, or ``None`` (tracing disabled)."""
        return self._obs

    def attach_profiler(self, profiler: Any) -> None:
        """Install a :class:`~repro.obs.profiler.KernelProfiler`.

        Same contract as :meth:`attach_obs`: event buses capture
        ``runtime.profiler`` once at construction, so attach before
        building protocol stacks.  Concrete runtimes additionally hook
        their scheduler's step path.
        """
        self._profiler = profiler

    @property
    def profiler(self) -> Any:
        """The attached profiler, or ``None`` (profiling disabled)."""
        return self._profiler

    def stats(self) -> dict:
        """Scheduler-level counters for the metrics exporters.

        Concrete runtimes override this with whatever their scheduler
        can cheaply report (the sim kernel: steps, spawns, timer fires).
        """
        return {}

    # -- time -----------------------------------------------------------

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock)."""

    @abc.abstractmethod
    async def sleep(self, delay: float) -> None:
        """Suspend the calling task for ``delay`` seconds."""

    @abc.abstractmethod
    def call_later(self, delay: float, action: Callable[[], None]) -> Any:
        """Schedule a plain callable; returns a handle with ``cancel()``."""

    # -- tasks ----------------------------------------------------------

    @abc.abstractmethod
    def spawn(self, coro: Coroutine, *, name: str = "",
              daemon: bool = False) -> Any:
        """Start a task; returns a handle usable with :meth:`cancel`."""

    @abc.abstractmethod
    def cancel(self, handle: Any) -> None:
        """Cancel a task previously returned by :meth:`spawn`."""

    @abc.abstractmethod
    async def current_handle(self) -> Any:
        """Handle for the calling task (the paper's ``my_thread()``)."""

    @abc.abstractmethod
    def current_handle_nowait(self) -> Any:
        """Synchronous variant of :meth:`current_handle`.

        Only valid while a task is actually executing (e.g. from within an
        event handler); used by the framework's ``cancel_event`` which the
        paper specifies as a plain (non-blocking) operation.
        """

    @abc.abstractmethod
    async def join(self, handle: Any) -> Any:
        """Wait for a task to finish; returns its result."""

    # -- primitives -----------------------------------------------------

    @abc.abstractmethod
    def semaphore(self, value: int = 1) -> Any:
        """A counting semaphore with ``acquire``/``release``/``reset``."""

    @abc.abstractmethod
    def lock(self) -> Any:
        """A mutex (binary semaphore)."""

    @abc.abstractmethod
    def event(self) -> Any:
        """A one-shot event with ``set``/``wait``/``is_set``."""

    @abc.abstractmethod
    def queue(self) -> Any:
        """An unbounded FIFO with sync ``put`` and async ``get``."""


class CancelScope:
    """Tracks spawned task handles so a group can be torn down together.

    Simulated node crashes use one scope per node: crash = cancel every
    handle registered in the scope.  Handles that finish are pruned lazily.
    """

    def __init__(self, runtime: Runtime):
        self._runtime = runtime
        self._handles: list[Any] = []
        # Prune finished handles once the list reaches this length, then
        # re-arm at twice the surviving count: amortized O(1) per spawn,
        # and a long-lived node's scope stays proportional to its *live*
        # tasks instead of retaining every task it ever ran (a per-message
        # task model spawns millions over a long run; keeping them all
        # also inflates every gc generation-2 sweep).
        self._prune_at = 64

    @staticmethod
    def _finished(handle: Any) -> bool:
        done = getattr(handle, "done", None)
        if callable(done):  # asyncio.Task.done()
            return done()
        return bool(done)   # sim Task.done property

    def _register(self, handle: Any) -> None:
        handles = self._handles
        handles.append(handle)
        if len(handles) >= self._prune_at:
            finished = self._finished
            self._handles = [h for h in handles if not finished(h)]
            self._prune_at = max(64, 2 * len(self._handles))

    def spawn(self, coro: Coroutine, *, name: str = "",
              daemon: bool = False) -> Any:
        handle = self._runtime.spawn(coro, name=name, daemon=daemon)
        self._register(handle)
        return handle

    def adopt(self, handle: Any) -> None:
        """Register an externally spawned handle with this scope."""
        self._register(handle)

    def cancel_all(self) -> int:
        """Cancel every live handle; returns how many were cancelled."""
        cancelled = 0
        for handle in self._handles:
            if not self._finished(handle):
                self._runtime.cancel(handle)
                cancelled += 1
        self._handles.clear()
        self._prune_at = 64
        return cancelled
