"""Runtime abstraction over the sim kernel and asyncio."""

from repro.runtime.asyncio_runtime import AsyncioRuntime
from repro.runtime.base import CancelScope, Runtime
from repro.runtime.sim_runtime import SimRuntime

__all__ = ["Runtime", "CancelScope", "SimRuntime", "AsyncioRuntime"]
