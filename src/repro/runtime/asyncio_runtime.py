"""Runtime adapter for ``asyncio`` (real-time execution).

Lets the exact same micro-protocol code that runs on the deterministic
simulator run in wall-clock time on the standard library event loop.  Used
by the live demo example and by a small set of cross-runtime tests; the
experiments all use :class:`repro.runtime.sim_runtime.SimRuntime` for
determinism.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Coroutine, Deque, Optional

from repro.runtime.base import Runtime

__all__ = ["AsyncioRuntime"]


class _AsyncioSemaphore:
    """Adapter giving ``asyncio.Semaphore`` the sim semaphore's surface.

    Adds ``value``, ``reset`` and non-async ``release`` matching
    :class:`repro.sim.sync.Semaphore`, which the micro-protocols rely on.
    """

    def __init__(self, value: int = 1):
        self._sem = asyncio.Semaphore(value)
        self._count = value

    @property
    def value(self) -> int:
        return max(0, self._count)

    def locked(self) -> bool:
        return self._sem.locked()

    async def acquire(self) -> None:
        await self._sem.acquire()
        self._count -= 1

    def release(self) -> None:
        self._count += 1
        self._sem.release()

    def reset(self, value: int) -> None:
        # Release enough permits to reach the requested level.  asyncio has
        # no public way to revoke permits, so reset only grows the counter —
        # sufficient for the recovery paths that use it (reset to free).
        while self._count < value:
            self.release()

    async def __aenter__(self) -> "_AsyncioSemaphore":
        await self.acquire()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        self.release()


class _AsyncioQueue:
    """Adapter exposing sync ``put`` over ``asyncio.Queue``."""

    def __init__(self) -> None:
        self._queue: asyncio.Queue = asyncio.Queue()

    def __len__(self) -> int:
        return self._queue.qsize()

    def empty(self) -> bool:
        return self._queue.empty()

    def put(self, item: Any) -> None:
        self._queue.put_nowait(item)

    async def get(self) -> Any:
        return await self._queue.get()

    def get_nowait(self) -> Any:
        return self._queue.get_nowait()

    def clear(self) -> None:
        while not self._queue.empty():
            self._queue.get_nowait()


class AsyncioRuntime(Runtime):
    """Real-time runtime over the running asyncio event loop."""

    cancelled_exceptions = (asyncio.CancelledError,)

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None):
        self._loop = loop

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_event_loop()
        return self._loop

    # -- time -----------------------------------------------------------

    def now(self) -> float:
        return self.loop.time()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)

    def call_later(self, delay: float, action: Callable[[], None]) -> Any:
        return self.loop.call_later(delay, action)

    # -- tasks ----------------------------------------------------------

    def spawn(self, coro: Coroutine, *, name: str = "",
              daemon: bool = False) -> asyncio.Task:
        task = self.loop.create_task(coro, name=name or None)
        if daemon:
            # Swallow the inevitable CancelledError at teardown.
            task.add_done_callback(_consume_cancellation)
        return task

    def cancel(self, handle: asyncio.Task) -> None:
        handle.cancel()

    async def current_handle(self) -> asyncio.Task:
        task = asyncio.current_task()
        assert task is not None
        return task

    def current_handle_nowait(self) -> asyncio.Task:
        task = asyncio.current_task()
        assert task is not None
        return task

    async def join(self, handle: asyncio.Task) -> Any:
        return await handle

    # -- primitives -----------------------------------------------------

    def semaphore(self, value: int = 1) -> _AsyncioSemaphore:
        return _AsyncioSemaphore(value)

    def lock(self) -> _AsyncioSemaphore:
        return _AsyncioSemaphore(1)

    def event(self) -> asyncio.Event:
        return asyncio.Event()

    def queue(self) -> _AsyncioQueue:
        return _AsyncioQueue()

    # -- observability ---------------------------------------------------

    def stats(self) -> dict:
        """Loop-level counters (coarser than the sim kernel's: asyncio
        exposes no step counts, so report time and live task count)."""
        try:
            return {"now": self.now(),
                    "tasks_live": len(asyncio.all_tasks(self.loop))}
        except RuntimeError:  # no loop running yet
            return {}


def _consume_cancellation(task: asyncio.Task) -> None:
    if task.cancelled():
        return
    exc = task.exception()
    if exc is not None:  # pragma: no cover - surfaced for debugging
        raise exc
