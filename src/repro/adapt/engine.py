"""The adaptation engine: park, drain, switch, release.

:class:`AdaptationManager` executes one :class:`~repro.adapt.plan.
AdaptationPlan` against a *running* service with zero acknowledged-call
loss.  The protocol:

1. **park** — a gate (``runtime.event()``) is installed for the service;
   :meth:`Deployment.call` admissions wait on it, so no new call enters
   the composites while the switch is in progress (the placement plane's
   parking idiom).
2. **drain** — the engine polls until the group is quiescent: no
   admitted call still inside the deployment call path, every server
   table empty, no ``WAITING`` client record anywhere (and, when the
   call micro-protocol itself changes, no client record at all — an
   unredeemed asynchronous result has no handler under Synchronous
   Call).  A drain that outlives the plan's ``drain_timeout`` aborts
   with :class:`~repro.errors.AdaptationError` *before any handler has
   been touched*.
3. **switch** — synchronous (no awaits, hence atomic in virtual time):
   per composite, micro-protocols present in both compositions with
   identical construction parameters are *kept* — their handler
   registrations and state (Unique Execution's reply store, RPC Main's
   call-id cursor, Atomic Execution's checkpoints) survive untouched —
   while the rest are detached (handlers retired via
   :meth:`~repro.core.events.EventBus.retire_owner`, shared-state side
   effects undone via ``unconfigure``) and the target's fresh instances
   attached at their usual priorities.  Freshly installed FIFO gates
   are seeded from every client's live call-id cursor
   (:meth:`~repro.core.microprotocols.fifo_order.FIFOOrder.
   seed_progress`), because a mid-run gate seeded at 1 would wait
   forever for calls that completed under the old composition.  Then
   the group-wide *adaptation epoch* is bumped on every member in the
   same synchronous step.
4. **release** — the gate opens; parked calls proceed under the new
   composition.

The :class:`AdaptationFence` makes the epoch bump safe: while a
composite's epoch is non-zero every outgoing message is stamped with it
(:meth:`~repro.core.grpc.GroupRPC.net_push`), and the fence — the
earliest ``MSG_FROM_NETWORK`` handler of every adapted composite —
drops arrivals carrying a different epoch.  A retransmission sent under
the old composition can therefore never be dispatched into the new one
(where, e.g., a fresh Total Order sequencer would wedge on a stale
duplicate); reliable clients simply retransmit under the new epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.adapt.plan import AdaptationPlan, validate_plan
from repro.core.config import ServiceSpec
from repro.core.grpc import ADAPT_EPOCH_KEY, MSG_FROM_NETWORK, GroupRPC
from repro.core.messages import NetMsg, Status
from repro.core.microprotocols.base import GRPCMicroProtocol
from repro.core.microprotocols.fifo_order import FIFOOrder
from repro.errors import AdaptationError, ConfigurationError, ReproError
from repro.obs import register_protocol

__all__ = ["AdaptationFence", "AdaptationManager", "AdaptationReport"]

#: The fence dispatches before everything else (Reliable Communication's
#: ack handling runs at 1.0; see :class:`~repro.core.microprotocols.
#: base.Prio`): a cross-epoch arrival must not touch any micro-protocol
#: state.
_PRIO_FENCE = 0.05

#: Construction parameters per micro-protocol name.  An instance is
#: *kept* across a switch (registrations and state intact) only when its
#: protocol appears in both compositions with equal values for all of
#: these fields; otherwise it is replaced by a freshly built instance.
#: Protocols absent from this table are parameter-free and always kept
#: when present on both sides.
_PARAM_FIELDS: Dict[str, tuple] = {
    "Reliable_Communication": ("retrans_timeout",),
    "Bounded_Termination": ("bounded",),
    "Atomic_Execution": ("atomic_delta", "atomic_compact_every"),
    "Total_Order": ("total_resync", "total_resync_grace"),
    "Probe_Orphan_Termination": ("probe_interval", "probe_missed_limit"),
    "Collation": ("collation",),
    "Acceptance": ("acceptance",),
}


class AdaptationFence(GRPCMicroProtocol):
    """Drops arrivals whose adaptation epoch differs from the local one.

    Installed into a composite by the first switch that touches it and
    kept forever after (it is a real micro-protocol, so crash recovery
    relinks it like any other).  Costs one annotation lookup per arrival
    — and nothing at all for deployments that never adapt, which have no
    fence and stamp no epoch.
    """

    protocol_name = "Adaptation_Fence"

    def __init__(self, dropped_counter: Any = None) -> None:
        super().__init__()
        self._dropped = dropped_counter
        #: Cross-epoch messages this fence has discarded (introspection).
        self.dropped = 0

    def configure(self) -> None:
        self.register(MSG_FROM_NETWORK, self.fence, _PRIO_FENCE)

    async def fence(self, msg: NetMsg) -> None:
        if msg.annotation(ADAPT_EPOCH_KEY, 0) != self.grpc.adapt_epoch:
            self.dropped += 1
            if self._dropped is not None:
                self._dropped.inc()
            self.cancel_event()


register_protocol(AdaptationFence.protocol_name)


@dataclass
class AdaptationReport:
    """What one committed switch did (returned by
    :meth:`AdaptationManager.adapt`)."""

    service: str
    #: The group-wide epoch the switch committed (monotonic per service).
    epoch: int
    reason: str
    from_protocols: List[str] = field(default_factory=list)
    to_protocols: List[str] = field(default_factory=list)
    #: Instances carried across the switch with their state intact.
    kept: List[str] = field(default_factory=list)
    #: Calls parked at the gate while this switch drained.
    parked: int = 0
    #: Virtual seconds spent draining in-flight calls.
    drain_s: float = 0.0
    #: Virtual seconds the switch itself took (0.0: atomic in virtual
    #: time — the group is never down).
    switch_s: float = 0.0


class AdaptationManager:
    """Executes guarded micro-protocol switches for one deployment.

    Installing the manager (its constructor sets
    ``deployment.adaptation``) is what switches the deployment's call
    path into adaptation-aware admission: :meth:`Deployment.call` then
    brackets every call between :meth:`admit` and :meth:`release`, which
    is how the engine parks new calls and knows when the old composition
    has drained.  Deployments that never adapt keep the call path on a
    single is-None test.
    """

    def __init__(self, deployment: Any):
        if getattr(deployment, "adaptation", None) is not None:
            raise ReproError(
                "this deployment already has an AdaptationManager; "
                "use AdaptationManager.ensure()")
        self.deployment = deployment
        self.metrics = deployment.metrics
        #: Per-service committed epoch (0 = never adapted).
        self.epochs: Dict[str, int] = {}
        # service -> parking gate while a switch is in progress.
        self._gates: Dict[str, Any] = {}
        # service -> calls admitted into Deployment.call and not yet
        # released (the drain condition's first clause).
        self._inflight: Dict[str, int] = {}
        # service -> calls parked by the switch currently draining.
        self._parked_now: Dict[str, int] = {}
        deployment.adaptation = self

    @classmethod
    def ensure(cls, deployment: Any) -> "AdaptationManager":
        """The deployment's manager, created on first use."""
        manager = getattr(deployment, "adaptation", None)
        return manager if manager is not None else cls(deployment)

    # ------------------------------------------------------------------
    # Call-path hooks (Deployment.call)
    # ------------------------------------------------------------------

    async def admit(self, service: str) -> None:
        """Park while ``service`` is mid-switch; then count the call in."""
        while True:
            gate = self._gates.get(service)
            if gate is None:
                break
            self._parked_now[service] = \
                self._parked_now.get(service, 0) + 1
            self.metrics.counter("adapt.parked").inc()
            await gate.wait()
        self._inflight[service] = self._inflight.get(service, 0) + 1

    def release(self, service: str) -> None:
        """The admitted call left the deployment call path."""
        self._inflight[service] = self._inflight.get(service, 1) - 1

    # ------------------------------------------------------------------
    # The switch itself
    # ------------------------------------------------------------------

    async def adapt(self, service: str,
                    target: Union[ServiceSpec, AdaptationPlan], *,
                    reason: str = "",
                    drain_timeout: Optional[float] = None,
                    drain_poll: Optional[float] = None
                    ) -> AdaptationReport:
        """Reconfigure a running service onto ``target``.

        ``target`` is a :class:`~repro.core.config.ServiceSpec` (the
        common case) or a full :class:`~repro.adapt.plan.AdaptationPlan`.
        Returns the committed :class:`AdaptationReport`; raises
        :class:`~repro.errors.DependencyError`/:class:`~repro.errors.
        ConfigurationError` for illegal or stale targets and
        :class:`~repro.errors.AdaptationError` when the group cannot be
        quiesced in time or is already mid-switch — in every failure
        case strictly before any handler has been touched.

        Must not be called from inside a :meth:`Deployment.call` (the
        admitted call would deadlock its own drain).
        """
        svc = self.deployment.service(service)
        plan = self._as_plan(service, target, reason,
                             drain_timeout, drain_poll)
        if service in self._gates:
            raise AdaptationError(
                f"service {service!r} is already mid-adaptation; "
                f"one switch at a time per service")
        rgroup = None if self.deployment.replication is None \
            else self.deployment.replication.groups.get(service)
        try:
            validate_plan(plan, current=svc.spec,
                          rspec=None if rgroup is None else rgroup.rspec)
        except ConfigurationError:
            self.metrics.counter("adapt.plans.rejected").inc()
            raise
        self.metrics.counter("adapt.plans.validated").inc()

        obs = self.deployment.obs
        span = None
        if obs is not None:
            span = obs.start_span(
                "adapt.switch",
                attrs={"service": service, "reason": plan.reason,
                       "from": svc.spec.ordering, "to":
                       plan.to_spec.ordering})
            obs.push_ctx(span.ctx)
        try:
            report = await self._execute(svc, plan, rgroup)
        finally:
            if obs is not None:
                obs.pop_ctx()
                obs.end_span(span)
        return report

    async def _execute(self, svc: Any, plan: AdaptationPlan,
                       rgroup: Any) -> AdaptationReport:
        deployment = self.deployment
        runtime = deployment.runtime
        service = svc.name
        flight = deployment.flight
        from_spec = svc.spec
        from_names = from_spec.micro_protocol_names()
        to_names = plan.to_spec.micro_protocol_names()

        # -- park + drain ----------------------------------------------
        gate = runtime.event()
        self._gates[service] = gate
        self._parked_now[service] = 0
        if flight is not None:
            flight.note("adapt-prepare", service=service,
                        reason=plan.reason)
        start = runtime.now()
        deadline = start + plan.drain_timeout
        require_empty = from_spec.call != plan.to_spec.call
        while not self._quiesced(svc, require_empty):
            if runtime.now() >= deadline:
                # Abort: open the gate and walk away — the running
                # composition has not been touched.
                self._gates.pop(service, None)
                gate.set()
                self.metrics.counter("adapt.aborts").inc()
                if flight is not None:
                    flight.note("adapt-abort", service=service,
                                reason="drain timeout")
                raise AdaptationError(
                    f"service {service!r} did not quiesce within "
                    f"{plan.drain_timeout} virtual seconds; the running "
                    f"composition is unchanged")
            await runtime.sleep(plan.drain_poll)
        drain_s = runtime.now() - start

        # -- switch (synchronous: atomic in virtual time) --------------
        switch_start = runtime.now()
        epoch = self.epochs.get(service, 0) + 1
        kept = self._kept(from_spec, plan.to_spec)
        cursors = {pid: (grpc.inc_number,
                         grpc.micro("RPC_Main").next_call_id)
                   for pid, grpc in svc.grpcs.items()}
        from_managed = set(from_names)
        for grpc in svc.grpcs.values():
            self._switch_composite(grpc, plan.to_spec, from_managed,
                                   kept, cursors)
        for grpc in svc.grpcs.values():
            grpc.adapt_epoch = epoch
        self.epochs[service] = epoch
        svc.spec = plan.to_spec
        if rgroup is not None:
            # The group's routing decisions (read narrowing, ordering
            # constraints) consult rspec live at call time; keep it in
            # step with the composition that now actually runs.
            rgroup.rspec = rgroup.rspec.with_(spec=plan.to_spec)
        switch_s = runtime.now() - switch_start

        # -- release ---------------------------------------------------
        parked = self._parked_now.pop(service, 0)
        self._gates.pop(service, None)
        gate.set()
        self.metrics.counter("adapt.switches").inc()
        self.metrics.histogram("adapt.drain_s").observe(drain_s)
        self.metrics.histogram("adapt.switch_s").observe(switch_s)
        if flight is not None:
            flight.note("adapt-commit", service=service, epoch=epoch,
                        kept=sorted(kept), parked=parked)
        return AdaptationReport(
            service=service, epoch=epoch, reason=plan.reason,
            from_protocols=from_names, to_protocols=to_names,
            kept=sorted(kept), parked=parked,
            drain_s=drain_s, switch_s=switch_s)

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------

    def _as_plan(self, service: str,
                 target: Union[ServiceSpec, AdaptationPlan],
                 reason: str, drain_timeout: Optional[float],
                 drain_poll: Optional[float]) -> AdaptationPlan:
        if isinstance(target, AdaptationPlan):
            if target.service != service:
                raise ConfigurationError(
                    f"plan names service {target.service!r} but was "
                    f"submitted for {service!r}")
            plan = target
        elif isinstance(target, ServiceSpec):
            plan = AdaptationPlan(service=service, to_spec=target)
        else:
            raise ConfigurationError(
                f"adapt() target must be a ServiceSpec or an "
                f"AdaptationPlan, got {type(target).__name__}")
        changes: Dict[str, Any] = {}
        if reason:
            changes["reason"] = reason
        if drain_timeout is not None:
            changes["drain_timeout"] = drain_timeout
        if drain_poll is not None:
            changes["drain_poll"] = drain_poll
        return plan.with_(**changes) if changes else plan

    def _quiesced(self, svc: Any, require_empty: bool) -> bool:
        """No call is anywhere inside the old composition.

        Three layers: calls admitted into the deployment call path and
        not yet returned; server records still pending (ordering-gated,
        executing, or awaiting their reply push); client records still
        ``WAITING`` (an asynchronous call's record outlives the
        deployment call, so the inflight count alone is not enough).
        ``require_empty`` additionally demands *no* client record at
        all — when the call micro-protocol itself changes, even a DONE
        asynchronous record would be unredeemable afterwards.
        """
        if self._inflight.get(svc.name, 0):
            return False
        for grpc in svc.grpcs.values():
            if len(grpc.sRPC):
                return False
            if require_empty:
                if len(grpc.pRPC):
                    return False
            else:
                for record in grpc.pRPC.records():
                    if record.status is Status.WAITING:
                        return False
        return True

    @staticmethod
    def _kept(from_spec: ServiceSpec, to_spec: ServiceSpec) -> set:
        """Protocol names whose running instances survive the switch."""
        shared = set(from_spec.micro_protocol_names()) \
            & set(to_spec.micro_protocol_names())
        kept = set()
        for name in shared:
            fields = _PARAM_FIELDS.get(name, ())
            if all(getattr(from_spec, f) == getattr(to_spec, f)
                   for f in fields):
                kept.add(name)
        return kept

    def _switch_composite(self, grpc: GroupRPC, to_spec: ServiceSpec,
                          from_managed: set, kept: set,
                          cursors: Dict[int, tuple]) -> None:
        """Re-link one member's composite onto the target composition.

        Runs with the group quiescent and without awaiting: dispatch
        never observes a half-switched composite.
        """
        old = {m.name: m for m in grpc.micro_protocols}
        fresh = to_spec.build()
        fresh_names = {m.name for m in fresh}

        # Detach every spec-managed instance that does not survive:
        # removed protocols, and same-name instances whose construction
        # parameters changed.  detach() retires the instance's bus
        # registrations (cancelling its pending TIMEOUTs) and undoes
        # configure()'s shared-state side effects.
        for micro in grpc.micro_protocols:
            name = micro.name
            if name not in from_managed:
                continue                    # CallObserver, fence, ...
            if name in kept and name in fresh_names:
                continue                    # survives with state intact
            micro.detach()

        # Install the target composition, reusing kept instances.
        new_list: List[Any] = []
        for micro in fresh:
            name = micro.name
            survivor = old.get(name)
            if name in kept and survivor is not None \
                    and not survivor.detached:
                new_list.append(survivor)
                continue
            # retire_owner() blacklisted the name against ghost
            # re-registrations from the old instance's unwinding
            # handlers; lift it for the fresh instance (the old one is
            # still blocked by its per-instance ``detached`` flag).
            grpc.bus.unretire_owner(name)
            if isinstance(micro, FIFOOrder):
                # A mid-run FIFO gate must start at each client's live
                # cursor, not at 1.
                for pid, (inc, next_id) in cursors.items():
                    micro.seed_progress(pid, inc, next_id)
            new_list.append(micro)
            micro.attach(grpc)

        # Unmanaged riders (the deployment's CallObserver, a previously
        # installed fence) keep their place at the end of the chain.
        for micro in grpc.micro_protocols:
            if micro.name not in from_managed and micro not in new_list:
                new_list.append(micro)
        if not any(m.name == AdaptationFence.protocol_name
                   for m in new_list):
            fence = AdaptationFence(
                self.metrics.counter("adapt.fence.dropped"))
            new_list.append(fence)
            fence.attach(grpc)
        grpc.micro_protocols[:] = new_list

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AdaptationManager epochs={dict(self.epochs)} "
                f"switching={sorted(self._gates)}>")
