"""Live adaptation plane: runtime micro-protocol reconfiguration.

The paper's configurability story fixes a service's micro-protocol
composition at build time; this package makes it a *runtime* property.
An :class:`AdaptationPlan` names a legal target composition (checked
against the same Figure-4 dependency graph that
:func:`repro.core.enumerate.enumerate_services` counts with, plus the
replication-mode edges of :mod:`repro.replication.spec` when the service
is a replica group); the :class:`AdaptationManager` then swaps the
running group's micro-protocols with **zero acknowledged-call loss**:

1. **park** — new calls through :meth:`Deployment.call` wait on a gate
   (the placement plane's parking idiom);
2. **drain** — in-flight calls run to completion under the old
   composition (no ``WAITING`` client records, empty server tables);
3. **switch** — every member's composite atomically re-registers the
   target micro-protocols' handlers at their priorities, transferring
   the shared gRPC state that must survive (call-id cursors, HOLD
   declarations, incarnations, reply stores of kept protocols), and the
   group-wide *adaptation epoch* is bumped in the same synchronous step
   so no member ever dispatches under a mixed composition — a fence
   handler drops stale cross-epoch messages;
4. **release** — parked calls proceed under the new composition.

The :class:`AdaptationDriver` closes the loop with the membership
stream: built-in policies drop Total Order to FIFO while members are
suspected (and restore the baseline after heal) and can raise the
acceptance threshold under suspicion, with hysteresis so a flapping
detector cannot thrash the group.

See ``docs/adaptation.md`` for the protocol walk-through and its
guarantees.
"""

from repro.adapt.driver import AdaptationDriver
from repro.adapt.engine import (
    AdaptationFence,
    AdaptationManager,
    AdaptationReport,
)
from repro.adapt.plan import AdaptationPlan, adaptation_edges, validate_plan
from repro.errors import AdaptationError

__all__ = [
    "AdaptationDriver",
    "AdaptationError",
    "AdaptationFence",
    "AdaptationManager",
    "AdaptationPlan",
    "AdaptationReport",
    "adaptation_edges",
    "validate_plan",
]
