"""Adaptation plans and their legality checks.

An :class:`AdaptationPlan` is the declarative half of a live
reconfiguration: which service, which target
:class:`~repro.core.config.ServiceSpec`, and how long the engine may
wait for the group to quiesce.  :func:`validate_plan` rejects illegal
plans **before any handler is touched**, with the same edge-citing
:class:`~repro.errors.DependencyError` messages the build-time
validator raises — a plan that validates here would also have built
from scratch, so mid-flight reconfiguration can never reach a
composition the Figure-4 graph forbids.

Replica groups get the PR-8 mode edges on top
(:func:`repro.replication.spec.validate_replica_spec`): e.g. a passive
primary-backup shard can never be adapted onto an ordered composition,
because its backups would park on sequence gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Optional, Tuple

from repro.core.config import ServiceSpec, validate
from repro.errors import ConfigurationError

__all__ = ["AdaptationPlan", "validate_plan", "adaptation_edges"]


@dataclass(frozen=True)
class AdaptationPlan:
    """One guarded reconfiguration of a running service.

    ``from_spec`` optionally pins the composition the plan was drawn
    against; the engine rejects the plan if the service has since been
    adapted elsewhere (a stale plan must not silently overwrite a newer
    composition).  ``drain_timeout``/``drain_poll`` are virtual seconds.
    """

    service: str
    to_spec: ServiceSpec
    from_spec: Optional[ServiceSpec] = None
    reason: str = ""
    drain_timeout: float = 30.0
    drain_poll: float = 0.005

    def with_(self, **changes: Any) -> "AdaptationPlan":
        return replace(self, **changes)


def adaptation_edges() -> List[Tuple[str, str]]:
    """The transition-legality edges layered on Figure 4, in the same
    ``(dependent, prerequisite)`` shape as
    :func:`repro.core.enumerate.figure4_edges`.

    The first two are enforced by :func:`validate_plan`; the last two by
    the engine itself (they are runtime conditions, not spec shapes).
    """
    return [
        ("Adaptation_Switch", "Legal_Target_Composition(Figure 4)"),
        ("Adaptation_Switch(replica group)",
         "Replication_Mode_Edges(validate_replica_spec)"),
        ("Adaptation_Switch", "Quiesced_Group(drained in-flight calls)"),
        ("Adaptation_Switch", "Uniform_Epoch(fenced two-phase bump)"),
    ]


def validate_plan(plan: AdaptationPlan, *,
                  current: ServiceSpec,
                  rspec: Any = None) -> None:
    """Reject illegal or stale plans; no-op when the switch may proceed.

    ``current`` is the service's live composition; ``rspec`` the
    :class:`~repro.replication.spec.ReplicaSpec` when the service is a
    registered replica group (``None`` otherwise).  Raises
    :class:`~repro.errors.DependencyError` (citing the violated
    Figure-4 or replication-mode edge) or
    :class:`~repro.errors.ConfigurationError`.
    """
    if plan.drain_timeout <= 0:
        raise ConfigurationError("adaptation drain_timeout must be > 0")
    if plan.drain_poll <= 0:
        raise ConfigurationError("adaptation drain_poll must be > 0")
    if plan.from_spec is not None and plan.from_spec != current:
        raise ConfigurationError(
            f"stale adaptation plan for {plan.service!r}: the plan was "
            f"drawn against a composition that is no longer running "
            f"(the service has since been adapted); re-plan from the "
            f"current spec")
    # The target must be a legal point of the Figure-4 space in its own
    # right — the same edge-citing checks a fresh build would run.
    validate(plan.to_spec)
    if rspec is not None:
        # Replica groups additionally obey the PR-8 mode edges with the
        # *target* composition embedded.
        from repro.replication.spec import validate_replica_spec
        validate_replica_spec(rspec.with_(spec=plan.to_spec))
