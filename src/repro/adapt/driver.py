"""Membership-driven adaptation policies: reconfiguration without an
operator.

The :class:`~repro.placement.driver.RebindDriver` answers suspicion by
changing *where* a service's calls go; the :class:`AdaptationDriver`
answers it by changing *what protocol* the service runs.  It subscribes
to the same deployment-level membership stream and applies two built-in
policies:

* **ordering degrade** — a service running Total Order pays a
  leader-coordinated ORDER round on every call; while any of its servers
  is suspected (partitioned, slow, crashed) that round is exactly the
  wrong protocol to be running.  The driver switches the service down to
  FIFO (or unordered) delivery for the duration of the suspicion and
  restores the original composition after the group heals.
* **acceptance raise** — optionally, the degraded composition also
  raises the acceptance threshold (``suspicion_acceptance``), trading
  latency for certainty exactly while the failure detector distrusts
  the group.

Both are guarded by **hysteresis**: a policy decision only fires after
its condition has held for a grace window (``hysteresis`` for degrades,
``heal_grace`` for restores), and a flip of the condition cancels the
pending opposite decision — a flapping detector changes nothing.

Passive replica groups are naturally out of scope (their compositions
never carry ordering — the PR-8 mode edges forbid it), as is any
service whose composition the degrade policy cannot improve.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Set, Tuple

from repro.adapt.engine import AdaptationManager
from repro.core.config import ServiceSpec
from repro.errors import AdaptationError

__all__ = ["AdaptationDriver"]

_ORDER_CHOICES = ("fifo", "none")


class AdaptationDriver:
    """Automatic micro-protocol reconfiguration for one deployment."""

    def __init__(self, deployment: Any, *,
                 degrade_ordering: str = "fifo",
                 suspicion_acceptance: Optional[int] = None,
                 hysteresis: float = 0.2,
                 heal_grace: float = 0.5,
                 drain_timeout: float = 30.0,
                 services: Optional[Iterable[str]] = None):
        if degrade_ordering not in _ORDER_CHOICES:
            raise AdaptationError(
                f"degrade_ordering must be one of {_ORDER_CHOICES}, "
                f"got {degrade_ordering!r}")
        self.deployment = deployment
        self.manager = AdaptationManager.ensure(deployment)
        self.metrics = deployment.metrics
        self.degrade_ordering = degrade_ordering
        self.suspicion_acceptance = suspicion_acceptance
        self.hysteresis = hysteresis
        self.heal_grace = heal_grace
        self.drain_timeout = drain_timeout
        #: Restrict the policies to these services (None = all).
        self.services: Optional[Set[str]] = \
            None if services is None else set(services)
        #: Baseline compositions stashed at degrade time, restored after
        #: the group heals.
        self._baselines: Dict[str, ServiceSpec] = {}
        self._suspected: Set[int] = set()
        # service -> (decision kind, armed hysteresis timer).
        self._pending: Dict[str, Tuple[str, Any]] = {}
        self._closed = False
        #: View-delta subscription when the placement plane is live
        #: (one stream carries membership and epoch events); raw
        #: membership callbacks otherwise.
        self._views = getattr(deployment, "views", None)
        if self._views is not None:
            self._views.watch(self._on_delta)
        else:
            deployment.watch_membership(self._on_change)
        register = getattr(deployment, "register_driver", None)
        if register is not None:
            register(self)

    def close(self) -> None:
        """Detach from the membership stream and cancel pending timers.

        Stashed baselines are kept: a degraded service stays on its
        degraded composition (restoring without the stream would mean
        adapting blind).
        """
        if self._closed:
            return
        self._closed = True
        if self._views is not None:
            self._views.unwatch(self._on_delta)
        else:
            self.deployment.unwatch_membership(self._on_change)
        for _, timer in self._pending.values():
            timer.cancel()
        self._pending.clear()
        unregister = getattr(self.deployment, "unregister_driver", None)
        if unregister is not None:
            unregister(self)

    # ------------------------------------------------------------------
    # Membership stream
    # ------------------------------------------------------------------

    def _on_delta(self, delta: Any) -> None:
        if self._closed or delta.kind != "member":
            return
        self._on_change(delta.pid, delta.alive)

    def _on_change(self, pid: int, alive: bool) -> None:
        if self._closed:
            return
        if alive:
            self._suspected.discard(pid)
        else:
            self._suspected.add(pid)
        for svc in list(self.deployment.services.values()):
            if self.services is not None and svc.name not in self.services:
                continue
            if pid in svc.server_pids:
                self._evaluate(svc)

    def _evaluate(self, svc: Any) -> None:
        name = svc.name
        degraded = name in self._baselines
        troubled = bool(self._suspected & set(svc.server_pids))
        if troubled and not degraded \
                and self._degrade_spec(svc.spec) is not None:
            want = "degrade"
            delay = self.hysteresis
        elif not troubled and degraded:
            want = "restore"
            delay = self.heal_grace
        else:
            want = None
            delay = 0.0
        pending = self._pending.get(name)
        if pending is not None:
            kind, timer = pending
            if kind == want:
                return                      # already armed; let it ride
            # Condition flipped inside the grace window: hysteresis
            # swallows the decision.
            timer.cancel()
            del self._pending[name]
            self.metrics.counter("adapt.policy.cancelled").inc()
        if want is None:
            return
        timer = self.deployment.runtime.call_later(
            delay, lambda: self._fire(name, want))
        self._pending[name] = (want, timer)

    def _fire(self, name: str, kind: str) -> None:
        pending = self._pending.get(name)
        if pending is None or pending[0] != kind:
            return
        del self._pending[name]
        self.deployment.runtime.spawn(
            self._apply(name, kind),
            name=f"adapt-policy-{kind}-{name}", daemon=True)

    # ------------------------------------------------------------------
    # Applying a decision
    # ------------------------------------------------------------------

    async def _apply(self, name: str, kind: str) -> None:
        svc = self.deployment.services.get(name)
        if svc is None or self._closed:
            return
        # Re-check the condition: the grace window passed without a
        # cancelling flip, but the world may have moved since _fire.
        troubled = bool(self._suspected & set(svc.server_pids))
        if kind == "degrade":
            if not troubled or name in self._baselines:
                return
            target = self._degrade_spec(svc.spec)
            if target is None:
                return
            self._baselines[name] = svc.spec
            try:
                await self.manager.adapt(
                    name, target, reason="membership: degrade",
                    drain_timeout=self.drain_timeout)
            except AdaptationError:
                self._baselines.pop(name, None)
                return
            self.metrics.counter("adapt.policy.degrade").inc()
        else:
            if troubled:
                return
            baseline = self._baselines.get(name)
            if baseline is None:
                return
            try:
                await self.manager.adapt(
                    name, baseline, reason="membership: restore",
                    drain_timeout=self.drain_timeout)
            except AdaptationError:
                return
            self._baselines.pop(name, None)
            self.metrics.counter("adapt.policy.restore").inc()

    def _degrade_spec(self, spec: ServiceSpec) -> Optional[ServiceSpec]:
        """The suspicion-mode composition for ``spec`` (None: nothing the
        policy can improve)."""
        changes: Dict[str, Any] = {}
        if spec.ordering == "total":
            # Legal by construction: Total Order already required
            # Reliable Communication and Unique Execution, which are
            # everything FIFO (or unordered) delivery needs.
            changes["ordering"] = self.degrade_ordering
        if self.suspicion_acceptance is not None \
                and spec.acceptance != self.suspicion_acceptance:
            changes["acceptance"] = self.suspicion_acceptance
        return spec.with_(**changes) if changes else None

    # -- introspection (tests/benchmarks) --------------------------------

    def degraded_services(self) -> Set[str]:
        return set(self._baselines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AdaptationDriver degraded={sorted(self._baselines)} "
                f"pending={sorted(self._pending)}>")
