"""Static lint: every micro-protocol registers with the obs layer.

The observability layer keeps a catalog
(:func:`repro.obs.registered_protocols`) of every micro-protocol name, so
trace consumers can resolve ``handler.<owner>`` metrics and span
attributions without importing the protocol modules themselves.  The
catalog only works if each module that defines a micro-protocol also
calls :func:`repro.obs.register_protocol` at module level — an invariant
a refactor can silently break.

:func:`check_obs_registration` enforces it by inspecting the *source*
(AST, no imports executed): a module under ``repro/core/microprotocols/``
that defines a class with a non-empty ``protocol_name`` attribute must
contain a module-level ``register_protocol(...)`` call.  Run as part of
the test suite (``tests/test_obs_lint.py``).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional

from repro.analysis.checkers import CheckResult

__all__ = ["check_obs_registration", "microprotocols_dir"]

#: Modules that legitimately define no micro-protocol class of their own.
_EXEMPT = {"__init__.py", "base.py"}


def microprotocols_dir() -> Path:
    """The installed location of the micro-protocol package."""
    import repro.core.microprotocols as pkg
    return Path(pkg.__file__).parent


def _defines_protocol(tree: ast.Module) -> bool:
    """Does this module define a class with a non-empty protocol_name?"""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if (isinstance(stmt, ast.Assign)
                    and any(isinstance(t, ast.Name)
                            and t.id == "protocol_name"
                            for t in stmt.targets)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value):
                return True
    return False


def _registers_at_module_level(tree: ast.Module) -> bool:
    """Is there a top-level ``register_protocol(...)`` call?"""
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)):
            continue
        func = stmt.value.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None)
        if name == "register_protocol":
            return True
    return False


def check_obs_registration(directory: Optional[Path] = None) -> CheckResult:
    """Lint every micro-protocol module for an obs-catalog registration."""
    directory = directory or microprotocols_dir()
    violations: List[str] = []
    checked = 0
    for path in sorted(directory.glob("*.py")):
        if path.name in _EXEMPT:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        if not _defines_protocol(tree):
            continue
        checked += 1
        if not _registers_at_module_level(tree):
            violations.append(
                f"{path.name} defines a micro-protocol but never calls "
                f"register_protocol(...) at module level")
    if checked == 0:
        violations.append(f"no micro-protocol modules found under "
                          f"{directory}")
    return CheckResult("obs-registration", not violations, violations)
