"""Static lint: every micro-protocol registers with the obs layer.

The observability layer keeps a catalog
(:func:`repro.obs.registered_protocols`) of every micro-protocol name, so
trace consumers can resolve ``handler.<owner>`` metrics and span
attributions without importing the protocol modules themselves.  The
catalog only works if each module that defines a micro-protocol also
calls :func:`repro.obs.register_protocol` at module level — an invariant
a refactor can silently break.

:func:`check_obs_registration` enforces it by inspecting the *source*
(AST, no imports executed): a module under ``repro/core/microprotocols/``
that defines a class with a non-empty ``protocol_name`` attribute must
contain a module-level ``register_protocol(...)`` call.  Run as part of
the test suite (``tests/test_obs_lint.py``).

The module also carries the **metric-name catalog**: the closed set of
namespaces components may land instruments under
(:data:`METRIC_NAMESPACES`), with :func:`check_metric_names` validating a
registry snapshot against it.  Dashboards and exporters key off these
prefixes, so an instrument outside the catalog is almost always a typo
or an undocumented namespace that belongs in ``docs/observability.md``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.analysis.checkers import CheckResult

__all__ = [
    "METRIC_NAMESPACES",
    "check_metric_names",
    "check_obs_registration",
    "known_metric_prefixes",
    "microprotocols_dir",
]

#: The documented instrument namespaces (prefix -> owner/meaning).  Keep
#: in sync with ``docs/observability.md``; ``tests/test_obs_lint.py``
#: holds deployments to this catalog.
METRIC_NAMESPACES: Dict[str, str] = {
    "net.batch.": "wire pipeline: coalescing (envelopes, messages, "
                  "flush reasons, per-link flush-size histograms)",
    "net.queue.": "wire pipeline: per-link backpressure (depth gauges, "
                  "blocked-sender waits)",
    "net.fastlane.": "wire pipeline: control messages bypassing "
                     "batching and budgets",
    "net.link.": "wire pipeline: optional per-link delivery counters "
                 "and latency histograms",
    "net.": "fabric trace kinds (send, deliver, drop-*, duplicate, "
            "crash, recover) and envelope counts",
    "handler.": "event-bus handler executions per micro-protocol",
    "kernel.": "scheduler statistics snapshots",
    "service.": "per-service call path (calls, status, latency, "
                "executions, reply cache)",
    "placement.load.": "observatory: per-key load accounting (lookup "
                       "volume and top-K hot keys per shard)",
    "placement.view.": "replicated placement metadata plane (epoch "
                       "gauge, commits, rollbacks, proposals, recovery "
                       "joins, stale-epoch bounces, coordinator "
                       "takeovers)",
    "placement.": "elastic placement plane (ring, migrations, rebinds, "
                  "drain-averting revives)",
    "repl.": "replication plane: replica groups (promotions, demotions, "
             "shrink/regrow, resyncs, backup sync traffic, failover "
             "retries, parked writes, per-group sync gauges)",
    "adapt.": "live adaptation plane: switches, parked calls, drain/"
              "switch durations, plan validation verdicts, aborts, "
              "fence drops, policy decisions (degrade/restore/"
              "cancelled)",
    "obs.profile.": "observatory: kernel/handler/marshal profiler",
    "obs.slo.": "observatory: windowed latency watermarks and breaches",
    "obs.recorder.": "observatory: flight-recorder ring accounting",
    "obs.": "obs layer self-accounting (handler recordings)",
}


def known_metric_prefixes() -> List[str]:
    """The catalog's prefixes, longest first (most specific wins)."""
    return sorted(METRIC_NAMESPACES, key=len, reverse=True)


def check_metric_names(names: Iterable[str]) -> CheckResult:
    """Validate instrument names against the namespace catalog.

    ``names`` is typically ``registry.snapshot()`` keys or
    ``registry.counter_names()``.  A name passes if it extends one of
    the :data:`METRIC_NAMESPACES` prefixes with a non-empty suffix.
    """
    prefixes = known_metric_prefixes()
    violations = [
        f"instrument {name!r} is outside the documented namespaces "
        f"({', '.join(sorted(METRIC_NAMESPACES))})"
        for name in names
        if not any(name.startswith(p) and len(name) > len(p)
                   for p in prefixes)
    ]
    return CheckResult("metric-names", not violations, violations)

#: Modules that legitimately define no micro-protocol class of their own.
_EXEMPT = {"__init__.py", "base.py"}


def microprotocols_dir() -> Path:
    """The installed location of the micro-protocol package."""
    import repro.core.microprotocols as pkg
    return Path(pkg.__file__).parent


def _defines_protocol(tree: ast.Module) -> bool:
    """Does this module define a class with a non-empty protocol_name?"""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if (isinstance(stmt, ast.Assign)
                    and any(isinstance(t, ast.Name)
                            and t.id == "protocol_name"
                            for t in stmt.targets)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value):
                return True
    return False


def _registers_at_module_level(tree: ast.Module) -> bool:
    """Is there a top-level ``register_protocol(...)`` call?"""
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)):
            continue
        func = stmt.value.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None)
        if name == "register_protocol":
            return True
    return False


def check_obs_registration(directory: Optional[Path] = None) -> CheckResult:
    """Lint every micro-protocol module for an obs-catalog registration."""
    directory = directory or microprotocols_dir()
    violations: List[str] = []
    checked = 0
    for path in sorted(directory.glob("*.py")):
        if path.name in _EXEMPT:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        if not _defines_protocol(tree):
            continue
        checked += 1
        if not _registers_at_module_level(tree):
            violations.append(
                f"{path.name} defines a micro-protocol but never calls "
                f"register_protocol(...) at module level")
    if checked == 0:
        violations.append(f"no micro-protocol modules found under "
                          f"{directory}")
    return CheckResult("obs-registration", not violations, violations)
