"""Reusable invariant checkers over executed workloads."""

from repro.analysis.checkers import (
    CheckResult,
    check_exactly_once_cluster,
    check_execution_counts,
    check_fifo_per_client,
    check_identical_sequences,
    check_prefix_consistency,
    check_subsequence,
    check_total_order_cluster,
)
from repro.analysis.obslint import (
    METRIC_NAMESPACES,
    check_metric_names,
    check_obs_registration,
    known_metric_prefixes,
)

__all__ = [
    "CheckResult",
    "check_identical_sequences",
    "check_prefix_consistency",
    "check_subsequence",
    "check_fifo_per_client",
    "check_execution_counts",
    "check_total_order_cluster",
    "check_exactly_once_cluster",
    "check_obs_registration",
    "check_metric_names",
    "known_metric_prefixes",
    "METRIC_NAMESPACES",
]
