"""Invariant checkers over executed workloads.

The test suite asserts the paper's guarantees ad hoc; this module
packages those assertions as reusable checkers a downstream user can run
against their own deployments.  Each checker takes plain data (apply
logs, execution counts) or a :class:`~repro.core.service.ServiceCluster`
and returns a :class:`CheckResult` with machine-readable violations
rather than raising, so callers can aggregate across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CheckResult",
    "check_identical_sequences",
    "check_prefix_consistency",
    "check_subsequence",
    "check_fifo_per_client",
    "check_execution_counts",
    "check_total_order_cluster",
    "check_exactly_once_cluster",
]


@dataclass
class CheckResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_failed(self) -> None:
        """Convenience for tests: turn violations into an AssertionError."""
        if not self.ok:
            details = "\n  ".join(self.violations)
            raise AssertionError(f"{self.name} violated:\n  {details}")


def _result(name: str, violations: List[str]) -> CheckResult:
    return CheckResult(name, not violations, violations)


# ----------------------------------------------------------------------
# Sequence invariants
# ----------------------------------------------------------------------

def check_identical_sequences(sequences: Dict[Any, Sequence[Any]]
                              ) -> CheckResult:
    """Total order: every replica applied exactly the same sequence."""
    violations = []
    items = list(sequences.items())
    if items:
        ref_id, ref = items[0]
        for other_id, other in items[1:]:
            if list(other) != list(ref):
                violations.append(
                    f"replica {other_id} diverged from {ref_id}: "
                    f"{list(other)[:6]}... vs {list(ref)[:6]}...")
    return _result("identical application sequences", violations)


def check_prefix_consistency(sequences: Dict[Any, Sequence[Any]]
                             ) -> CheckResult:
    """Weaker total order for mid-run snapshots: any two replicas'
    sequences must be prefix-related (one is a prefix of the other)."""
    violations = []
    items = [(rid, list(seq)) for rid, seq in sequences.items()]
    for i, (id_a, a) in enumerate(items):
        for id_b, b in items[i + 1:]:
            shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
            if longer[:len(shorter)] != shorter:
                violations.append(
                    f"replicas {id_a} and {id_b} are not prefix-related")
    return _result("prefix consistency", violations)


def check_subsequence(expected_order: Sequence[Any],
                      observed: Sequence[Any], *,
                      label: str = "") -> CheckResult:
    """The items of ``expected_order`` appear in ``observed`` in order
    (other items may interleave) — the per-client FIFO condition."""
    violations = []
    position = 0
    expected = [item for item in expected_order if item in set(observed)]
    for item in expected:
        try:
            position = list(observed).index(item, position) + 1
        except ValueError:
            violations.append(
                f"{label}: {item!r} out of order in {list(observed)}")
            break
    return _result(f"subsequence order {label}".strip(), violations)


def check_fifo_per_client(client_sequences: Dict[Any, Sequence[Any]],
                          replica_logs: Dict[Any, Sequence[Any]]
                          ) -> CheckResult:
    """FIFO ordering: each client's issue order is a subsequence of
    every replica's application order."""
    violations = []
    for replica_id, log in replica_logs.items():
        for client_id, issued in client_sequences.items():
            sub = check_subsequence(
                issued, log, label=f"client {client_id} at replica "
                                   f"{replica_id}")
            violations.extend(sub.violations)
    return _result("FIFO per client", violations)


# ----------------------------------------------------------------------
# Execution-count invariants (Figure 1)
# ----------------------------------------------------------------------

def check_execution_counts(counts: Dict[Any, int], *,
                           at_least: int = 0,
                           at_most: Optional[int] = None) -> CheckResult:
    """Per-call execution counts within [at_least, at_most]."""
    violations = []
    for tag, count in counts.items():
        if count < at_least:
            violations.append(f"call {tag!r} executed {count} < "
                              f"{at_least} times")
        if at_most is not None and count > at_most:
            violations.append(f"call {tag!r} executed {count} > "
                              f"{at_most} times")
    return _result("execution counts", violations)


# ----------------------------------------------------------------------
# Cluster-level conveniences
# ----------------------------------------------------------------------

def check_total_order_cluster(cluster, *,
                              mutation_kinds: Tuple[str, ...] =
                              ("put", "delete")) -> CheckResult:
    """Identical KV apply logs across every server of a cluster."""
    sequences = {}
    for pid in cluster.server_pids:
        log = getattr(cluster.app(pid), "apply_log", None)
        if log is None:
            return _result("total order",
                           [f"app on server {pid} has no apply_log"])
        sequences[pid] = [(kind, key) for kind, key, _ in log
                          if kind in mutation_kinds]
    return check_identical_sequences(sequences)


def check_exactly_once_cluster(cluster, tags: Sequence[Any]
                               ) -> CheckResult:
    """Every tagged call executed exactly once on every server."""
    violations = []
    for pid in cluster.server_pids:
        dispatcher = cluster.dispatcher(pid)
        counts = {tag: dispatcher.executions(tag) for tag in tags}
        sub = check_execution_counts(counts, at_least=1, at_most=1)
        violations.extend(f"server {pid}: {v}" for v in sub.violations)
    return _result("exactly-once execution", violations)
