"""Scripted fault injection for experiments and tests.

The fabric's hooks (filters, partitions, link specs, node crash/recover)
are low-level; this module packages them into the scripted faults the
experiments need: "drop the first N replies from server 3", "crash the
server 5 ms into the transfer and recover it a second later".  Everything
is deterministic: filters count matches, schedules run on virtual time.

Filters compose transparently with the wire pipeline's link-level
batching: the fabric probes every filter once per *inner* message of a
coalesced :class:`~repro.net.wire.WireBatch` (each probe envelope carries
one inner payload), so predicates written against single messages —
``replies_from(3)``, ``calls_to(...)`` — match and count identically
whether or not batching is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.messages import NetMsg, NetOp
from repro.net.fabric import NetworkFabric
from repro.net.message import Envelope
from repro.net.node import Node

__all__ = ["MessageFault", "drop_matching", "drop_first", "CrashSchedule",
           "net_msg", "replies_from", "calls_to", "all_replies",
           "all_acks", "order_messages"]


def net_msg(envelope: Envelope) -> Optional[NetMsg]:
    """The gRPC message inside an envelope, if it is one."""
    payload = envelope.payload
    return payload if isinstance(payload, NetMsg) else None


@dataclass
class MessageFault:
    """A counting drop-filter installed on the fabric.

    ``matched`` counts messages the predicate selected; ``dropped`` counts
    those actually discarded (≤ ``limit``).  Call :meth:`remove` to
    uninstall.
    """

    fabric: NetworkFabric
    predicate: Callable[[Envelope], bool]
    limit: Optional[int] = None
    matched: int = 0
    dropped: int = 0
    _remover: Optional[Callable[[], None]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._remover = self.fabric.add_filter(self._filter)

    def _filter(self, envelope: Envelope) -> bool:
        if not self.predicate(envelope):
            return True
        self.matched += 1
        if self.limit is not None and self.dropped >= self.limit:
            return True
        self.dropped += 1
        return False

    def remove(self) -> None:
        if self._remover is not None:
            self._remover()
            self._remover = None


def drop_matching(fabric: NetworkFabric,
                  predicate: Callable[[Envelope], bool]) -> MessageFault:
    """Drop every message the predicate selects, until removed."""
    return MessageFault(fabric, predicate)


def drop_first(fabric: NetworkFabric, n: int,
               predicate: Callable[[Envelope], bool]) -> MessageFault:
    """Drop only the first ``n`` matching messages, then pass the rest."""
    return MessageFault(fabric, predicate, limit=n)


# -- convenient predicates ------------------------------------------------

def _kind(envelope: Envelope, op: NetOp) -> bool:
    msg = net_msg(envelope)
    return msg is not None and msg.type is op


def replies_from(pid: int) -> Callable[[Envelope], bool]:
    """Select REPLY messages sent by server ``pid``."""
    return lambda env: env.src == pid and _kind(env, NetOp.REPLY)


def calls_to(pid: int) -> Callable[[Envelope], bool]:
    """Select CALL messages destined for server ``pid``."""
    return lambda env: env.dst == pid and _kind(env, NetOp.CALL)


def all_replies() -> Callable[[Envelope], bool]:
    return lambda env: _kind(env, NetOp.REPLY)


def all_acks() -> Callable[[Envelope], bool]:
    return lambda env: _kind(env, NetOp.ACK)


def order_messages() -> Callable[[Envelope], bool]:
    return lambda env: _kind(env, NetOp.ORDER)


class CrashSchedule:
    """Timed crash/recover scripts against a set of nodes."""

    def __init__(self, runtime, nodes: List[Node]):
        self.runtime = runtime
        self._nodes = {node.pid: node for node in nodes}

    def crash_at(self, when: float, pid: int) -> None:
        self.runtime.call_later(
            max(0.0, when - self.runtime.now()),
            lambda: self._nodes[pid].crash())

    def recover_at(self, when: float, pid: int) -> None:
        self.runtime.call_later(
            max(0.0, when - self.runtime.now()),
            lambda: self._nodes[pid].recover())

    def bounce(self, pid: int, down_at: float, up_at: float) -> None:
        """Crash at ``down_at`` and recover at ``up_at`` (absolute)."""
        self.crash_at(down_at, pid)
        self.recover_at(up_at, pid)
