"""Deterministic fault injection: scripted drops and crash schedules."""

from repro.faults.injector import (
    CrashSchedule,
    MessageFault,
    all_acks,
    all_replies,
    calls_to,
    drop_first,
    drop_matching,
    net_msg,
    order_messages,
    replies_from,
)

__all__ = [
    "CrashSchedule",
    "MessageFault",
    "drop_first",
    "drop_matching",
    "net_msg",
    "replies_from",
    "calls_to",
    "all_replies",
    "all_acks",
    "order_messages",
]
