"""Stubs and binding: marshalling, generated proxies, name resolution."""

from repro.stubs.binding import BindingRegistry
from repro.stubs.marshal import marshal, marshalled_size, unmarshal
from repro.stubs.stubgen import (
    ClientStub,
    MarshallingApp,
    ServiceInterface,
    client_stub,
)

__all__ = [
    "BindingRegistry",
    "marshal",
    "unmarshal",
    "marshalled_size",
    "ServiceInterface",
    "ClientStub",
    "client_stub",
    "MarshallingApp",
]
