"""Stub generation: typed client proxies and marshalling server shims.

The paper assumes stubs exist above gRPC on both sides; this module
generates them from a declarative :class:`ServiceInterface`:

* :func:`client_stub` returns a proxy object with one async method per
  operation.  Each method marshals its keyword arguments into the opaque
  field, issues the group call, and unmarshals the collated reply —
  raising :class:`~repro.errors.RPCTimeout` on bounded-termination
  expiry so stub users get exceptions, not status codes.
* :class:`MarshallingApp` wraps any :class:`~repro.apps.dispatcher.
  ServerApp` so it receives unmarshalled arguments and returns marshalled
  replies, completing the round trip.

With collation functions other than return-any, replies arriving at the
stub may be *lists* of marshalled fields; the stub unmarshals element-wise
in that case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple

from repro.apps.dispatcher import ServerApp
from repro.core.grpc import GroupRPC
from repro.core.messages import CallResult, Status
from repro.errors import RPCAborted, RPCTimeout, UnknownCallError
from repro.net.message import Group
from repro.stubs.marshal import marshal, unmarshal

__all__ = ["ServiceInterface", "ClientStub", "client_stub",
           "MarshallingApp", "unmarshalled_collation"]


def unmarshalled_collation(func, init):
    """Adapt a value-level collation function to marshalled replies.

    Server replies travelling through stubs are opaque marshalled fields;
    ``unmarshalled_collation(average, None)`` decodes each reply before
    folding, so numeric collators (average, sum, majority vote) work
    unchanged.  Returns the ``(cum_func, init)`` pair a
    :class:`~repro.core.config.ServiceSpec` expects.
    """
    def wrapper(acc, reply):
        return func(acc, unmarshal(reply) if isinstance(reply, bytes)
                    else reply)
    wrapper.__name__ = f"unmarshalled_{getattr(func, '__name__', 'fold')}"
    return (wrapper, init)


@dataclass(frozen=True)
class ServiceInterface:
    """A named set of operations a service exports."""

    name: str
    operations: Tuple[str, ...]

    def __init__(self, name: str, operations: Iterable[str]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "operations", tuple(operations))
        if not self.operations:
            raise UnknownCallError(f"interface {name!r} has no operations")


class ClientStub:
    """A proxy whose attributes are the interface's operations.

    ``await stub.put(key="k", value=1)`` marshals the kwargs, performs
    the group call, and returns the unmarshalled collated result.
    """

    def __init__(self, interface: ServiceInterface, grpc: GroupRPC,
                 group: Group):
        self._interface = interface
        self._grpc = grpc
        self._group = group
        for op in interface.operations:
            setattr(self, op, self._make_method(op))

    def _make_method(self, op: str):
        async def method(**kwargs: Any) -> Any:
            payload = marshal(kwargs)
            result = await self._grpc.call(op, payload, self._group)
            return self._decode(op, result)
        method.__name__ = op
        method.__qualname__ = f"{self._interface.name}.{op}"
        method.__doc__ = (f"Invoke {op!r} on service "
                          f"{self._interface.name!r} via group RPC.")
        return method

    def _decode(self, op: str, result: CallResult) -> Any:
        if result.status is Status.TIMEOUT:
            raise RPCTimeout(f"{self._interface.name}.{op} timed out "
                             f"(call id {result.id})")
        if result.status is not Status.OK:
            raise RPCAborted(f"{self._interface.name}.{op} ended with "
                             f"{result.status}")
        return _unmarshal_result(result.args)


def _unmarshal_result(args: Any) -> Any:
    if args is None:
        return None
    if isinstance(args, bytes):
        return unmarshal(args)
    if isinstance(args, list):   # return-all collation of opaque fields
        return [_unmarshal_result(item) for item in args]
    return args


def client_stub(interface: ServiceInterface, grpc: GroupRPC,
                group: Group) -> ClientStub:
    """Generate the client-side stub for ``interface``."""
    return ClientStub(interface, grpc, group)


class MarshallingApp(ServerApp):
    """Server-side shim: unmarshal request, run app, marshal reply."""

    def __init__(self, inner: ServerApp):
        super().__init__()
        self.inner = inner

    def bind(self, node) -> None:
        super().bind(node)
        self.inner.bind(node)

    async def handle(self, op: str, args: Any) -> Any:
        kwargs = unmarshal(args) if isinstance(args, bytes) else args
        result = await self.inner.handle(op, kwargs)
        return marshal(result)

    # State hooks delegate so Atomic Execution and crashes see the real
    # application state.

    def get_state(self) -> Any:
        return self.inner.get_state()

    def set_state(self, state: Any) -> None:
        self.inner.set_state(state)

    def on_crash(self) -> None:
        self.inner.on_crash()
