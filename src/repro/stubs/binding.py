"""Service-name binding: resolving a service name to a server group.

The paper cites binding as one of the aspects a full RPC system needs
([BN84, LT91, BALL90]) and assumes the client stub "does binding".  This
registry is the minimal realization: services register their group under
a name, clients resolve names to groups, and rebinding (e.g. after a
reconfiguration) is an atomic replace.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import BindingError
from repro.net.message import Group

__all__ = ["BindingRegistry"]


class BindingRegistry:
    """A name -> :class:`~repro.net.message.Group` directory."""

    def __init__(self) -> None:
        self._bindings: Dict[str, Group] = {}

    def bind(self, name: str, group: Group, *,
             replace: bool = False) -> None:
        """Register ``group`` under ``name``.

        Refuses to overwrite an existing binding unless ``replace=True``,
        so a typo can't silently hijack a live service name.
        """
        if name in self._bindings and not replace:
            raise BindingError(
                f"service {name!r} is already bound to "
                f"{self._bindings[name].name!r}; pass replace=True to "
                f"rebind")
        self._bindings[name] = group

    def lookup(self, name: str) -> Group:
        group = self._bindings.get(name)
        if group is None:
            raise BindingError(f"no service bound to {name!r}; "
                               f"known: {sorted(self._bindings)}")
        return group

    def unbind(self, name: str) -> None:
        if name not in self._bindings:
            raise BindingError(f"no service bound to {name!r}")
        del self._bindings[name]

    def names(self) -> List[str]:
        return sorted(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings
