"""Deterministic argument marshalling.

The paper assumes "a stub for each RPC call that marshalls arguments ...
From the perspective of gRPC, then, the arguments are treated as one
continuous untyped field that is copied to and from messages."  This
module produces that field: a compact, self-describing, deterministic
binary encoding of plain Python data (None, bool, int, float, str, bytes,
list, tuple, dict with string keys).

Determinism matters for the reproduction: dict entries are encoded in
sorted key order, so the same logical arguments always produce the same
bytes — and therefore the same message sizes in the benchmarks.

Hot-path structure: :func:`marshalled_size` is a size-only recursive
pass (it never materializes an encoding); :func:`marshal` uses that pass
to preallocate the output buffer exactly and then packs into it in
place (one allocation per call, no bytearray growth); :func:`unmarshal`
walks a :class:`memoryview` with integer tag compares and struct-packed
headers, so container decoding never copies intermediate slices.  The
wire format itself is unchanged — byte-for-byte identical to the
original append-based encoder.

Marshalling is the one real-CPU cost every call pays twice, so the
observatory's kernel profiler hooks it: :func:`install_profiler`
installs a module-level hook (this module has no runtime reference, and
the simulation is single-threaded, so a global is correct) and each
call then reports its byte count and wall-clock.  With no profiler
installed — the default — the cost is a single ``is None`` test per
call, guarded by ``tests/test_obs_overhead.py``.
"""

from __future__ import annotations

import struct
from time import perf_counter
from typing import Any, Optional, Tuple

from repro.errors import MarshalError

__all__ = ["marshal", "unmarshal", "marshalled_size", "install_profiler"]

#: The installed profiler (``on_marshal``/``on_unmarshal`` hooks), or
#: ``None``.  Owned by :class:`repro.obs.observatory.Observatory`.
_PROFILER: Optional[Any] = None


def install_profiler(profiler: Optional[Any]) -> Optional[Any]:
    """Install (or with ``None`` remove) the marshalling profiler.

    Returns the previously installed profiler so callers can restore it.
    """
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    return previous

_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT = b"I"
_FLOAT = b"D"
_STR = b"S"
_BYTES = b"B"
_LIST = b"L"
_TUPLE = b"U"
_DICT = b"M"

# Integer twins of the tag bytes, for index-based (no-slice) compares.
_T_NONE = _NONE[0]
_T_TRUE = _TRUE[0]
_T_FALSE = _FALSE[0]
_T_INT = _INT[0]
_T_FLOAT = _FLOAT[0]
_T_STR = _STR[0]
_T_BYTES = _BYTES[0]
_T_LIST = _LIST[0]
_T_TUPLE = _TUPLE[0]
_T_DICT = _DICT[0]

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")
_pack_u32_into = _U32.pack_into
_pack_f64_into = _F64.pack_into
_unpack_u32_from = _U32.unpack_from
_unpack_f64_from = _F64.unpack_from


def marshal(value: Any) -> bytes:
    """Encode ``value`` into the untyped argument field."""
    prof = _PROFILER
    if prof is None:
        out = bytearray(_size(value))
        _encode_into(value, out, 0)
        return bytes(out)
    started = perf_counter()
    out = bytearray(_size(value))
    _encode_into(value, out, 0)
    data = bytes(out)
    prof.on_marshal(len(data), perf_counter() - started)
    return data


def unmarshal(data: bytes) -> Any:
    """Decode an argument field; rejects trailing garbage."""
    prof = _PROFILER
    started = perf_counter() if prof is not None else 0.0
    buf = memoryview(data)
    end = len(buf)
    value, offset = _decode(buf, 0, end)
    if offset != end:
        raise MarshalError(
            f"{end - offset} trailing bytes after value")
    if prof is not None:
        prof.on_unmarshal(end, perf_counter() - started)
    return value


def marshalled_size(value: Any) -> int:
    """Size in bytes of the encoded value — a pure counting pass.

    Never materializes the encoding; the batching caps in the wire layer
    and the benchmarks size messages through here, so a size query costs
    arithmetic, not allocation.
    """
    return _size(value)


def _utf8_len(s: str) -> int:
    # ASCII (the overwhelmingly common case) needs no encode to measure.
    if s.isascii():
        return len(s)
    return len(s.encode("utf-8"))


def _size(value: Any) -> int:
    """Exact encoded size of ``value``, computed without encoding."""
    if value is None or value is True or value is False:
        return 1
    cls = value.__class__
    if cls is int:
        return 5 + ((value.bit_length() + 8) // 8 or 1)
    if cls is float:
        return 9
    if cls is str:
        return 5 + _utf8_len(value)
    if cls is bytes:
        return 5 + len(value)
    if cls is list or cls is tuple:
        total = 5
        for item in value:
            total += _size(item)
        return total
    if cls is dict:
        total = 5
        for key in value:
            if not isinstance(key, str):
                raise MarshalError("dict keys must be strings")
            total += 5 + _utf8_len(key) + _size(value[key])
        return total
    # Subclasses of the plain types take the isinstance slow path.
    if isinstance(value, int):
        return 5 + ((value.bit_length() + 8) // 8 or 1)
    if isinstance(value, float):
        return 9
    if isinstance(value, str):
        return 5 + _utf8_len(value)
    if isinstance(value, bytes):
        return 5 + len(value)
    if isinstance(value, (list, tuple)):
        total = 5
        for item in value:
            total += _size(item)
        return total
    if isinstance(value, dict):
        total = 5
        for key in value:
            if not isinstance(key, str):
                raise MarshalError("dict keys must be strings")
            total += 5 + _utf8_len(key) + _size(value[key])
        return total
    raise MarshalError(
        f"cannot marshal {type(value).__name__}: only plain data "
        f"(None/bool/int/float/str/bytes/list/tuple/dict) is allowed")


def _encode_into(value: Any, out: bytearray, offset: int) -> int:
    """Pack ``value`` into ``out`` at ``offset``; returns the new offset.

    ``out`` is preallocated to exactly :func:`_size` bytes, so every
    write is an in-place pack — no growth, no intermediate objects
    beyond the UTF-8 encodings of the strings themselves.
    """
    if value is None:
        out[offset] = _T_NONE
        return offset + 1
    if value is True:
        out[offset] = _T_TRUE
        return offset + 1
    if value is False:
        out[offset] = _T_FALSE
        return offset + 1
    cls = value.__class__
    if cls is str or (cls is not int and cls is not float
                      and cls is not bytes and cls is not list
                      and cls is not tuple and cls is not dict
                      and isinstance(value, str)):
        raw = value.encode("utf-8")
        n = len(raw)
        out[offset] = _T_STR
        _pack_u32_into(out, offset + 1, n)
        offset += 5
        out[offset:offset + n] = raw
        return offset + n
    if cls is int or isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1,
                             "big", signed=True)
        n = len(raw)
        out[offset] = _T_INT
        _pack_u32_into(out, offset + 1, n)
        offset += 5
        out[offset:offset + n] = raw
        return offset + n
    if cls is float or isinstance(value, float):
        out[offset] = _T_FLOAT
        _pack_f64_into(out, offset + 1, value)
        return offset + 9
    if cls is bytes or isinstance(value, bytes):
        n = len(value)
        out[offset] = _T_BYTES
        _pack_u32_into(out, offset + 1, n)
        offset += 5
        out[offset:offset + n] = value
        return offset + n
    if cls is list or cls is tuple or isinstance(value, (list, tuple)):
        out[offset] = _T_LIST if isinstance(value, list) else _T_TUPLE
        _pack_u32_into(out, offset + 1, len(value))
        offset += 5
        for item in value:
            offset = _encode_into(item, out, offset)
        return offset
    if cls is dict or isinstance(value, dict):
        out[offset] = _T_DICT
        _pack_u32_into(out, offset + 1, len(value))
        offset += 5
        for key in sorted(value):
            offset = _encode_into(key, out, offset)
            offset = _encode_into(value[key], out, offset)
        return offset
    raise MarshalError(
        f"cannot marshal {type(value).__name__}: only plain data "
        f"(None/bool/int/float/str/bytes/list/tuple/dict) is allowed")


def _decode(buf: memoryview, offset: int, end: int) -> Tuple[Any, int]:
    if offset >= end:
        raise MarshalError("truncated value")
    tag = buf[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_FLOAT:
        if offset + 8 > end:
            raise MarshalError("truncated value")
        return _unpack_f64_from(buf, offset)[0], offset + 8
    if tag == _T_INT or tag == _T_STR or tag == _T_BYTES:
        if offset + 4 > end:
            raise MarshalError("truncated value")
        length = _unpack_u32_from(buf, offset)[0]
        offset += 4
        if offset + length > end:
            raise MarshalError("truncated value")
        raw = buf[offset:offset + length]
        offset += length
        if tag == _T_STR:
            return str(raw, "utf-8"), offset
        if tag == _T_INT:
            return int.from_bytes(raw, "big", signed=True), offset
        return bytes(raw), offset
    if tag == _T_LIST or tag == _T_TUPLE:
        if offset + 4 > end:
            raise MarshalError("truncated value")
        count = _unpack_u32_from(buf, offset)[0]
        offset += 4
        items = []
        append = items.append
        for _ in range(count):
            item, offset = _decode(buf, offset, end)
            append(item)
        return (items if tag == _T_LIST else tuple(items)), offset
    if tag == _T_DICT:
        if offset + 4 > end:
            raise MarshalError("truncated value")
        count = _unpack_u32_from(buf, offset)[0]
        offset += 4
        result = {}
        for _ in range(count):
            key, offset = _decode(buf, offset, end)
            value, offset = _decode(buf, offset, end)
            result[key] = value
        return result, offset
    raise MarshalError(
        f"unknown tag byte {bytes((tag,))!r} at offset {offset - 1}")
