"""Deterministic argument marshalling.

The paper assumes "a stub for each RPC call that marshalls arguments ...
From the perspective of gRPC, then, the arguments are treated as one
continuous untyped field that is copied to and from messages."  This
module produces that field: a compact, self-describing, deterministic
binary encoding of plain Python data (None, bool, int, float, str, bytes,
list, tuple, dict with string keys).

Determinism matters for the reproduction: dict entries are encoded in
sorted key order, so the same logical arguments always produce the same
bytes — and therefore the same message sizes in the benchmarks.

Marshalling is the one real-CPU cost every call pays twice, so the
observatory's kernel profiler hooks it: :func:`install_profiler`
installs a module-level hook (this module has no runtime reference, and
the simulation is single-threaded, so a global is correct) and each
call then reports its byte count and wall-clock.  With no profiler
installed — the default — the cost is a single ``is None`` test per
call, guarded by ``tests/test_obs_overhead.py``.
"""

from __future__ import annotations

import struct
from time import perf_counter
from typing import Any, Optional, Tuple

from repro.errors import MarshalError

__all__ = ["marshal", "unmarshal", "marshalled_size", "install_profiler"]

#: The installed profiler (``on_marshal``/``on_unmarshal`` hooks), or
#: ``None``.  Owned by :class:`repro.obs.observatory.Observatory`.
_PROFILER: Optional[Any] = None


def install_profiler(profiler: Optional[Any]) -> Optional[Any]:
    """Install (or with ``None`` remove) the marshalling profiler.

    Returns the previously installed profiler so callers can restore it.
    """
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    return previous

_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT = b"I"
_FLOAT = b"D"
_STR = b"S"
_BYTES = b"B"
_LIST = b"L"
_TUPLE = b"U"
_DICT = b"M"


def marshal(value: Any) -> bytes:
    """Encode ``value`` into the untyped argument field."""
    prof = _PROFILER
    if prof is None:
        out = bytearray()
        _encode(value, out)
        return bytes(out)
    started = perf_counter()
    out = bytearray()
    _encode(value, out)
    data = bytes(out)
    prof.on_marshal(len(data), perf_counter() - started)
    return data


def unmarshal(data: bytes) -> Any:
    """Decode an argument field; rejects trailing garbage."""
    prof = _PROFILER
    started = perf_counter() if prof is not None else 0.0
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise MarshalError(
            f"{len(data) - offset} trailing bytes after value")
    if prof is not None:
        prof.on_unmarshal(len(data), perf_counter() - started)
    return value


def marshalled_size(value: Any) -> int:
    """Size in bytes of the encoded value (benchmark helper)."""
    return len(marshal(value))


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += _NONE
    elif value is True:
        out += _TRUE
    elif value is False:
        out += _FALSE
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1,
                             "big", signed=True)
        out += _INT
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, float):
        out += _FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _STR
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, bytes):
        out += _BYTES
        out += struct.pack(">I", len(value))
        out += value
    elif isinstance(value, (list, tuple)):
        out += _LIST if isinstance(value, list) else _TUPLE
        out += struct.pack(">I", len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        keys = list(value)
        if not all(isinstance(k, str) for k in keys):
            raise MarshalError("dict keys must be strings")
        out += _DICT
        out += struct.pack(">I", len(keys))
        for key in sorted(keys):
            _encode(key, out)
            _encode(value[key], out)
    else:
        raise MarshalError(
            f"cannot marshal {type(value).__name__}: only plain data "
            f"(None/bool/int/float/str/bytes/list/tuple/dict) is allowed")


def _decode(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise MarshalError("truncated value")
    tag = data[offset:offset + 1]
    offset += 1
    if tag == _NONE:
        return None, offset
    if tag == _TRUE:
        return True, offset
    if tag == _FALSE:
        return False, offset
    if tag == _FLOAT:
        _need(data, offset, 8)
        return struct.unpack_from(">d", data, offset)[0], offset + 8
    if tag in (_INT, _STR, _BYTES):
        _need(data, offset, 4)
        length = struct.unpack_from(">I", data, offset)[0]
        offset += 4
        _need(data, offset, length)
        raw = data[offset:offset + length]
        offset += length
        if tag == _INT:
            return int.from_bytes(raw, "big", signed=True), offset
        if tag == _STR:
            return raw.decode("utf-8"), offset
        return bytes(raw), offset
    if tag in (_LIST, _TUPLE):
        _need(data, offset, 4)
        count = struct.unpack_from(">I", data, offset)[0]
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return (items if tag == _LIST else tuple(items)), offset
    if tag == _DICT:
        _need(data, offset, 4)
        count = struct.unpack_from(">I", data, offset)[0]
        offset += 4
        result = {}
        for _ in range(count):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    raise MarshalError(f"unknown tag byte {tag!r} at offset {offset - 1}")


def _need(data: bytes, offset: int, n: int) -> None:
    if offset + n > len(data):
        raise MarshalError("truncated value")
