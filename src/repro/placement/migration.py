"""The live key-migration micro-protocol (snapshot / transfer / catch-up
/ cutover).

When the ring changes shape, the affected key ranges must travel from
their old owner to their new one *while the system keeps serving*.  One
:class:`KeyMigration` executes the moves of one resize in four phases,
all through the ordinary group-RPC call path (``snapshot`` / ``ingest``
/ ``drop_keys`` are plain operations of the shard application, so they
inherit whatever semantics the shard's micro-protocol stack provides):

1. **snapshot** — read the source shard's state and restrict it to the
   moving keys; the snapshot is persisted to the coordinator node's
   stable store so a coordinator crash mid-migration cannot strand a
   half-transferred range invisibly;
2. **transfer** — bulk-``ingest`` the snapshot into the destination.
   Client writes still flow to the source during this warm phase;
3. **catch-up** — with the moving *ranges* parked by the placement
   plane, re-list every source shard **in full** and ship every key
   whose owner changes under the target ring: updates and deletions
   that raced the warm transfer, but also keys *created* after the
   plan was drawn, which the frozen move list cannot know about;
4. **cutover** — ``drop_keys`` on the source (the recomputed key set,
   not the planned one), so no key is ever owned by two shards once
   the parked calls are released against the new ring.

If the source shard is dead (or dies mid-phase, detected by a failed
call), the protocol falls back to **salvage**: reading the source
servers' stable store directly — the simulation's stand-in for mounting
a failed site's disk.  Shards built on :class:`~repro.apps.kvstore.
StableKVStore` persist every acknowledged write, so salvage recovers
exactly the acknowledged state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.messages import CallResult

__all__ = ["MigrationState", "ShardMove", "KeyMigration"]

#: Stable-store cell prefix under which migration snapshots are parked on
#: the coordinator node.
SNAPSHOT_PREFIX = "placement.migration."


class MigrationState(enum.Enum):
    """Lifecycle of one shard-to-shard move."""

    PLANNED = "PLANNED"
    SNAPSHOT = "SNAPSHOT"
    TRANSFER = "TRANSFER"
    CATCHUP = "CATCHUP"
    CUTOVER = "CUTOVER"
    DONE = "DONE"


@dataclass
class ShardMove:
    """One directed key transfer: ``keys`` travel ``source -> dest``."""

    source: str
    dest: str
    keys: List[str]
    state: MigrationState = MigrationState.PLANNED
    #: Warm-phase snapshot (moving keys only), diffed at catch-up.
    snapshot: Dict[str, Any] = field(default_factory=dict)
    #: Distinct keys actually shipped (warm + catch-up united).
    moved: int = 0
    #: True when the source was read from stable storage, not via RPC.
    salvaged: bool = False

    @property
    def key_set(self) -> Set[str]:
        return set(self.keys)


class KeyMigration:
    """Executes every :class:`ShardMove` of one ring resize."""

    def __init__(self, deployment: Any, coordinator: int,
                 moves: List[ShardMove], *, epoch: int,
                 dead: Optional[Set[str]] = None,
                 stable_prefix: str = "",
                 target: Any = None,
                 sources: Optional[List[str]] = None,
                 views: Any = None,
                 phase_hook: Any = None):
        self.deployment = deployment
        self.coordinator = coordinator
        self.moves = moves
        self.epoch = epoch
        #: Shard services known (or discovered) to be unreachable; shared
        #: with the plane so a mid-migration death is remembered.
        self.dead: Set[str] = dead if dead is not None else set()
        self.metrics = deployment.metrics
        #: Cell prefix of the shard app's stable mirror, used by salvage.
        self.stable_prefix = stable_prefix
        #: Target :class:`~repro.placement.ring.HashRing`.  When given,
        #: catch-up re-lists every source in full and migrates *any* key
        #: whose owner changes under it — including keys created after
        #: the plan was drawn.  Without it (phases driven by hand) the
        #: protocol is restricted to the planned key sets.
        self.target = target
        #: Every shard that may hold departing keys; defaults to the
        #: planned sources.
        self.sources: List[str] = (list(sources) if sources is not None
                                   else sorted({m.source for m in moves}))
        #: The observatory's flight recorder, or None: each phase leaves
        #: one causal breadcrumb so a post-mortem dump shows where a
        #: migration was when something else went wrong.
        self._flight = getattr(deployment, "flight", None)
        #: The deployment's :class:`~repro.placement.view.ViewManager`,
        #: or None.  With views, per-move snapshots are persisted to
        #: *every* metadata replica's stable store instead of only the
        #: coordinator node's — a successor coordinator can then resume
        #: catch-up with the original warm snapshots.
        self.views = views
        #: Optional callable fired at phase boundaries (``"snapshot"``,
        #: ``"transfer"``) inside the runner's own context; the plane
        #: fires ``"catchup"``/``"cutover"`` itself, after persisting
        #: the plan's phase marker.
        self.phase_hook = phase_hook

    def _hook(self, phase: str) -> None:
        hook = self.phase_hook
        if hook is not None:
            hook(phase)

    # ------------------------------------------------------------------
    # Phases (driven by the placement plane)
    # ------------------------------------------------------------------

    async def warm_transfer(self) -> None:
        """Phases 1+2 for every move: snapshot, persist, bulk-ingest.

        The source keeps serving; writes racing this phase are repaired
        by :meth:`catch_up`.
        """
        if self._flight is not None:
            self._flight.note("migration", phase="warm_transfer",
                              epoch=self.epoch, moves=len(self.moves))
        self._hook("snapshot")
        transferring = False
        for move in self.moves:
            move.state = MigrationState.SNAPSHOT
            move.snapshot = await self._read_source(move)
            self._persist_snapshot(move)
            move.state = MigrationState.TRANSFER
            if move.snapshot:
                if not transferring:
                    transferring = True
                    self._hook("transfer")
                await self._ingest(move.dest, move.snapshot)

    async def catch_up(self) -> None:
        """Phase 3: with the moving ranges parked, ship the differences.

        Each source is re-listed **in full** (not restricted to the
        planned keys) and every key whose owner differs under the target
        ring departs: updates and deletions that raced the warm
        transfer, plus keys created during the warm phase that the
        frozen plan never saw.  Departures to a destination with no
        planned move get a fresh :class:`ShardMove` so cutover retires
        them from the source too.
        """
        if self._flight is not None:
            self._flight.note("migration", phase="catch_up",
                              epoch=self.epoch, sources=len(self.sources))
        by_source: Dict[str, List[ShardMove]] = {}
        for move in self.moves:
            move.state = MigrationState.CATCHUP
            by_source.setdefault(move.source, []).append(move)
        for source in self.sources:
            moves = by_source.get(source, [])
            if not moves and self.target is None:
                continue
            fresh, salvaged = await self._read_full(source)
            departing: Dict[str, Dict[str, Any]] = {}
            if self.target is not None:
                for key, value in fresh.items():
                    dest = self.target.route(key)
                    if dest != source:
                        departing.setdefault(dest, {})[key] = value
            else:
                for move in moves:
                    departing[move.dest] = {
                        key: fresh[key] for key in move.keys
                        if key in fresh}
            for move in moves:
                entries = departing.pop(move.dest, {})
                updates = {key: value for key, value in entries.items()
                           if key not in move.snapshot
                           or move.snapshot[key] != value}
                deletions = [key for key in move.snapshot
                             if key not in fresh]
                if updates:
                    await self._ingest(move.dest, updates)
                if deletions and not salvaged:
                    # A salvaged read can't distinguish "deleted since
                    # the warm snapshot" from "not stably written"; keep
                    # the warm copy rather than guessing a deletion.
                    await self._call(move.dest, "drop_keys",
                                     {"keys": deletions})
                move.salvaged = move.salvaged or salvaged
                move.keys = sorted(move.key_set | set(entries))
                move.moved = len(set(move.snapshot) | set(entries))
            for dest, entries in sorted(departing.items()):
                if not entries:
                    continue
                move = ShardMove(source, dest, sorted(entries))
                move.state = MigrationState.CATCHUP
                move.salvaged = salvaged
                await self._ingest(dest, entries)
                move.moved = len(entries)
                self.moves.append(move)

    async def cutover(self) -> None:
        """Phase 4: retire the moved range from every source."""
        if self._flight is not None:
            self._flight.note("migration", phase="cutover",
                              epoch=self.epoch, moves=len(self.moves))
        for move in self.moves:
            move.state = MigrationState.CUTOVER
            if move.source not in self.dead:
                result = await self._call(move.source, "drop_keys",
                                          {"keys": move.keys})
                if not result.ok:
                    # The source died between catch-up and cutover: its
                    # leftover copies are unreachable through the ring,
                    # and a later rejoin wipes them (PlacementPlane.
                    # add_shard).  Record the death and proceed.
                    self.dead.add(move.source)
            self._free_snapshot(move)
            move.state = MigrationState.DONE
            self.metrics.counter("placement.migration.keys_moved").inc(
                move.moved)
        if self._flight is not None:
            self._flight.note("migration", phase="done",
                              epoch=self.epoch,
                              moved=self.moved_total)

    # ------------------------------------------------------------------
    # Source reading: RPC when alive, stable-store salvage when not
    # ------------------------------------------------------------------

    async def _read_source(self, move: ShardMove) -> Dict[str, Any]:
        """Warm-phase read of one move's planned keys."""
        data, salvaged = await self._read_full(move.source)
        move.salvaged = move.salvaged or salvaged
        return {key: data[key] for key in move.keys if key in data}

    async def _read_full(self, source: str) -> Tuple[Dict[str, Any], bool]:
        """One source's complete current state and whether it came from
        stable-store salvage rather than RPC."""
        if source in self.dead:
            return self._salvage(source), True
        result = await self._call(source, "snapshot", {})
        if not result.ok:
            self.dead.add(source)
            return self._salvage(source), True
        return dict(result.args or {}), False

    def _salvage(self, source: str) -> Dict[str, Any]:
        """Read everything off the dead source's "disk"."""
        self.metrics.counter("placement.migration.salvages").inc()
        out: Dict[str, Any] = {}
        prefix = self.stable_prefix
        if not prefix:
            return out
        service = self.deployment.services.get(source)
        if service is None:
            return out
        for pid in service.server_pids:
            node = self.deployment.nodes.get(pid)
            if node is None:
                continue
            for cell, value in node.stable.items_with_prefix(prefix):
                out[cell[len(prefix):]] = value
        return out

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    async def _call(self, service: str, op: str,
                    args: Dict[str, Any]) -> CallResult:
        return await self.deployment.call(self.coordinator, service, op,
                                          args)

    async def _ingest(self, dest: str, entries: Dict[str, Any]) -> None:
        from repro.errors import MigrationError
        result = await self._call(dest, "ingest", {"entries": entries})
        if not result.ok:
            raise MigrationError(
                f"destination shard {dest!r} rejected {len(entries)} "
                f"migrating entries (status {result.status.value}); "
                f"the source copy is still authoritative")

    def _snapshot_cell(self, move: ShardMove) -> str:
        return (f"{SNAPSHOT_PREFIX}{self.epoch}."
                f"{move.source}->{move.dest}")

    def _persist_snapshot(self, move: ShardMove) -> None:
        if self.views is not None:
            self.views.put_cell(self._snapshot_cell(move), move.snapshot)
            return
        node = self.deployment.nodes.get(self.coordinator)
        if node is not None:
            node.stable.put(self._snapshot_cell(move), move.snapshot)

    def _free_snapshot(self, move: ShardMove) -> None:
        if self.views is not None:
            self.views.del_cell(self._snapshot_cell(move))
            return
        node = self.deployment.nodes.get(self.coordinator)
        if node is not None:
            node.stable.delete(self._snapshot_cell(move))

    def load_snapshots(self) -> None:
        """Reload every move's persisted warm snapshot (successor-side).

        A move whose snapshot cell is missing (the crash landed before
        it was written) restarts from an empty snapshot, which is safe:
        catch-up treats every surviving source key as an update then.
        """
        for move in self.moves:
            if self.views is not None:
                snap = self.views.get_cell(self._snapshot_cell(move))
            else:
                node = self.deployment.nodes.get(self.coordinator)
                snap = node.stable.get(self._snapshot_cell(move)) \
                    if node is not None else None
            move.snapshot = dict(snap) if snap else {}

    async def rollback(self) -> None:
        """Undo the warm phase: scrub the destinations' ingested copies.

        Only valid before catch-up completes — the sources were never
        mutated, so dropping the planned key sets from the destinations
        restores the pre-migration state exactly.  A destination that
        cannot be reached is recorded dead (its volatile copies die with
        it; a rejoin wipes its stable leftovers).
        """
        if self._flight is not None:
            self._flight.note("migration", phase="rollback",
                              epoch=self.epoch, moves=len(self.moves))
        for move in self.moves:
            if move.keys and move.dest not in self.dead:
                result = await self._call(move.dest, "drop_keys",
                                          {"keys": list(move.keys)})
                if not result.ok:
                    self.dead.add(move.dest)
            self._free_snapshot(move)
            move.state = MigrationState.PLANNED

    @property
    def moved_total(self) -> int:
        return sum(move.moved for move in self.moves)

    @property
    def pairs(self) -> List[Tuple[str, str]]:
        return [(move.source, move.dest) for move in self.moves]
