"""The elastic placement plane (extension).

Where the deployment plane answers "which group implements this name",
the placement plane answers "which service owns this key" — and keeps
the answer correct while the shard set changes underneath a live
workload.  Three cooperating pieces:

* :class:`~repro.placement.ring.HashRing` — deterministic consistent
  hashing with virtual nodes, so a resize moves O(K/N) keys instead of
  remapping the keyspace;
* :class:`~repro.placement.migration.KeyMigration` — the live
  snapshot/transfer/catch-up/cutover protocol that drains moving key
  ranges shard-to-shard through the ordinary group-RPC machinery, with
  stable-store salvage when a source shard is dead;
* :class:`~repro.placement.driver.RebindDriver` — membership-driven
  reconfiguration: suspicion shrinks a service's bound group, recovery
  regrows it, and a fully dead shard is drained automatically;
* :class:`~repro.placement.view.PlacementView` /
  :class:`~repro.placement.view.ViewManager` — the replicated metadata
  plane: immutable epoch-versioned views of key placement, join-merged
  at recovery and persisted per-epoch on every coordinator candidate,
  so a coordinator crash mid-migration fails over instead of stranding
  the deployment.

:func:`~repro.placement.plane.build_elastic_kv` assembles a working
elastic sharded KV in one call.
"""

from repro.placement.driver import RebindDriver
from repro.placement.migration import KeyMigration, MigrationState, ShardMove
from repro.placement.plane import ElasticKV, PlacementPlane, build_elastic_kv
from repro.placement.ring import HashRing, plan_moves
from repro.placement.view import PlacementView, ViewDelta, ViewManager

__all__ = [
    "HashRing",
    "plan_moves",
    "MigrationState",
    "ShardMove",
    "KeyMigration",
    "PlacementPlane",
    "ElasticKV",
    "build_elastic_kv",
    "RebindDriver",
    "PlacementView",
    "ViewDelta",
    "ViewManager",
]
