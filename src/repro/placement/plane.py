"""The placement plane: who owns which key, kept correct while the
system reshapes itself.

A :class:`PlacementPlane` sits between clients and a
:class:`~repro.core.deployment.Deployment`'s named shard services.  It
routes against the :class:`~repro.placement.ring.HashRing` described by
the deployment's current :class:`~repro.placement.view.PlacementView`
(an immutable, epoch-versioned metadata object replicated across the
coordinator candidates' stable stores), and every reshape —
:meth:`add_shard`, :meth:`remove_shard`, or a :meth:`drain_dead_shard`
triggered by the membership-driven :class:`~repro.placement.driver.
RebindDriver` — runs the live key-migration protocol of
:mod:`repro.placement.migration` so that no key is lost, duplicated, or
served stale across the resize.

Calls to keys inside a migrating range are **parked** during the
catch-up/cutover window (an event gate keyed by *ownership change* —
any key, existing or not yet created, whose owner differs between the
old and target ring) and released against the new ring once cutover
completes — "replayed" with fresh routing rather than erroring or
racing the transfer.  Calls to every other key proceed untouched, which
is what bounds the availability dip to the moving ranges.  Before the
catch-up snapshot is taken, the plane waits for in-flight calls that
already passed the gate to drain, so an acknowledged write can never
slip in between the re-snapshot and the cutover drop.

**Coordinator failover.**  Migration phases run as a task *owned by the
coordinator node*, so a coordinator crash cancels the run exactly where
a real site failure would abandon it.  The plan and per-move snapshots
are replicated (:class:`~repro.placement.view.ViewManager`), so the
supervising driver elects a successor — the largest live candidate pid,
the same rule replica groups use to elect a primary — and resumes the
migration from its last persisted phase, or rolls it back when nothing
irreversible has happened yet:

* crash during **snapshot/transfer** (plan phase ``warm``): roll back —
  the destinations only hold warm-ingested copies, so they are scrubbed
  and the old view stands (a dead-shard *drain* instead resumes: its
  source cannot serve the keys anyway);
* crash during **catch-up**: resume — the sources were never mutated by
  catch-up, so re-running the full re-list against the persisted warm
  snapshots is idempotent;
* crash during **cutover**: resume *cutover only*, from the persisted
  manifest of final key sets — re-running catch-up here would misread
  already-dropped source keys as deletions and lose data.

Acknowledged writes always live on exactly one side of the cut, so a
takeover at any phase loses no acknowledged call.

:class:`ElasticKV` is the client-side view (the elastic counterpart of
:class:`~repro.apps.sharding.ShardedKV`) and :func:`build_elastic_kv`
wires N stable-backed shard services plus a ready plane.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

from repro.apps.kvstore import StableKVStore
from repro.core.config import ServiceSpec
from repro.core.messages import CallResult, Status
from repro.errors import PlacementError, TaskCancelled
from repro.placement.migration import KeyMigration, ShardMove
from repro.placement.ring import HashRing, plan_moves
from repro.placement.view import PlacementView, ViewManager

__all__ = ["PlacementPlane", "ElasticKV", "build_elastic_kv"]


class PlacementPlane:
    """Owns key placement for a set of shard services of one deployment."""

    def __init__(self, deployment: Any, *, vnodes: int = 64, seed: int = 0,
                 coordinator: Optional[int] = None,
                 drain_grace: float = 0.0):
        self.deployment = deployment
        self.ring = HashRing(vnodes=vnodes, seed=seed)
        #: The replicated metadata plane; the view's epoch is the
        #: routing-table version every stamped call carries.
        self.views = ViewManager.ensure(deployment)
        #: Client pid issuing the migration RPCs (must participate in
        #: every shard service); defaults to the first adopted shard's
        #: first client.  On a coordinator crash the largest live pid in
        #: :attr:`coordinators` takes over.
        self.coordinator = coordinator
        #: Every pid eligible to coordinate (and to hold a metadata
        #: replica); filled from the shard services' client sets.
        self.coordinators: List[int] = \
            [] if coordinator is None else [coordinator]
        #: Extra virtual settling time between parking and the catch-up
        #: snapshot.  In-flight calls that passed the park gate are
        #: tracked and drained explicitly, so correctness does not
        #: depend on this knob; it only widens the quiet window.
        self.drain_grace = drain_grace
        self.metrics = deployment.metrics
        observatory = getattr(deployment, "observatory", None)
        #: The observatory's hot-key tracker, or None (attach-once).
        self._load = observatory.load if observatory is not None else None
        self._flight = getattr(deployment, "flight", None)
        #: Shard services known to be unreachable (RPC replaced by
        #: stable-store salvage).
        self.dead: Set[str] = set()
        #: Fault-injection / instrumentation hook: called synchronously
        #: at the start of each migration phase (``"snapshot"``,
        #: ``"transfer"``, ``"catchup"``, ``"cutover"``) in the
        #: coordinator-owned runner's context.  To inject a coordinator
        #: crash at a phase, spawn a killer task from the hook — a task
        #: cannot cancel itself.
        self.phase_hook: Optional[Callable[[str], None]] = None
        #: Predicate over key strings: True while calls to that key must
        #: park (None when no migration is in its parked window).
        self._park_pred: Any = None
        self._gate: Any = None
        #: Routed calls currently executing, counted per key, so a park
        #: can wait for calls that passed the gate before it closed.
        self._inflight: Dict[str, int] = {}
        self._drain_waiter: Any = None
        self._mig_lock = deployment.runtime.lock()
        #: True exactly while a phase runner (initial or recovery) is
        #: executing; lets :meth:`recover` distinguish a stranded plan
        #: from one an alive runner is still working through.
        self._runner_active = False
        #: How new shards are built when :meth:`add_shard` is called
        #: without explicit arguments (filled by :func:`build_elastic_kv`).
        self.defaults: Dict[str, Any] = {}
        self._next_index = 0

    # ------------------------------------------------------------------
    # Ring membership
    # ------------------------------------------------------------------

    def adopt(self, name: str) -> None:
        """Put an already-deployed service on the ring (no migration;
        used while assembling the initial layout)."""
        service = self.deployment.service(name)
        self.ring.add(name)
        if self.coordinator is None:
            self.coordinator = service.client_pids[0]
        for pid in service.client_pids:
            if pid not in self.coordinators:
                self.coordinators.append(pid)
        self._sync_view()
        self._publish_gauges()

    @property
    def shards(self) -> List[str]:
        return self.ring.nodes

    @property
    def epoch(self) -> int:
        """The current view epoch (bumped once per committed migration)."""
        return self.views.epoch

    # ------------------------------------------------------------------
    # The routed (and parkable) call path
    # ------------------------------------------------------------------

    async def call(self, client_pid: int, key: Any, op: str,
                   args: Dict[str, Any]) -> CallResult:
        """Route one keyed operation through the current ring.

        If ``key`` is inside a range that is being cut over right now,
        the call parks until the migration completes, then routes against
        the new ring — it can never observe a half-moved key.  The call
        is stamped with the view epoch it routed under; a bounce
        (``Status.REDIRECT``, impossible in this path unless the epoch
        moved between routing and dispatch) re-routes transparently.
        """
        key_str = str(key)
        self.metrics.counter("placement.router.lookups").inc()
        views = self.views
        while True:
            while self._gate is not None and self._park_pred(key_str):
                self.metrics.counter("placement.parked_calls").inc()
                await self._gate.wait()
            epoch = views.epoch
            service = self.ring.route(key_str)
            self.metrics.counter(
                f"placement.router.keys_routed.{service}").inc()
            if self._load is not None:
                self._load.note(service, key_str)
            self._inflight[key_str] = self._inflight.get(key_str, 0) + 1
            try:
                result = await self.deployment.call(
                    client_pid, service, op, args, view_epoch=epoch)
            finally:
                remaining = self._inflight[key_str] - 1
                if remaining:
                    self._inflight[key_str] = remaining
                else:
                    del self._inflight[key_str]
                self._notify_drained()
            if result.status is Status.REDIRECT:
                continue
            return result

    # ------------------------------------------------------------------
    # Reshaping
    # ------------------------------------------------------------------

    async def add_shard(self, name: Optional[str] = None, *,
                        spec: Optional[ServiceSpec] = None,
                        servers: Union[int, Iterable[int], None] = None,
                        app_factory: Any = None) -> Any:
        """Grow the ring by one shard, migrating its key ranges in.

        Unspecified arguments fall back to the defaults recorded by
        :func:`build_elastic_kv`.  Re-adding a previously drained or
        removed shard reuses its deployed service; any stale pre-crash
        state is wiped before the shard rejoins the ring, so it can never
        resurrect keys it no longer owns.  Under a replicated layout
        (``build_elastic_kv(replication=...)``) the new shard is a whole
        replica group: it gets the ReplicaSpec's server count and
        composition, and registers with the deployment's
        :class:`~repro.replication.manager.ReplicationManager` before any
        key moves in — migration then transfers ranges group-to-group.

        If the coordinator crashes mid-migration, a successor completes
        the resize (or rolls it back during the warm phase, in which
        case the service stays deployed but the ring is unchanged).
        """
        defaults = self.defaults
        rspec = defaults.get("replication")
        if name is None:
            prefix = defaults.get("name_prefix", "shard")
            while f"{prefix}-{self._next_index}" in self.ring:
                self._next_index += 1
            name = f"{prefix}-{self._next_index}"
            self._next_index += 1
        if name in self.ring:
            raise PlacementError(f"shard {name!r} is already on the ring")
        deployment = self.deployment
        if name in deployment.services:
            if self.coordinators:
                self._ensure_coordinator(reason=f"add:{name}")
            await self._wipe(name)
            self.dead.discard(name)
            service = deployment.services[name]
        else:
            if self.coordinator is None:
                raise PlacementError(
                    "adopt at least one shard before growing the ring")
            service = deployment.add_service(
                name,
                spec if spec is not None else defaults.get(
                    "spec", ServiceSpec()),
                app_factory if app_factory is not None else defaults.get(
                    "app_factory", StableKVStore),
                servers=servers if servers is not None else defaults.get(
                    "servers_per_shard", 1),
                clients=defaults.get("client_pids",
                                     [self.coordinator]))
            if rspec is not None:
                from repro.replication import ReplicationManager
                ReplicationManager.ensure(deployment).replicate(
                    name, rspec)
        def reshape() -> HashRing:
            if name in self.ring:
                raise PlacementError(
                    f"shard {name!r} is already on the ring")
            target = self.ring.copy()
            target.add(name)
            return target

        await self._migrate(reshape, reason=f"add:{name}")
        return service

    async def remove_shard(self, name: str) -> None:
        """Shrink the ring by one shard, migrating its key ranges out.

        The service stays deployed (its nodes may carry other services);
        it simply no longer owns any keys.
        """
        if name not in self.ring:
            raise PlacementError(f"shard {name!r} is not on the ring")

        def reshape() -> Optional[HashRing]:
            if name not in self.ring:
                return None             # a queued drain got there first
            if len(self.ring) == 1:
                raise PlacementError(
                    "cannot remove the last shard: its keys have nowhere "
                    "to go")
            target = self.ring.copy()
            target.remove(name)
            return target

        await self._migrate(reshape, reason=f"remove:{name}")

    async def drain_dead_shard(self, name: str) -> None:
        """Re-home a dead shard's key ranges from its stable storage.

        Called by the :class:`~repro.placement.driver.RebindDriver` when
        every server of a shard service is suspected.  The moving keys
        are parked for the whole migration (the source cannot serve them
        anyway), the key list and values are salvaged from the dead
        servers' stable store, and ownership cuts over to the survivors.
        """
        if name not in self.ring:
            return
        if len(self.ring) == 1:
            raise PlacementError(
                f"shard {name!r} is the only shard; nothing can absorb "
                f"its keys")
        self.dead.add(name)
        self.metrics.counter("placement.drains").inc()

        def reshape() -> Optional[HashRing]:
            if name not in self.ring:
                return None
            target = self.ring.copy()
            target.remove(name)
            return target

        await self._migrate(reshape, reason=f"drain:{name}",
                            park_early=True)

    # ------------------------------------------------------------------
    # Coordinator election and failover
    # ------------------------------------------------------------------

    def _elect(self) -> Optional[int]:
        """The largest live, unsuspected candidate pid (the replica
        groups' election rule), or None."""
        deployment = self.deployment
        suspected = self.views.suspected
        live = [pid for pid in self.coordinators
                if pid in deployment.nodes and deployment.nodes[pid].up
                and pid not in suspected]
        return max(live, default=None)

    def _ensure_coordinator(self, *, reason: str = "") -> None:
        """Re-elect before starting work if the coordinator is down."""
        deployment = self.deployment
        node = deployment.nodes.get(self.coordinator) \
            if self.coordinator is not None else None
        if (node is not None and node.up
                and self.coordinator not in self.views.suspected):
            return
        successor = self._elect()
        if successor is None:
            raise PlacementError(
                f"no live coordinator candidate "
                f"(candidates: {self.coordinators})")
        previous, self.coordinator = self.coordinator, successor
        self.metrics.counter("placement.view.takeovers").inc()
        if self._flight is not None:
            self._flight.note("coord-takeover", previous=previous,
                              successor=successor, phase=None,
                              reason=reason or "pre-migration")

    def on_coordinator_suspected(self, pid: int) -> None:
        """Membership hook (wired by the RebindDriver): the coordinator
        is suspected.  If a persisted plan is stranded — the migration's
        supervising caller died with the coordinator — a recovery task
        picks it up; a live supervisor observes the cancellation itself
        and needs no help."""
        if pid != self.coordinator:
            return
        self.deployment.runtime.spawn(
            self._recover_if_stranded(),
            name="placement-recover", daemon=True)

    async def _recover_if_stranded(self) -> None:
        runtime = self.deployment.runtime
        # Let in-flight cancellations unwind: the runner's own teardown
        # (and a live supervisor's failover) runs first.
        while self._runner_active:
            await runtime.sleep(0.0005)
        try:
            await self.recover()
        except PlacementError:
            if self._flight is not None:
                self._flight.note("recover-failed",
                                  coordinator=self.coordinator)

    async def recover(self) -> bool:
        """Resume (or roll back) a stranded migration from the
        replicated plan.  Returns True when there was one to recover.

        Safe to call at any time: a migration whose supervisor is alive
        holds the migration lock until it completes, and an orphaned
        runner (supervisor died, coordinator didn't) is waited out — by
        the time the plan is inspected, its presence really means the
        migration has no one driving it.
        """
        runtime = self.deployment.runtime
        async with self._mig_lock:
            while self._runner_active:
                await runtime.sleep(0.0005)
            if self.views.load_plan() is None:
                return False
            started = runtime.now()
            outcome: Dict[str, Any] = {}
            task = self._failover("recover", outcome)
            if task is None:
                return False
            await self._supervise(task, "recover", outcome)
            self.metrics.counter("placement.migration.runs").inc()
            self.metrics.histogram(
                "placement.migration.duration").observe(
                    runtime.now() - started)
            self._publish_gauges()
            return True

    def _failover(self, reason: str,
                  outcome: Dict[str, Any]) -> Optional[Any]:
        """Elect a successor and hand it the persisted plan.  Returns
        the spawned recovery runner, or None when there is nothing to
        recover."""
        views = self.views
        previous = self.coordinator
        successor = self._elect()
        plan = views.load_plan()
        phase = plan.get("phase") if plan is not None else None
        if successor is None:
            # No live candidate can even issue the rollback RPCs:
            # release the parked calls against the old ring and surface
            # the stranding.  The plan stays persisted — a later
            # :meth:`recover` can still finish the job.
            self._release()
            raise PlacementError(
                f"coordinator {previous} is down mid-migration "
                f"({reason!r}, phase {phase!r}) and no successor "
                f"candidate is live")
        if successor != previous:
            self.coordinator = successor
            self.metrics.counter("placement.view.takeovers").inc()
            if self._flight is not None:
                self._flight.note("coord-takeover", previous=previous,
                                  successor=successor, phase=phase,
                                  reason=reason)
        if plan is None:
            # The crash landed before the proposal was persisted (or
            # after the commit cleared it): the old view stands.
            self._release()
            return None
        node = self.deployment.nodes[successor]
        return node.spawn(self._recover_phases(plan, reason, outcome),
                          name=f"placement-recover-{reason}")

    # ------------------------------------------------------------------
    # The migration driver
    # ------------------------------------------------------------------

    async def _migrate(self, reshape: Any, *, reason: str,
                       park_early: bool = False) -> Optional[KeyMigration]:
        runtime = self.deployment.runtime
        async with self._mig_lock:
            # The target ring is derived from the *current* ring only
            # once the lock is held: a reshape that queued behind another
            # migration must not clobber its predecessor's outcome.
            target = reshape()
            if target is None:
                return None
            self._ensure_coordinator(reason=reason)
            started = runtime.now()
            obs = self.deployment.obs
            span = None
            if obs is not None:
                span = obs.start_span(
                    "placement.migrate", node=self.coordinator,
                    attrs={"reason": reason, "epoch": self.epoch})
                obs.push_ctx(span.ctx)
            outcome: Dict[str, Any] = {}
            migration = None
            try:
                migration = await self._drive(target, park_early, reason,
                                              outcome)
            finally:
                if obs is not None:
                    obs.pop_ctx()
                    obs.end_span(span, keys_moved=(
                        migration.moved_total if migration else 0))
            self.metrics.counter("placement.migration.runs").inc()
            self.metrics.histogram("placement.migration.duration").observe(
                runtime.now() - started)
            self._publish_gauges()
            return migration

    async def _drive(self, target: HashRing, park_early: bool,
                     reason: str,
                     outcome: Dict[str, Any]) -> Optional[KeyMigration]:
        """Run the phases as a coordinator-owned task and supervise it:
        a coordinator crash cancels the runner, and the supervisor fails
        the migration over to an elected successor."""
        node = self.deployment.nodes[self.coordinator]
        task = node.spawn(
            self._run_phases(target, park_early, reason, outcome),
            name=f"placement-migrate-{reason}")
        return await self._supervise(task, reason, outcome)

    async def _supervise(self, task: Any, reason: str,
                         outcome: Dict[str, Any]) -> Optional[KeyMigration]:
        runtime = self.deployment.runtime
        deployment = self.deployment
        while True:
            try:
                await runtime.join(task)
                return outcome.get("migration")
            except TaskCancelled:
                coord = deployment.nodes.get(self.coordinator)
                if coord is not None and coord.up:
                    # The *supervisor* was cancelled (its node crashed),
                    # not the runner: let the cancellation unwind.  An
                    # orphaned runner finishes on its own; an orphaned
                    # plan is picked up by on_coordinator_suspected.
                    raise
                task = self._failover(reason, outcome)
                if task is None:
                    return outcome.get("migration")

    async def _run_phases(self, target: HashRing, park_early: bool,
                          reason: str, outcome: Dict[str, Any]) -> None:
        runtime = self.deployment.runtime
        views = self.views
        self._runner_active = True
        try:
            keys_by_shard = {}
            for name in self.ring.nodes:
                keys_by_shard[name] = await self._shard_keys(name)
            moves = [ShardMove(source, dest, keys) for (source, dest), keys
                     in plan_moves(target, keys_by_shard).items()]
            migration = KeyMigration(
                self.deployment, self.coordinator, moves, epoch=self.epoch,
                dead=self.dead,
                stable_prefix=StableKVStore.STABLE_PREFIX,
                target=target, sources=self.ring.nodes,
                views=views, phase_hook=self._fire_hook)
            outcome["migration"] = migration
            views.propose(self._plan_blob(target, migration, park_early,
                                          reason, phase="warm"),
                          reason=reason)
            # Park by ownership change, not by the enumerated plan: a key
            # created during the migration still parks if its range moves.
            old = self.ring

            def moving(key: str) -> bool:
                return old.route(key) != target.route(key)

            try:
                if park_early:
                    self._park(moving)
                    await self._drain_inflight()
                await migration.warm_transfer()
                if not park_early:
                    self._park(moving)
                    await self._drain_inflight()
                if self.drain_grace > 0:
                    await runtime.sleep(self.drain_grace)
                views.update_plan(phase="catchup")
                self._fire_hook("catchup")
                await migration.catch_up()
                views.update_plan(phase="cutover",
                                  moves=self._moves_blob(migration),
                                  dead=sorted(self.dead))
                self._fire_hook("cutover")
                await migration.cutover()
            except TaskCancelled:
                # Coordinator crash: leave the gate closed and the plan
                # persisted — the supervisor (or a recovery task) fails
                # over to a successor.
                raise
            except BaseException:
                # A migration error (e.g. a destination rejecting its
                # ingest) aborts the reshape: the old view stands.
                views.rollback(reason=f"{reason}:error")
                self._release()
                raise
            self._commit(target, migration, reason)
        finally:
            self._runner_active = False

    async def _recover_phases(self, plan: Dict[str, Any], reason: str,
                              outcome: Dict[str, Any]) -> None:
        """Successor-side resumption: rebuild the migration from the
        replicated plan and continue from its last persisted phase (or
        roll it back)."""
        views = self.views
        spec = plan["target"]
        target = HashRing(spec["shards"], vnodes=spec["vnodes"],
                          seed=spec["seed"])
        park_early = bool(plan.get("park_early"))
        phase = plan.get("phase", "warm")
        self.dead.update(plan.get("dead", ()))
        moves = []
        for blob in plan["moves"]:
            move = ShardMove(blob["source"], blob["dest"],
                             list(blob["keys"]))
            move.moved = int(blob.get("moved", 0))
            moves.append(move)
        migration = KeyMigration(
            self.deployment, self.coordinator, moves,
            epoch=int(plan["epoch"]), dead=self.dead,
            stable_prefix=StableKVStore.STABLE_PREFIX,
            target=target, sources=list(plan["sources"]),
            views=views, phase_hook=self._fire_hook)
        outcome["migration"] = migration
        old = self.ring

        def moving(key: str) -> bool:
            return old.route(key) != target.route(key)

        self._runner_active = True
        try:
            try:
                if phase == "warm" and not park_early:
                    # Nothing irreversible has happened: the sources
                    # were never mutated and the destinations hold only
                    # warm-ingested copies.  Roll back.
                    await migration.rollback()
                    views.rollback(reason=f"{reason}:coordinator-crash")
                    self._release()
                    outcome["migration"] = None
                    return
                if phase == "warm":
                    # A dead-shard drain resumes instead: its source
                    # cannot serve the moving keys anyway.  Warm work is
                    # idempotent (snapshot re-reads, ingest overwrites).
                    if self._gate is None:
                        self._park(moving)
                    await self._drain_inflight()
                    await migration.warm_transfer()
                    views.update_plan(phase="catchup")
                    self._fire_hook("catchup")
                    await migration.catch_up()
                    views.update_plan(phase="cutover",
                                      moves=self._moves_blob(migration),
                                      dead=sorted(self.dead))
                    self._fire_hook("cutover")
                    await migration.cutover()
                elif phase == "catchup":
                    # Catch-up never mutates the sources, so a full
                    # re-run against the persisted warm snapshots is
                    # idempotent.  The gate survived the crash (it lives
                    # on the plane), so the quiet window still holds.
                    migration.load_snapshots()
                    if self._gate is None:
                        self._park(moving)
                    await self._drain_inflight()
                    await migration.catch_up()
                    views.update_plan(phase="cutover",
                                      moves=self._moves_blob(migration),
                                      dead=sorted(self.dead))
                    self._fire_hook("cutover")
                    await migration.cutover()
                else:
                    # Cutover: catch-up completed, so the persisted
                    # manifest holds the final key sets.  Only the drops
                    # may be partial; re-dropping is idempotent.
                    # Re-running catch-up here would misread keys the
                    # first cutover already dropped from a source as
                    # deletions — and drop them from the destination.
                    if self._gate is None:
                        self._park(moving)
                    await migration.cutover()
            except TaskCancelled:
                raise                   # next successor takes over
            except BaseException:
                views.rollback(reason=f"{reason}:error")
                self._release()
                raise
            self._commit(target, migration, reason)
        finally:
            self._runner_active = False

    def _commit(self, target: HashRing, migration: KeyMigration,
                reason: str) -> None:
        """Cut the metadata over: new ring, epoch+1, plan retired, gate
        released.  Synchronous — no crash window between its steps."""
        views = self.views
        self.ring = target
        views.commit(PlacementView.make(
            epoch=views.epoch + 1, ring=target,
            bindings=self._bindings(), moves=(), dead=self.dead),
            reason=reason)
        views.clear_plan()
        self._release()

    def _sync_view(self) -> None:
        """Publish the plane's current metadata on the view (same epoch)."""
        views = self.views
        views.replicas = sorted(set(self.coordinators))
        views.sync(PlacementView.make(
            epoch=views.epoch, ring=self.ring,
            bindings=self._bindings(),
            moves=views.current.moves, dead=self.dead))

    def _bindings(self) -> Dict[str, Any]:
        services = self.deployment.services
        return {name: tuple(services[name].group.members)
                for name in self.ring.nodes if name in services}

    def _fire_hook(self, phase: str) -> None:
        hook = self.phase_hook
        if hook is not None:
            hook(phase)

    def _plan_blob(self, target: HashRing, migration: KeyMigration,
                   park_early: bool, reason: str,
                   phase: str) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "target_epoch": self.epoch + 1,
            "phase": phase,
            "reason": reason,
            "park_early": park_early,
            "target": {"shards": list(target.nodes),
                       "vnodes": target.vnodes, "seed": target.seed},
            "sources": list(migration.sources),
            "moves": self._moves_blob(migration),
            "dead": sorted(self.dead),
        }

    @staticmethod
    def _moves_blob(migration: KeyMigration) -> List[Dict[str, Any]]:
        return [{"source": move.source, "dest": move.dest,
                 "keys": list(move.keys), "moved": move.moved}
                for move in migration.moves]

    async def _shard_keys(self, name: str) -> List[str]:
        """The keys a shard currently holds (RPC, or salvage if dead)."""
        if name not in self.dead:
            result = await self.deployment.call(self.coordinator, name,
                                                "keys", {})
            if result.ok:
                return list(result.args or [])
            self.dead.add(name)
        prefix = StableKVStore.STABLE_PREFIX
        service = self.deployment.services.get(name)
        if service is None:
            return []
        keys: Set[str] = set()
        for pid in service.server_pids:
            node = self.deployment.nodes.get(pid)
            if node is not None:
                keys.update(cell[len(prefix):] for cell
                            in node.stable.keys_with_prefix(prefix))
        return sorted(keys)

    async def _wipe(self, name: str) -> None:
        """Clear a rejoining shard's leftover state (volatile + stable).

        When the shard's servers cannot be reached (e.g. still down),
        their stable cells are scrubbed directly — a failed RPC must not
        be read as "nothing to wipe", or a later recovery would reload
        the pre-crash cells and resurrect keys the shard no longer owns.
        """
        result = await self.deployment.call(self.coordinator, name,
                                            "keys", {})
        if result.ok:
            leftover = list(result.args or [])
            if leftover:
                await self.deployment.call(self.coordinator, name,
                                           "drop_keys",
                                           {"keys": leftover})
            return
        prefix = StableKVStore.STABLE_PREFIX
        service = self.deployment.services.get(name)
        if service is None:
            return
        for pid in service.server_pids:
            node = self.deployment.nodes.get(pid)
            if node is None:
                continue
            for cell in list(node.stable.keys_with_prefix(prefix)):
                node.stable.delete(cell)

    def _park(self, keys: Any) -> None:
        """Close the gate: ``keys`` is a set of key strings or a
        predicate over them (the latter covers whole hash ranges, so
        keys that do not exist yet park too)."""
        if callable(keys):
            self._park_pred = keys
        else:
            keyset = set(keys)
            self._park_pred = keyset.__contains__
        self._gate = self.deployment.runtime.event()

    async def _drain_inflight(self) -> None:
        """Wait until no in-flight routed call still targets a parked
        key — calls that passed the gate before it closed must land on
        the source before the catch-up snapshot is taken."""
        while self._park_pred is not None and any(
                self._park_pred(key) for key in self._inflight):
            self._drain_waiter = self.deployment.runtime.event()
            await self._drain_waiter.wait()

    def _notify_drained(self) -> None:
        waiter = self._drain_waiter
        if (waiter is not None and self._park_pred is not None
                and not any(self._park_pred(key)
                            for key in self._inflight)):
            self._drain_waiter = None
            waiter.set()

    def _release(self) -> None:
        gate, self._gate = self._gate, None
        self._park_pred = None
        self._drain_waiter = None
        if gate is not None:
            gate.set()

    def _publish_gauges(self) -> None:
        self.metrics.gauge("placement.ring.epoch").set(self.epoch)
        self.metrics.gauge("placement.ring.shards").set(len(self.ring))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PlacementPlane shards={self.ring.nodes} "
                f"epoch={self.epoch}>")


class ElasticKV:
    """Client view of one keyspace whose shard set can change live.

    The elastic counterpart of :class:`~repro.apps.sharding.ShardedKV`:
    same surface, but every operation routes through the placement
    plane's ring *at call time* and participates in call parking, so the
    view stays correct across resizes without rebuilding it.
    """

    def __init__(self, plane: PlacementPlane, client_pid: int):
        self.plane = plane
        self.client_pid = client_pid

    def shard_of(self, key: Any) -> str:
        return self.plane.ring.route(str(key))

    async def put(self, key: Any, value: Any, **extra: Any) -> CallResult:
        return await self.plane.call(self.client_pid, key, "put",
                                     {"key": key, "value": value, **extra})

    async def get(self, key: Any) -> CallResult:
        return await self.plane.call(self.client_pid, key, "get",
                                     {"key": key})

    async def delete(self, key: Any) -> CallResult:
        return await self.plane.call(self.client_pid, key, "delete",
                                     {"key": key})

    async def keys(self) -> List[str]:
        """Union of keys across the ring's current shards (sorted)."""
        seen: set = set()
        for name in self.plane.ring.nodes:
            result = await self.plane.deployment.call(
                self.client_pid, name, "keys", {})
            if result.ok and result.args:
                seen.update(result.args)
        return sorted(seen)


def build_elastic_kv(deployment: Any, n_shards: int, *,
                     spec: Optional[ServiceSpec] = None,
                     servers_per_shard: int = 1,
                     clients: Union[int, Sequence[int]] = 1,
                     vnodes: int = 64,
                     seed: int = 0,
                     drain_grace: float = 0.0,
                     name_prefix: str = "shard",
                     app_factory: Any = StableKVStore,
                     replication: Any = None):
    """Deploy ``n_shards`` stable-backed KV services under a placement
    plane; returns ``(plane, kv)``.

    The default spec gives every shard exactly-once, serially-executed
    semantics with bounded termination — bounded termination is what
    turns a call to a dead shard into a TIMEOUT the migration machinery
    can observe, rather than a hang.  The default application is
    :class:`~repro.apps.kvstore.StableKVStore`, whose acknowledged
    writes survive crashes and are therefore salvageable when a shard
    dies mid-migration.

    Every client pid becomes a coordinator candidate and a metadata
    replica: pass ``clients >= 2`` to survive coordinator crashes
    mid-migration (with one candidate there is no successor to elect).

    ``replication`` (a :class:`~repro.replication.spec.ReplicaSpec`)
    makes every shard — current and future — a replica group: the
    ReplicaSpec supplies each shard's server count and composed
    micro-protocols (``spec``/``servers_per_shard`` must then be left at
    their defaults), the deployment's call path splits read/write
    routing per shard, and migrations move whole groups.
    """
    if n_shards < 1:
        raise PlacementError("need at least one shard")
    if replication is not None:
        if spec is not None or servers_per_shard != 1:
            raise PlacementError(
                "replication= supplies each shard's spec and replica "
                "count; don't also pass spec/servers_per_shard")
        spec = replication.service_spec()    # Figure-4 validation, now
        servers_per_shard = replication.replicas
    elif spec is None:
        spec = ServiceSpec(reliable=True, unique=True, execution="serial",
                           bounded=2.0, acceptance=1)
    plane = PlacementPlane(deployment, vnodes=vnodes, seed=seed,
                           drain_grace=drain_grace)
    first = None
    for i in range(n_shards):
        name = f"{name_prefix}-{i}"
        service = deployment.add_service(
            name, spec, app_factory, servers=servers_per_shard,
            clients=clients if first is None else first.client_pids)
        if first is None:
            first = service
        plane.adopt(name)
    if replication is not None:
        from repro.replication import ReplicationManager
        manager = ReplicationManager.ensure(deployment)
        for i in range(n_shards):
            manager.replicate(f"{name_prefix}-{i}", replication)
    plane.defaults = {
        "spec": spec,
        "app_factory": app_factory,
        "servers_per_shard": servers_per_shard,
        "client_pids": list(first.client_pids),
        "name_prefix": name_prefix,
        "replication": replication,
    }
    plane._next_index = n_shards
    return plane, ElasticKV(plane, first.client_pids[0])
