"""The placement plane: who owns which key, kept correct while the
system reshapes itself.

A :class:`PlacementPlane` sits between clients and a
:class:`~repro.core.deployment.Deployment`'s named shard services.  It
owns the :class:`~repro.placement.ring.HashRing` that maps keys to shard
names, and every reshape — :meth:`add_shard`, :meth:`remove_shard`, or a
:meth:`drain_dead_shard` triggered by the membership-driven
:class:`~repro.placement.driver.RebindDriver` — runs the live
key-migration protocol of :mod:`repro.placement.migration` so that no
key is lost, duplicated, or served stale across the resize.

Calls to keys inside a migrating range are **parked** during the
catch-up/cutover window (an event gate keyed by *ownership change* —
any key, existing or not yet created, whose owner differs between the
old and target ring) and released against the new ring once cutover
completes — "replayed" with fresh routing rather than erroring or
racing the transfer.  Calls to every other key proceed untouched, which
is what bounds the availability dip to the moving ranges.  Before the
catch-up snapshot is taken, the plane waits for in-flight calls that
already passed the gate to drain, so an acknowledged write can never
slip in between the re-snapshot and the cutover drop.

:class:`ElasticKV` is the client-side view (the elastic counterpart of
:class:`~repro.apps.sharding.ShardedKV`) and :func:`build_elastic_kv`
wires N stable-backed shard services plus a ready plane.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.apps.kvstore import StableKVStore
from repro.core.config import ServiceSpec
from repro.core.messages import CallResult
from repro.errors import PlacementError
from repro.placement.migration import KeyMigration, ShardMove
from repro.placement.ring import HashRing, plan_moves

__all__ = ["PlacementPlane", "ElasticKV", "build_elastic_kv"]


class PlacementPlane:
    """Owns key placement for a set of shard services of one deployment."""

    def __init__(self, deployment: Any, *, vnodes: int = 64, seed: int = 0,
                 coordinator: Optional[int] = None,
                 drain_grace: float = 0.0):
        self.deployment = deployment
        self.ring = HashRing(vnodes=vnodes, seed=seed)
        #: Bumped once per completed migration; routing-table version.
        self.epoch = 0
        #: Client pid issuing the migration RPCs (must participate in
        #: every shard service); defaults to the first adopted shard's
        #: first client.
        self.coordinator = coordinator
        #: Extra virtual settling time between parking and the catch-up
        #: snapshot.  In-flight calls that passed the park gate are
        #: tracked and drained explicitly, so correctness does not
        #: depend on this knob; it only widens the quiet window.
        self.drain_grace = drain_grace
        self.metrics = deployment.metrics
        observatory = getattr(deployment, "observatory", None)
        #: The observatory's hot-key tracker, or None (attach-once).
        self._load = observatory.load if observatory is not None else None
        #: Shard services known to be unreachable (RPC replaced by
        #: stable-store salvage).
        self.dead: Set[str] = set()
        #: Predicate over key strings: True while calls to that key must
        #: park (None when no migration is in its parked window).
        self._park_pred: Any = None
        self._gate: Any = None
        #: Routed calls currently executing, counted per key, so a park
        #: can wait for calls that passed the gate before it closed.
        self._inflight: Dict[str, int] = {}
        self._drain_waiter: Any = None
        self._mig_lock = deployment.runtime.lock()
        #: How new shards are built when :meth:`add_shard` is called
        #: without explicit arguments (filled by :func:`build_elastic_kv`).
        self.defaults: Dict[str, Any] = {}
        self._next_index = 0

    # ------------------------------------------------------------------
    # Ring membership
    # ------------------------------------------------------------------

    def adopt(self, name: str) -> None:
        """Put an already-deployed service on the ring (no migration;
        used while assembling the initial layout)."""
        service = self.deployment.service(name)
        self.ring.add(name)
        if self.coordinator is None:
            self.coordinator = service.client_pids[0]
        self._publish_gauges()

    @property
    def shards(self) -> List[str]:
        return self.ring.nodes

    # ------------------------------------------------------------------
    # The routed (and parkable) call path
    # ------------------------------------------------------------------

    async def call(self, client_pid: int, key: Any, op: str,
                   args: Dict[str, Any]) -> CallResult:
        """Route one keyed operation through the current ring.

        If ``key`` is inside a range that is being cut over right now,
        the call parks until the migration completes, then routes against
        the new ring — it can never observe a half-moved key.
        """
        key_str = str(key)
        self.metrics.counter("placement.router.lookups").inc()
        while self._gate is not None and self._park_pred(key_str):
            self.metrics.counter("placement.parked_calls").inc()
            await self._gate.wait()
        service = self.ring.route(key_str)
        self.metrics.counter(
            f"placement.router.keys_routed.{service}").inc()
        if self._load is not None:
            self._load.note(service, key_str)
        self._inflight[key_str] = self._inflight.get(key_str, 0) + 1
        try:
            return await self.deployment.call(client_pid, service, op,
                                              args)
        finally:
            remaining = self._inflight[key_str] - 1
            if remaining:
                self._inflight[key_str] = remaining
            else:
                del self._inflight[key_str]
            self._notify_drained()

    # ------------------------------------------------------------------
    # Reshaping
    # ------------------------------------------------------------------

    async def add_shard(self, name: Optional[str] = None, *,
                        spec: Optional[ServiceSpec] = None,
                        servers: Union[int, Iterable[int], None] = None,
                        app_factory: Any = None) -> Any:
        """Grow the ring by one shard, migrating its key ranges in.

        Unspecified arguments fall back to the defaults recorded by
        :func:`build_elastic_kv`.  Re-adding a previously drained or
        removed shard reuses its deployed service; any stale pre-crash
        state is wiped before the shard rejoins the ring, so it can never
        resurrect keys it no longer owns.  Under a replicated layout
        (``build_elastic_kv(replication=...)``) the new shard is a whole
        replica group: it gets the ReplicaSpec's server count and
        composition, and registers with the deployment's
        :class:`~repro.replication.manager.ReplicationManager` before any
        key moves in — migration then transfers ranges group-to-group.
        """
        defaults = self.defaults
        rspec = defaults.get("replication")
        if name is None:
            prefix = defaults.get("name_prefix", "shard")
            while f"{prefix}-{self._next_index}" in self.ring:
                self._next_index += 1
            name = f"{prefix}-{self._next_index}"
            self._next_index += 1
        if name in self.ring:
            raise PlacementError(f"shard {name!r} is already on the ring")
        deployment = self.deployment
        if name in deployment.services:
            await self._wipe(name)
            self.dead.discard(name)
            service = deployment.services[name]
        else:
            if self.coordinator is None:
                raise PlacementError(
                    "adopt at least one shard before growing the ring")
            service = deployment.add_service(
                name,
                spec if spec is not None else defaults.get(
                    "spec", ServiceSpec()),
                app_factory if app_factory is not None else defaults.get(
                    "app_factory", StableKVStore),
                servers=servers if servers is not None else defaults.get(
                    "servers_per_shard", 1),
                clients=defaults.get("client_pids",
                                     [self.coordinator]))
            if rspec is not None:
                from repro.replication import ReplicationManager
                ReplicationManager.ensure(deployment).replicate(
                    name, rspec)
        def reshape() -> HashRing:
            if name in self.ring:
                raise PlacementError(
                    f"shard {name!r} is already on the ring")
            target = self.ring.copy()
            target.add(name)
            return target

        await self._migrate(reshape, reason=f"add:{name}")
        return service

    async def remove_shard(self, name: str) -> None:
        """Shrink the ring by one shard, migrating its key ranges out.

        The service stays deployed (its nodes may carry other services);
        it simply no longer owns any keys.
        """
        if name not in self.ring:
            raise PlacementError(f"shard {name!r} is not on the ring")

        def reshape() -> Optional[HashRing]:
            if name not in self.ring:
                return None             # a queued drain got there first
            if len(self.ring) == 1:
                raise PlacementError(
                    "cannot remove the last shard: its keys have nowhere "
                    "to go")
            target = self.ring.copy()
            target.remove(name)
            return target

        await self._migrate(reshape, reason=f"remove:{name}")

    async def drain_dead_shard(self, name: str) -> None:
        """Re-home a dead shard's key ranges from its stable storage.

        Called by the :class:`~repro.placement.driver.RebindDriver` when
        every server of a shard service is suspected.  The moving keys
        are parked for the whole migration (the source cannot serve them
        anyway), the key list and values are salvaged from the dead
        servers' stable store, and ownership cuts over to the survivors.
        """
        if name not in self.ring:
            return
        if len(self.ring) == 1:
            raise PlacementError(
                f"shard {name!r} is the only shard; nothing can absorb "
                f"its keys")
        self.dead.add(name)
        self.metrics.counter("placement.drains").inc()

        def reshape() -> Optional[HashRing]:
            if name not in self.ring:
                return None
            target = self.ring.copy()
            target.remove(name)
            return target

        await self._migrate(reshape, reason=f"drain:{name}",
                            park_early=True)

    # ------------------------------------------------------------------
    # The migration driver
    # ------------------------------------------------------------------

    async def _migrate(self, reshape: Any, *, reason: str,
                       park_early: bool = False) -> Optional[KeyMigration]:
        runtime = self.deployment.runtime
        async with self._mig_lock:
            # The target ring is derived from the *current* ring only
            # once the lock is held: a reshape that queued behind another
            # migration must not clobber its predecessor's outcome.
            target = reshape()
            if target is None:
                return None
            started = runtime.now()
            obs = self.deployment.obs
            span = None
            if obs is not None:
                span = obs.start_span(
                    "placement.migrate", node=self.coordinator,
                    attrs={"reason": reason, "epoch": self.epoch})
                obs.push_ctx(span.ctx)
            migration = None
            try:
                migration = await self._run_phases(target, park_early)
            finally:
                if obs is not None:
                    obs.pop_ctx()
                    obs.end_span(span, keys_moved=(
                        migration.moved_total if migration else 0))
            self.metrics.counter("placement.migration.runs").inc()
            self.metrics.histogram("placement.migration.duration").observe(
                runtime.now() - started)
            self._publish_gauges()
            return migration

    async def _run_phases(self, target: HashRing,
                          park_early: bool) -> KeyMigration:
        runtime = self.deployment.runtime
        keys_by_shard = {}
        for name in self.ring.nodes:
            keys_by_shard[name] = await self._shard_keys(name)
        moves = [ShardMove(source, dest, keys) for (source, dest), keys
                 in plan_moves(target, keys_by_shard).items()]
        migration = KeyMigration(
            self.deployment, self.coordinator, moves, epoch=self.epoch,
            dead=self.dead, stable_prefix=StableKVStore.STABLE_PREFIX,
            target=target, sources=self.ring.nodes)
        # Park by ownership change, not by the enumerated plan: a key
        # created during the migration still parks if its range moves.
        old = self.ring

        def moving(key: str) -> bool:
            return old.route(key) != target.route(key)

        if park_early:
            self._park(moving)
            await self._drain_inflight()
        try:
            await migration.warm_transfer()
            if not park_early:
                self._park(moving)
                await self._drain_inflight()
            if self.drain_grace > 0:
                await runtime.sleep(self.drain_grace)
            await migration.catch_up()
            await migration.cutover()
            self.ring = target
            self.epoch += 1
        finally:
            self._release()
        return migration

    async def _shard_keys(self, name: str) -> List[str]:
        """The keys a shard currently holds (RPC, or salvage if dead)."""
        if name not in self.dead:
            result = await self.deployment.call(self.coordinator, name,
                                                "keys", {})
            if result.ok:
                return list(result.args or [])
            self.dead.add(name)
        prefix = StableKVStore.STABLE_PREFIX
        service = self.deployment.services.get(name)
        if service is None:
            return []
        keys: Set[str] = set()
        for pid in service.server_pids:
            node = self.deployment.nodes.get(pid)
            if node is not None:
                keys.update(cell[len(prefix):] for cell
                            in node.stable.keys_with_prefix(prefix))
        return sorted(keys)

    async def _wipe(self, name: str) -> None:
        """Clear a rejoining shard's leftover state (volatile + stable).

        When the shard's servers cannot be reached (e.g. still down),
        their stable cells are scrubbed directly — a failed RPC must not
        be read as "nothing to wipe", or a later recovery would reload
        the pre-crash cells and resurrect keys the shard no longer owns.
        """
        result = await self.deployment.call(self.coordinator, name,
                                            "keys", {})
        if result.ok:
            leftover = list(result.args or [])
            if leftover:
                await self.deployment.call(self.coordinator, name,
                                           "drop_keys",
                                           {"keys": leftover})
            return
        prefix = StableKVStore.STABLE_PREFIX
        service = self.deployment.services.get(name)
        if service is None:
            return
        for pid in service.server_pids:
            node = self.deployment.nodes.get(pid)
            if node is None:
                continue
            for cell in list(node.stable.keys_with_prefix(prefix)):
                node.stable.delete(cell)

    def _park(self, keys: Any) -> None:
        """Close the gate: ``keys`` is a set of key strings or a
        predicate over them (the latter covers whole hash ranges, so
        keys that do not exist yet park too)."""
        if callable(keys):
            self._park_pred = keys
        else:
            keyset = set(keys)
            self._park_pred = keyset.__contains__
        self._gate = self.deployment.runtime.event()

    async def _drain_inflight(self) -> None:
        """Wait until no in-flight routed call still targets a parked
        key — calls that passed the gate before it closed must land on
        the source before the catch-up snapshot is taken."""
        while self._park_pred is not None and any(
                self._park_pred(key) for key in self._inflight):
            self._drain_waiter = self.deployment.runtime.event()
            await self._drain_waiter.wait()

    def _notify_drained(self) -> None:
        waiter = self._drain_waiter
        if (waiter is not None and self._park_pred is not None
                and not any(self._park_pred(key)
                            for key in self._inflight)):
            self._drain_waiter = None
            waiter.set()

    def _release(self) -> None:
        gate, self._gate = self._gate, None
        self._park_pred = None
        self._drain_waiter = None
        if gate is not None:
            gate.set()

    def _publish_gauges(self) -> None:
        self.metrics.gauge("placement.ring.epoch").set(self.epoch)
        self.metrics.gauge("placement.ring.shards").set(len(self.ring))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PlacementPlane shards={self.ring.nodes} "
                f"epoch={self.epoch}>")


class ElasticKV:
    """Client view of one keyspace whose shard set can change live.

    The elastic counterpart of :class:`~repro.apps.sharding.ShardedKV`:
    same surface, but every operation routes through the placement
    plane's ring *at call time* and participates in call parking, so the
    view stays correct across resizes without rebuilding it.
    """

    def __init__(self, plane: PlacementPlane, client_pid: int):
        self.plane = plane
        self.client_pid = client_pid

    def shard_of(self, key: Any) -> str:
        return self.plane.ring.route(str(key))

    async def put(self, key: Any, value: Any, **extra: Any) -> CallResult:
        return await self.plane.call(self.client_pid, key, "put",
                                     {"key": key, "value": value, **extra})

    async def get(self, key: Any) -> CallResult:
        return await self.plane.call(self.client_pid, key, "get",
                                     {"key": key})

    async def delete(self, key: Any) -> CallResult:
        return await self.plane.call(self.client_pid, key, "delete",
                                     {"key": key})

    async def keys(self) -> List[str]:
        """Union of keys across the ring's current shards (sorted)."""
        seen: set = set()
        for name in self.plane.ring.nodes:
            result = await self.plane.deployment.call(
                self.client_pid, name, "keys", {})
            if result.ok and result.args:
                seen.update(result.args)
        return sorted(seen)


def build_elastic_kv(deployment: Any, n_shards: int, *,
                     spec: Optional[ServiceSpec] = None,
                     servers_per_shard: int = 1,
                     clients: Union[int, Sequence[int]] = 1,
                     vnodes: int = 64,
                     seed: int = 0,
                     drain_grace: float = 0.0,
                     name_prefix: str = "shard",
                     app_factory: Any = StableKVStore,
                     replication: Any = None):
    """Deploy ``n_shards`` stable-backed KV services under a placement
    plane; returns ``(plane, kv)``.

    The default spec gives every shard exactly-once, serially-executed
    semantics with bounded termination — bounded termination is what
    turns a call to a dead shard into a TIMEOUT the migration machinery
    can observe, rather than a hang.  The default application is
    :class:`~repro.apps.kvstore.StableKVStore`, whose acknowledged
    writes survive crashes and are therefore salvageable when a shard
    dies mid-migration.

    ``replication`` (a :class:`~repro.replication.spec.ReplicaSpec`)
    makes every shard — current and future — a replica group: the
    ReplicaSpec supplies each shard's server count and composed
    micro-protocols (``spec``/``servers_per_shard`` must then be left at
    their defaults), the deployment's call path splits read/write
    routing per shard, and migrations move whole groups.
    """
    if n_shards < 1:
        raise PlacementError("need at least one shard")
    if replication is not None:
        if spec is not None or servers_per_shard != 1:
            raise PlacementError(
                "replication= supplies each shard's spec and replica "
                "count; don't also pass spec/servers_per_shard")
        spec = replication.service_spec()    # Figure-4 validation, now
        servers_per_shard = replication.replicas
    elif spec is None:
        spec = ServiceSpec(reliable=True, unique=True, execution="serial",
                           bounded=2.0, acceptance=1)
    plane = PlacementPlane(deployment, vnodes=vnodes, seed=seed,
                           drain_grace=drain_grace)
    first = None
    for i in range(n_shards):
        name = f"{name_prefix}-{i}"
        service = deployment.add_service(
            name, spec, app_factory, servers=servers_per_shard,
            clients=clients if first is None else first.client_pids)
        if first is None:
            first = service
        plane.adopt(name)
    if replication is not None:
        from repro.replication import ReplicationManager
        manager = ReplicationManager.ensure(deployment)
        for i in range(n_shards):
            manager.replicate(f"{name_prefix}-{i}", replication)
    plane.defaults = {
        "spec": spec,
        "app_factory": app_factory,
        "servers_per_shard": servers_per_shard,
        "client_pids": list(first.client_pids),
        "name_prefix": name_prefix,
        "replication": replication,
    }
    plane._next_index = n_shards
    return plane, ElasticKV(plane, first.client_pids[0])
