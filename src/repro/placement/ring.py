"""Consistent-hash ring: deterministic key placement with minimal churn.

The static modulo-N router remaps nearly the whole keyspace whenever the
shard count changes; a consistent-hash ring moves only the key ranges
adjacent to the added or removed node — O(K/N) keys instead of O(K).
Each node is planted at ``vnodes`` pseudo-random points on a 32-bit
circle and a key belongs to the first node point at or after its own
hash (wrapping).  More virtual nodes smooth the per-node share at the
cost of a larger point table.

Hashes are CRC-32 of seeded strings, so two rings built with the same
``(nodes, vnodes, seed)`` agree on every key across processes and runs —
the same property that lets independent :class:`~repro.apps.sharding.
ShardRouter` clients share one layout, preserved under elasticity.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import PlacementError

__all__ = ["HashRing", "plan_moves"]


def _crc(text: str) -> int:
    return zlib.crc32(text.encode("utf-8"))


class HashRing:
    """A seeded consistent-hash ring over named nodes (shard services)."""

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = 64,
                 seed: int = 0):
        if vnodes < 1:
            raise PlacementError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        #: Sorted (point, node) pairs; ties broken by name, so the order
        #: is deterministic even on CRC collisions.
        self._points: List[Tuple[int, str]] = []
        self._nodes: set = set()
        for name in nodes:
            self.add(name)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add(self, name: str) -> None:
        """Plant ``name``'s virtual nodes on the ring."""
        if name in self._nodes:
            raise PlacementError(f"node {name!r} is already on the ring")
        self._nodes.add(name)
        for i in range(self.vnodes):
            point = _crc(f"{self.seed}:vnode:{name}#{i}")
            bisect.insort(self._points, (point, name))

    def remove(self, name: str) -> None:
        """Take ``name`` off the ring; its ranges fall to the successors."""
        if name not in self._nodes:
            raise PlacementError(f"node {name!r} is not on the ring")
        self._nodes.discard(name)
        self._points = [(p, n) for (p, n) in self._points if n != name]

    def copy(self) -> "HashRing":
        """An independent ring with the same placement function."""
        clone = HashRing(vnodes=self.vnodes, seed=self.seed)
        clone._points = list(self._points)
        clone._nodes = set(self._nodes)
        return clone

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def key_point(self, key: Any) -> int:
        """Where ``key`` lands on the circle (the routing hash)."""
        return _crc(f"{self.seed}:key:{key}")

    def route(self, key: Any) -> str:
        """The node owning ``key``: first node point at or after the
        key's hash, wrapping past the top of the circle."""
        if not self._points:
            raise PlacementError("cannot route on an empty ring")
        point = self.key_point(key)
        index = bisect.bisect_left(self._points, (point, ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def partition(self, keys: Iterable[Any]) -> Dict[str, List[Any]]:
        """Group ``keys`` by owning node (every node gets an entry)."""
        out: Dict[str, List[Any]] = {name: [] for name in self.nodes}
        for key in keys:
            out[self.route(key)].append(key)
        return out

    def moved_keys(self, other: "HashRing",
                   keys: Iterable[Any]) -> Dict[Any, Tuple[str, str]]:
        """Keys whose owner differs between this ring and ``other``,
        mapped to their ``(old_owner, new_owner)`` pair."""
        moves: Dict[Any, Tuple[str, str]] = {}
        for key in keys:
            old, new = self.route(key), other.route(key)
            if old != new:
                moves[key] = (old, new)
        return moves

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HashRing nodes={self.nodes} vnodes={self.vnodes} "
                f"seed={self.seed}>")


def plan_moves(after: HashRing, keys_by_node: Dict[str, Iterable[Any]]
               ) -> Dict[Tuple[str, str], List[Any]]:
    """Which keys must travel, grouped by (source, destination).

    ``keys_by_node`` maps each *current* owner to the keys it actually
    holds; a key whose owner under ``after`` differs is scheduled to move.
    Pairs and key lists are sorted, so a migration plan is deterministic.
    """
    moves: Dict[Tuple[str, str], List[Any]] = {}
    for source, keys in sorted(keys_by_node.items()):
        for key in keys:
            dest = after.route(key)
            if dest != source:
                moves.setdefault((source, dest), []).append(key)
    return {pair: sorted(keys, key=str) for pair, keys in
            sorted(moves.items())}
