"""Membership-driven reconfiguration: rebinding without an operator.

The deployment plane's :meth:`~repro.core.deployment.Deployment.rebind`
used to be a manual step an experiment script performed after reshaping
a group.  The :class:`RebindDriver` closes the loop: it subscribes to
the deployment's membership knowledge (perfect fabric notifications
under the oracle modes, the deduplicated union of per-node heartbeat
suspicions otherwise) and keeps every service's binding consistent with
site liveness:

* **suspicion** shrinks the bound group — calls stop waiting on a dead
  replica the moment it is suspected, instead of timing out against it;
* **recovery** regrows the group toward the service's full server set;
* the driver *prefers shrinking a binding over draining a shard*: when
  the last bound server of a replicated shard is suspected but the
  :class:`~repro.replication.manager.ReplicationManager` still knows
  live replicas outside the binding, the binding is re-pointed at those
  survivors (``placement.rebind.revive``) instead of abandoning the
  shard;
* only a shard with no live replica at all is truly dead; if a
  :class:`~repro.placement.plane.PlacementPlane` routes keys to it, the
  driver schedules a :meth:`~repro.placement.plane.
  PlacementPlane.drain_dead_shard` so the dead shard's key ranges are
  salvaged from stable storage and re-homed onto the survivors.

Rebinds are driven through the ordinary
:meth:`~repro.core.deployment.Deployment.rebind` path, so they are
atomic with respect to the name-resolved call path: in-flight calls
finish against the group they resolved, later calls resolve the new one.
"""

from __future__ import annotations

from typing import Any, Optional, Set

__all__ = ["RebindDriver"]


class RebindDriver:
    """Automatic group rebinding (and dead-shard draining) for one
    deployment."""

    def __init__(self, deployment: Any, *,
                 plane: Optional[Any] = None,
                 regrow: bool = True):
        self.deployment = deployment
        #: The placement plane to notify when a whole shard dies; None
        #: disables draining (bindings still shrink and regrow).
        self.plane = plane
        #: Whether recoveries regrow bindings toward the full server set.
        self.regrow = regrow
        self.metrics = deployment.metrics
        #: Shards with a drain scheduled or running (no double drains).
        self._draining: Set[str] = set()
        #: The observatory's flight recorder, or None.
        self._flight = getattr(deployment, "flight", None)
        self._closed = False
        #: The deployment's view manager when the placement plane is
        #: live: the driver then consumes :class:`~repro.placement.view.
        #: ViewDelta` events (one subscription covers membership *and*
        #: epoch transitions) instead of raw membership callbacks.
        self._views = getattr(deployment, "views", None)
        if self._views is not None:
            self._views.watch(self._on_delta)
        else:
            deployment.watch_membership(self._on_change)
        register = getattr(deployment, "register_driver", None)
        if register is not None:
            register(self)

    def close(self) -> None:
        """Detach from the membership stream: no further rebinds.

        Every subscription this driver made is released, so a driver
        replaced mid-run (or a deployment torn down and rebuilt in the
        same process) does not keep a dead listener reacting to
        suspicions.
        """
        if self._closed:
            return
        self._closed = True
        if self._views is not None:
            self._views.unwatch(self._on_delta)
        else:
            self.deployment.unwatch_membership(self._on_change)
        unregister = getattr(self.deployment, "unregister_driver", None)
        if unregister is not None:
            unregister(self)

    # ------------------------------------------------------------------

    def _on_delta(self, delta: Any) -> None:
        """View-stream consumption: membership deltas drive the same
        shrink/regrow/drain logic; a suspected migration *coordinator*
        additionally arms the plane's failover recovery (the plan may be
        stranded with no live supervisor)."""
        if self._closed or delta.kind != "member":
            return
        if (not delta.alive and self.plane is not None
                and delta.pid == self.plane.coordinator):
            self.plane.on_coordinator_suspected(delta.pid)
        self._on_change(delta.pid, delta.alive)

    def _on_change(self, pid: int, alive: bool) -> None:
        if self._closed:
            return
        for service in list(self.deployment.services.values()):
            if pid not in service.server_pids:
                continue
            if alive:
                self._on_recovery(service, pid)
            else:
                self._on_suspicion(service, pid)

    def _on_suspicion(self, service: Any, pid: int) -> None:
        members = set(service.group.members)
        if pid not in members:
            return
        if len(members) > 1:
            self.deployment.rebind(service.name,
                                   sorted(members - {pid}))
            self.metrics.counter("placement.rebind.shrink").inc()
            return
        # Last bound server suspected.  A replica group may still have
        # live replicas *outside* the binding (suspected earlier and
        # recovered without a regrow): shrinking the binding onto them
        # is strictly cheaper than draining the shard, so it wins.
        repl = getattr(self.deployment, "replication", None)
        if repl is not None and repl.group(service.name) is not None:
            survivors = sorted(set(repl.live_members(service.name))
                               - {pid})
            if survivors:
                self.deployment.rebind(service.name, survivors)
                self.metrics.counter("placement.rebind.revive").inc()
                if self._flight is not None:
                    self._flight.note("drain-averted",
                                      service=service.name,
                                      members=survivors)
                return
        # The service is dead as a whole.  The binding is left in place
        # (there is nothing smaller to bind), but its key ranges can
        # still be rescued.
        if (self.plane is not None and service.name in self.plane.ring
                and service.name not in self._draining):
            self._draining.add(service.name)
            if self._flight is not None:
                self._flight.note("drain-scheduled",
                                  service=service.name, pid=pid)
            self.deployment.runtime.spawn(
                self._drain(service.name),
                name=f"drain-{service.name}", daemon=True)

    def _on_recovery(self, service: Any, pid: int) -> None:
        if not self.regrow:
            return
        members = set(service.group.members)
        if pid in members:
            return
        self.deployment.rebind(service.name, sorted(members | {pid}))
        self.metrics.counter("placement.rebind.regrow").inc()

    async def _drain(self, name: str) -> None:
        try:
            await self.plane.drain_dead_shard(name)
        finally:
            self._draining.discard(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RebindDriver services="
                f"{sorted(self.deployment.services)} "
                f"plane={'yes' if self.plane is not None else 'no'}>")
