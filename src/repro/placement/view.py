"""The replicated placement metadata plane: epoch-versioned views.

The placement plane used to keep its metadata — the hash ring, the
shard->group bindings, the in-flight migration plan — as coordinator-
private mutable state, so a coordinator crash mid-migration stranded
the deployment.  This module makes that metadata a first-class
replicated object:

* :class:`PlacementView` — an **immutable, epoch-versioned** snapshot of
  key placement: the ring generation (shard set + vnodes + seed, enough
  to rebuild the exact :class:`~repro.placement.ring.HashRing`), the
  shard->replica-group bindings, the active move set of the migration in
  progress, and the dead-shard set.  Views form a **join-semilattice**:
  :meth:`PlacementView.join` is idempotent, commutative and associative,
  with a higher epoch dominating outright and equal epochs merging
  componentwise — the shape Reconfigurable Lattice Agreement shows is
  sufficient to reconfigure metadata without full consensus.

* :class:`ViewManager` — one per deployment (``deployment.views``).  It
  holds the current view, **persists every epoch and the in-flight
  migration plan to the stable store of every coordinator candidate**
  (writes are fanned out; reads join whatever replicas still answer,
  including the disks of dead nodes — the simulation's stand-in for
  mounting a failed site's storage), tracks suspicion from the
  deployment membership stream, and fans :class:`ViewDelta` events to
  subscribers (the rebind/replication/adaptation drivers consume these
  instead of raw membership events).

Stale-epoch call fencing rides on the same object: routers pin a view
and stamp its epoch on calls (``Deployment.call(view_epoch=...)``); a
stamped call whose epoch no longer matches bounces with
``Status.REDIRECT`` instead of mis-routing mid-migration.

All persistence is synchronous stable-store access — zero virtual time,
zero messages — so enabling views does not perturb seeded workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.messages import CallResult, Status
from repro.errors import ViewError
from repro.placement.ring import HashRing

__all__ = ["PlacementView", "ViewDelta", "ViewManager",
           "CURRENT_CELL", "PLAN_CELL", "EPOCH_PREFIX"]

#: Stable-store cell holding each replica's copy of the current view.
CURRENT_CELL = "placement.view.current"
#: Stable-store cell holding the in-flight migration plan (absent when
#: no migration is running — its presence *is* the recovery trigger).
PLAN_CELL = "placement.view.plan"
#: Per-epoch history cells (``placement.view.epoch.<n>``).
EPOCH_PREFIX = "placement.view.epoch."

#: Plan phases in execution order; recovery compares plans by
#: ``(epoch, phase rank)`` and resumes from the most advanced copy.
PLAN_PHASES = ("warm", "catchup", "cutover")


def _norm_bindings(bindings: Any) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
    if isinstance(bindings, dict):
        items: Iterable = bindings.items()
    else:
        items = bindings
    return tuple(sorted((str(name), tuple(sorted(int(p) for p in pids)))
                        for name, pids in items))


@dataclass(frozen=True)
class PlacementView:
    """One immutable generation of placement metadata.

    ``shards``/``vnodes``/``seed`` determine the routing function
    exactly (two views with equal fields rebuild byte-identical rings);
    ``bindings`` maps each shard service to its bound server group;
    ``moves`` is the active ``(source, dest)`` set of the migration in
    progress (empty when placement is quiescent); ``dead`` the shards
    known unreachable.
    """

    epoch: int = 0
    shards: Tuple[str, ...] = ()
    vnodes: int = 64
    seed: int = 0
    bindings: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
    moves: Tuple[Tuple[str, str], ...] = ()
    dead: Tuple[str, ...] = ()

    # -- construction ----------------------------------------------------

    @classmethod
    def make(cls, *, epoch: int, ring: HashRing,
             bindings: Any = (), moves: Iterable = (),
             dead: Iterable[str] = ()) -> "PlacementView":
        return cls(epoch=epoch,
                   shards=tuple(ring.nodes),
                   vnodes=ring.vnodes,
                   seed=ring.seed,
                   bindings=_norm_bindings(bindings),
                   moves=tuple(sorted((str(s), str(d))
                                      for s, d in moves)),
                   dead=tuple(sorted(set(dead))))

    def with_(self, **changes: Any) -> "PlacementView":
        """A successor view differing in the given fields (normalised)."""
        if "bindings" in changes:
            changes["bindings"] = _norm_bindings(changes["bindings"])
        if "moves" in changes:
            changes["moves"] = tuple(sorted(
                (str(s), str(d)) for s, d in changes["moves"]))
        if "dead" in changes:
            changes["dead"] = tuple(sorted(set(changes["dead"])))
        if "shards" in changes:
            changes["shards"] = tuple(sorted(set(changes["shards"])))
        return replace(self, **changes)

    # -- the lattice -----------------------------------------------------

    def join(self, other: "PlacementView") -> "PlacementView":
        """Least upper bound of two views.

        A strictly higher epoch dominates outright (later generations
        supersede earlier ones — epoch bumps happen only at migration
        commit, under the plane's migration lock, so same-epoch views
        differ at most in the merged components).  Equal epochs merge
        componentwise: shard/dead/move unions, per-shard binding unions,
        max of the ring parameters.  Idempotent, commutative,
        associative — the property tests hold the proof.
        """
        if other.epoch != self.epoch:
            return other if other.epoch > self.epoch else self
        merged: Dict[str, Set[int]] = {}
        for name, pids in self.bindings + other.bindings:
            merged.setdefault(name, set()).update(pids)
        return PlacementView(
            epoch=self.epoch,
            shards=tuple(sorted(set(self.shards) | set(other.shards))),
            vnodes=max(self.vnodes, other.vnodes),
            seed=max(self.seed, other.seed),
            bindings=_norm_bindings(merged),
            moves=tuple(sorted(set(self.moves) | set(other.moves))),
            dead=tuple(sorted(set(self.dead) | set(other.dead))))

    # -- routing ---------------------------------------------------------

    def ring(self) -> HashRing:
        """The exact :class:`HashRing` this view describes (fresh copy)."""
        return HashRing(self.shards, vnodes=self.vnodes, seed=self.seed)

    def route(self, key: Any) -> str:
        return self.ring().route(key)

    def binding(self, shard: str) -> Tuple[int, ...]:
        for name, pids in self.bindings:
            if name == shard:
                return pids
        return ()

    # -- serialisation ---------------------------------------------------

    def to_blob(self) -> Dict[str, Any]:
        return {"epoch": self.epoch,
                "shards": list(self.shards),
                "vnodes": self.vnodes,
                "seed": self.seed,
                "bindings": [[name, list(pids)]
                             for name, pids in self.bindings],
                "moves": [list(pair) for pair in self.moves],
                "dead": list(self.dead)}

    @classmethod
    def from_blob(cls, blob: Dict[str, Any]) -> "PlacementView":
        try:
            return cls(epoch=int(blob["epoch"]),
                       shards=tuple(blob["shards"]),
                       vnodes=int(blob["vnodes"]),
                       seed=int(blob["seed"]),
                       bindings=_norm_bindings(blob.get("bindings", ())),
                       moves=tuple(sorted((str(s), str(d)) for s, d
                                          in blob.get("moves", ()))),
                       dead=tuple(sorted(blob.get("dead", ()))))
        except (KeyError, TypeError, ValueError) as exc:
            raise ViewError(f"malformed PlacementView blob: {exc}") from exc


@dataclass(frozen=True)
class ViewDelta:
    """One event on the view stream drivers subscribe to.

    ``kind`` is ``"member"`` (site liveness changed: ``pid``/``alive``
    carry the membership event, re-published so drivers need only one
    subscription), ``"commit"`` (a new epoch took effect; ``view`` is
    it) or ``"rollback"`` (an in-flight reshape was abandoned; the
    current epoch stands).
    """

    kind: str
    epoch: int
    pid: Optional[int] = None
    alive: Optional[bool] = None
    view: Optional[PlacementView] = None
    reason: str = ""


class ViewManager:
    """The deployment's replicated placement-metadata plane.

    Install once per deployment (:meth:`ensure`); the placement plane
    creates it automatically.  ``replicas`` — the coordinator-candidate
    pids — name the nodes whose stable stores hold the metadata; every
    persist fans out to all of them that are up, every recovery read
    joins all of them that are readable (a dead replica's store is still
    readable: stable storage is the disk, and salvage mounts it).
    """

    def __init__(self, deployment: Any):
        if getattr(deployment, "views", None) is not None:
            raise ViewError("this deployment already has a ViewManager; "
                            "use ViewManager.ensure()")
        self.deployment = deployment
        self.metrics = deployment.metrics
        self.current = PlacementView()
        #: Coordinator-candidate pids whose stable stores replicate the
        #: metadata (set by the plane as shards are adopted).
        self.replicas: List[int] = []
        #: Pids the membership stream currently suspects.
        self.suspected: Set[int] = set()
        self._watchers: List[Callable[[ViewDelta], None]] = []
        self._flight = getattr(deployment, "flight", None)
        self._closed = False
        deployment.views = self
        deployment.watch_membership(self._on_membership)
        register = getattr(deployment, "register_driver", None)
        if register is not None:
            register(self)
        self.metrics.gauge("placement.view.epoch").set(0)

    @classmethod
    def ensure(cls, deployment: Any) -> "ViewManager":
        manager = getattr(deployment, "views", None)
        return manager if manager is not None else cls(deployment)

    def close(self) -> None:
        """Detach from membership, drop subscribers, uninstall."""
        if self._closed:
            return
        self._closed = True
        self.deployment.unwatch_membership(self._on_membership)
        self._watchers.clear()
        if getattr(self.deployment, "views", None) is self:
            self.deployment.views = None
        unregister = getattr(self.deployment, "unregister_driver", None)
        if unregister is not None:
            unregister(self)

    # ------------------------------------------------------------------
    # The delta stream
    # ------------------------------------------------------------------

    def watch(self, watcher: Callable[[ViewDelta], None]) -> None:
        if watcher not in self._watchers:
            self._watchers.append(watcher)

    def unwatch(self, watcher: Callable[[ViewDelta], None]) -> None:
        if watcher in self._watchers:
            self._watchers.remove(watcher)

    def _notify(self, delta: ViewDelta) -> None:
        for watcher in list(self._watchers):
            watcher(delta)

    def _on_membership(self, pid: int, alive: bool) -> None:
        if self._closed:
            return
        if alive:
            self.suspected.discard(pid)
        else:
            self.suspected.add(pid)
        self._notify(ViewDelta(kind="member", epoch=self.current.epoch,
                               pid=pid, alive=alive))

    # ------------------------------------------------------------------
    # The current view
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.current.epoch

    def stale(self, view_epoch: int) -> bool:
        return view_epoch != self.current.epoch

    def redirect_result(self) -> CallResult:
        """The bounce a stale-epoch call receives instead of dispatch:
        the args carry the current epoch so the caller can re-pin."""
        return CallResult(id=-1, status=Status.REDIRECT,
                          args={"epoch": self.current.epoch})

    def sync(self, view: PlacementView) -> None:
        """Replace the current view *without* an epoch transition (ring
        assembly via ``adopt``, move-set bookkeeping): persisted, no
        delta, no tape.

        Local sequential updates replace rather than join — the lattice
        merge is for reconciling divergent *replica copies* at recovery,
        where only unions are safe; the plane's own updates are ordered
        by the migration lock and may retract (clear the move set).
        """
        if view.epoch < self.current.epoch:
            raise ViewError(
                f"cannot sync epoch {view.epoch} over "
                f"{self.current.epoch}: epochs only move forward")
        self.current = view
        self._persist_view(self.current)
        self.metrics.gauge("placement.view.epoch").set(self.current.epoch)

    def commit(self, view: PlacementView, *, reason: str = "") -> None:
        """Make ``view`` the current generation: persist (current +
        per-epoch history cell), tape, notify."""
        if view.epoch < self.current.epoch:
            raise ViewError(
                f"cannot commit epoch {view.epoch} over "
                f"{self.current.epoch}: epochs only move forward")
        self.current = view
        self._persist_view(self.current, history=True)
        self.metrics.counter("placement.view.commits").inc()
        self.metrics.gauge("placement.view.epoch").set(self.current.epoch)
        if self._flight is not None:
            self._flight.note("view-commit", epoch=self.current.epoch,
                              shards=list(self.current.shards),
                              reason=reason)
        self._notify(ViewDelta(kind="commit", epoch=self.current.epoch,
                               view=self.current, reason=reason))

    def recover_view(self) -> PlacementView:
        """Join every replica's persisted current view (dead replicas
        included — their stable store is the disk we mount)."""
        joined = self.current
        for blob in self._read_all(CURRENT_CELL):
            joined = joined.join(PlacementView.from_blob(blob))
            self.metrics.counter("placement.view.joins").inc()
        return joined

    # ------------------------------------------------------------------
    # The migration plan (presence == migration in flight)
    # ------------------------------------------------------------------

    def propose(self, plan: Dict[str, Any], *, reason: str = "") -> None:
        """Persist the plan of a migration about to run and publish the
        active move set on the current view."""
        self._put_all(PLAN_CELL, plan)
        self.metrics.counter("placement.view.proposals").inc()
        self.sync(self.current.with_(
            moves=[(m["source"], m["dest"]) for m in plan["moves"]]))
        if self._flight is not None:
            self._flight.note("view-propose", epoch=plan["epoch"],
                              target_epoch=plan["target_epoch"],
                              phase=plan["phase"],
                              moves=len(plan["moves"]), reason=reason)

    def update_plan(self, **fields: Any) -> None:
        """Advance the persisted plan (phase transitions, the cutover
        manifest) on every reachable replica."""
        plan = self.load_plan()
        if plan is None:
            return
        plan.update(fields)
        self._put_all(PLAN_CELL, plan)

    def load_plan(self) -> Optional[Dict[str, Any]]:
        """The most advanced persisted plan across all replicas, or
        None when no migration is in flight."""
        best: Optional[Dict[str, Any]] = None

        def rank(plan: Dict[str, Any]) -> Tuple[int, int]:
            phase = plan.get("phase", "warm")
            return (int(plan.get("epoch", 0)),
                    PLAN_PHASES.index(phase)
                    if phase in PLAN_PHASES else 0)

        for blob in self._read_all(PLAN_CELL):
            if best is None or rank(blob) > rank(best):
                best = blob
        return dict(best) if best is not None else None

    def clear_plan(self) -> None:
        self._del_all(PLAN_CELL)

    def rollback(self, *, reason: str = "") -> None:
        """Abandon the in-flight reshape: the current epoch stands, the
        plan is erased, subscribers hear about it."""
        self.clear_plan()
        self.sync(self.current.with_(moves=()))
        self.metrics.counter("placement.view.rollbacks").inc()
        if self._flight is not None:
            self._flight.note("view-rollback", epoch=self.current.epoch,
                              reason=reason)
        self._notify(ViewDelta(kind="rollback", epoch=self.current.epoch,
                               reason=reason))

    # ------------------------------------------------------------------
    # Replicated cells (snapshots ride the same fanout)
    # ------------------------------------------------------------------

    def put_cell(self, cell: str, value: Any) -> None:
        """Fan a metadata cell out to every live replica's stable store."""
        self._put_all(cell, value)

    def get_cell(self, cell: str) -> Any:
        """The cell's value from any replica that holds it (live copies
        preferred, dead disks mounted), or None."""
        for value in self._read_all(cell):
            return value
        return None

    def del_cell(self, cell: str) -> None:
        self._del_all(cell)

    def _replica_nodes(self, *, live_only: bool) -> List[Any]:
        nodes = []
        for pid in self.replicas:
            node = self.deployment.nodes.get(pid)
            if node is None:
                continue
            if live_only and not node.up:
                continue
            nodes.append(node)
        return nodes

    def _put_all(self, cell: str, value: Any) -> None:
        wrote = False
        for node in self._replica_nodes(live_only=True):
            node.stable.put(cell, value)
            wrote = True
        if not wrote and self.replicas:
            raise ViewError(
                f"no live metadata replica to persist {cell!r} "
                f"(candidates: {self.replicas})")

    def _del_all(self, cell: str) -> None:
        for node in self._replica_nodes(live_only=False):
            if node.stable.get(cell, None) is not None:
                node.stable.delete(cell)

    def _read_all(self, cell: str) -> List[Any]:
        """Every replica's copy of a cell, live nodes first (the order
        recovery joins them in is deterministic)."""
        live, dead = [], []
        for node in self._replica_nodes(live_only=False):
            value = node.stable.get(cell, None)
            if value is None:
                continue
            (live if node.up else dead).append(value)
        return live + dead

    def _persist_view(self, view: PlacementView,
                      *, history: bool = False) -> None:
        blob = view.to_blob()
        self._put_all(CURRENT_CELL, blob)
        if history:
            self._put_all(f"{EPOCH_PREFIX}{view.epoch}", blob)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ViewManager epoch={self.current.epoch} "
                f"replicas={self.replicas} "
                f"suspected={sorted(self.suspected)}>")
