"""A replicated lock service: coordination on top of group RPC.

Demonstrates the replicated-state-machine use the paper's introduction
motivates with a workload where *agreement itself is the product*: a
lock grant is only meaningful if every replica grants it to the same
owner.  Run it under Total Order and the replicas agree by construction;
run it without ordering and two racing clients can each be granted the
same lock on different replicas — the benchmark-visible split-brain.

Operations (args are dicts):

* ``acquire {lock, owner}``  -> owner now holding the lock (grantee or
  the current holder if the lock was taken) — non-blocking test-and-set;
* ``release {lock, owner}``  -> True if released (only the holder can);
* ``holder {lock}``          -> current holder (or None);
* ``locks {}``               -> {lock: holder} snapshot.

State is volatile (a crashed replica forgets its locks), matching the
lease-free semantics of the simplest coordination kernels.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.dispatcher import ServerApp

__all__ = ["LockService"]


class LockService(ServerApp):
    """In-memory test-and-set locks with an ownership log."""

    def __init__(self, *, op_delay: float = 0.0):
        super().__init__()
        self.holders: Dict[str, str] = {}
        #: Every grant/release in application order, for agreement checks.
        self.grant_log: List[Tuple[str, str, str]] = []
        self.op_delay = op_delay

    def on_crash(self) -> None:
        self.holders = {}
        self.grant_log = []

    def get_state(self) -> Any:
        return {"holders": dict(self.holders),
                "grant_log": list(self.grant_log)}

    def set_state(self, state: Any) -> None:
        self.holders = dict(state["holders"])
        self.grant_log = list(state["grant_log"])

    # -- operations ------------------------------------------------------

    async def handle_acquire(self, args: Dict[str, Any]) -> str:
        """Test-and-set: returns whoever holds the lock afterwards."""
        await self.work(self.op_delay)
        lock, owner = args["lock"], args["owner"]
        current = self.holders.get(lock)
        if current is None:
            self.holders[lock] = owner
            self.grant_log.append(("grant", lock, owner))
            return owner
        return current

    async def handle_release(self, args: Dict[str, Any]) -> bool:
        await self.work(self.op_delay)
        lock, owner = args["lock"], args["owner"]
        if self.holders.get(lock) == owner:
            del self.holders[lock]
            self.grant_log.append(("release", lock, owner))
            return True
        return False

    async def handle_holder(self, args: Dict[str, Any]) -> Optional[str]:
        await self.work(self.op_delay)
        return self.holders.get(args["lock"])

    async def handle_locks(self, args: Dict[str, Any]) -> Dict[str, str]:
        await self.work(self.op_delay)
        return copy.deepcopy(self.holders)
