"""A replicated work queue: where exactly-once and FIFO earn their keep.

The queue's operations are maximally sensitive to the RPC semantics:

* ``enqueue`` duplicated = the same job runs twice downstream;
* ``dequeue`` re-executed = a job silently lost (popped and discarded);
* out-of-order enqueues = jobs executed out of submission order.

So a correct deployment wants exactly-once (Unique Execution) plus FIFO
or Total ordering — and the test suite shows precisely which anomaly
appears when each micro-protocol is removed.

Operations (args are dicts):

* ``enqueue {job}``       -> queue length after the append
* ``dequeue {}``          -> the oldest job (or None when empty)
* ``peek {}``             -> oldest job without removing it
* ``size {}``             -> current length
* ``drained {}``          -> list of every job ever dequeued, in order
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.dispatcher import ServerApp

__all__ = ["WorkQueue"]


class WorkQueue(ServerApp):
    """In-memory FIFO job queue with a dequeue history."""

    def __init__(self, *, op_delay: float = 0.0):
        super().__init__()
        self.jobs: List[Any] = []
        self.dequeued: List[Any] = []
        self.op_delay = op_delay

    def on_crash(self) -> None:
        self.jobs = []
        self.dequeued = []

    def get_state(self) -> Any:
        return {"jobs": list(self.jobs), "dequeued": list(self.dequeued)}

    def set_state(self, state: Any) -> None:
        self.jobs = list(state["jobs"])
        self.dequeued = list(state["dequeued"])

    # -- operations ------------------------------------------------------

    async def handle_enqueue(self, args: Dict[str, Any]) -> int:
        await self.work(self.op_delay)
        self.jobs.append(args["job"])
        return len(self.jobs)

    async def handle_dequeue(self, args: Dict[str, Any]) -> Optional[Any]:
        await self.work(self.op_delay)
        if not self.jobs:
            return None
        job = self.jobs.pop(0)
        self.dequeued.append(job)
        return job

    async def handle_peek(self, args: Dict[str, Any]) -> Optional[Any]:
        await self.work(self.op_delay)
        return self.jobs[0] if self.jobs else None

    async def handle_size(self, args: Dict[str, Any]) -> int:
        await self.work(self.op_delay)
        return len(self.jobs)

    async def handle_drained(self, args: Dict[str, Any]) -> List[Any]:
        await self.work(self.op_delay)
        return list(self.dequeued)
