"""Sharding a keyspace over independently-configured services.

The deployment plane hosts many named services on one fabric; this
module spans a single logical keyspace over N of them.  A
:class:`ShardRouter` deterministically maps each key to a service name
(CRC-32 modulo the shard list — stable across processes and runs, unlike
Python's salted ``hash``), and :class:`ShardedKV` is the client-side
helper that routes ``put``/``get``/``delete`` through a
:class:`~repro.core.deployment.Deployment`'s name-resolved call path.
Because each shard is an ordinary named service, shards can differ in
*semantics*, not just placement: one shard totally ordered for
read-modify-write keys, another read-optimized, a third exactly-once.

:func:`build_sharded_kv` wires the whole thing: N KV services (uniform
spec or per-shard specs), shared client nodes, and a ready router.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.apps.kvstore import KVStore
from repro.core.config import ServiceSpec
from repro.core.messages import CallResult
from repro.errors import ReproError

__all__ = ["ShardRouter", "ShardedKV", "build_sharded_kv"]


class ShardRouter:
    """Deterministic key -> service-name routing (hash modulo shards).

    The shard list's order is part of the routing function: two routers
    built from the same sequence agree on every key, which is what lets
    any number of independent clients share one keyspace layout.
    """

    def __init__(self, services: Sequence[str]):
        self.services: List[str] = list(services)
        if not self.services:
            raise ReproError("a shard router needs at least one service")

    def __len__(self) -> int:
        return len(self.services)

    def shard_index(self, key: Any) -> int:
        return zlib.crc32(str(key).encode("utf-8")) % len(self.services)

    def route(self, key: Any) -> str:
        """The service name responsible for ``key``."""
        return self.services[self.shard_index(key)]

    def partition(self, keys: Iterable[Any]) -> Dict[str, List[Any]]:
        """Group ``keys`` by owning service (bulk-operation helper)."""
        out: Dict[str, List[Any]] = {name: [] for name in self.services}
        for key in keys:
            out[self.route(key)].append(key)
        return out


class ShardedKV:
    """A client-side view of one keyspace spanning N KV services.

    Awaitable from a client task on node ``client_pid``; that node must
    participate (as client) in every shard service, which is what
    :func:`build_sharded_kv` arranges.  Single-key operations touch
    exactly one shard; :meth:`keys` fans out to all of them.
    """

    def __init__(self, deployment: Any, client_pid: int,
                 router: Union[ShardRouter, Sequence[str]]):
        self.deployment = deployment
        self.client_pid = client_pid
        self.router = router if isinstance(router, ShardRouter) \
            else ShardRouter(router)

    def shard_of(self, key: Any) -> str:
        return self.router.route(key)

    async def _call(self, key: Any, op: str,
                    args: Dict[str, Any]) -> CallResult:
        return await self.deployment.call(self.client_pid,
                                          self.router.route(key), op, args)

    async def put(self, key: Any, value: Any,
                  **extra: Any) -> CallResult:
        return await self._call(key, "put",
                                {"key": key, "value": value, **extra})

    async def get(self, key: Any) -> CallResult:
        return await self._call(key, "get", {"key": key})

    async def delete(self, key: Any) -> CallResult:
        return await self._call(key, "delete", {"key": key})

    async def keys(self) -> List[str]:
        """Union of keys across all shards (sorted)."""
        seen: set = set()
        for name in self.router.services:
            result = await self.deployment.call(self.client_pid, name,
                                                "keys", {})
            if result.ok and result.args:
                seen.update(result.args)
        return sorted(seen)


def build_sharded_kv(deployment: Any, n_shards: int, *,
                     spec: Optional[ServiceSpec] = None,
                     specs: Optional[Sequence[ServiceSpec]] = None,
                     servers_per_shard: int = 1,
                     clients: Union[int, Sequence[int]] = 1,
                     name_prefix: str = "shard",
                     app_factory: Any = KVStore,
                     observe: bool = False) -> ShardedKV:
    """Deploy ``n_shards`` KV services and return a routed client.

    Pass a single ``spec`` for uniform shards or per-shard ``specs``
    (length ``n_shards``) to configure each shard's semantics
    independently.  Server pids are auto-allocated per shard; ``clients``
    (a count or explicit pids) are shared by every shard, so any of those
    nodes can drive the whole keyspace.  Returns a :class:`ShardedKV`
    bound to the first client; build more views over the same router for
    the other client pids.
    """
    if n_shards < 1:
        raise ReproError("need at least one shard")
    if specs is not None and len(specs) != n_shards:
        raise ReproError(f"got {len(specs)} specs for {n_shards} shards")
    if specs is None:
        specs = [spec if spec is not None else ServiceSpec()] * n_shards

    first = None
    names: List[str] = []
    for i in range(n_shards):
        name = f"{name_prefix}-{i}"
        svc = deployment.add_service(
            name, specs[i], app_factory,
            servers=servers_per_shard,
            clients=clients if first is None else first.client_pids,
            observe=observe)
        if first is None:
            first = svc
        names.append(name)
    return ShardedKV(deployment, first.client, ShardRouter(names))
