"""Sharding a keyspace over independently-configured services.

The deployment plane hosts many named services on one fabric; this
module spans a single logical keyspace over N of them.  Routing is
pluggable:

* :class:`RingRouter` (the default) places keys on a consistent-hash
  ring (:class:`~repro.placement.ring.HashRing`, virtual nodes, seeded
  placement), so growing or shrinking the shard set moves only O(K/N)
  keys — the property the placement plane's live migration relies on;
* :class:`ShardRouter` is the legacy CRC-32 modulo-N function, kept as
  the baseline the rebalancing benchmark compares against (a resize
  under modulo-N remaps nearly the whole keyspace).

Both are deterministic across processes and runs (CRC-32, not Python's
salted ``hash``), which is what lets any number of independent clients
share one keyspace layout.  When built with a metrics registry they
count every lookup (``placement.router.lookups``) and the per-shard
routing distribution (``placement.router.keys_routed.<service>``), so
benchmarks can assert where keys actually went.

:class:`ShardedKV` is the client-side helper routing ``put``/``get``/
``delete`` through a :class:`~repro.core.deployment.Deployment`'s
name-resolved call path.  Because each shard is an ordinary named
service, shards can differ in *semantics*, not just placement.  For
shard sets that change while serving, use the placement plane
(:func:`repro.placement.build_elastic_kv`) instead.

:func:`build_sharded_kv` wires the whole thing: N KV services (uniform
spec or per-shard specs), shared client nodes, and a ready router.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.apps.kvstore import KVStore
from repro.core.config import ServiceSpec
from repro.core.messages import CallResult, Status
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.placement.ring import HashRing

__all__ = ["ShardRouter", "RingRouter", "ShardedKV", "build_sharded_kv"]


class ShardRouter:
    """Deterministic key -> service-name routing (hash modulo shards).

    The shard list's order is part of the routing function: two routers
    built from the same sequence agree on every key.  This is the static
    baseline — adding or removing a shard remaps almost every key, which
    is why elastic deployments use :class:`RingRouter`.
    """

    def __init__(self, services: Sequence[str], *,
                 metrics: Optional[MetricsRegistry] = None):
        self.services: List[str] = list(services)
        if not self.services:
            raise ReproError("a shard router needs at least one service")
        self._lookups = None
        self._routed: Dict[str, Any] = {}
        #: The placement-view epoch this router's layout was pinned
        #: against (:meth:`RingRouter.pin`); None for static routers.
        #: Stamped on every call the router issues, so a layout that
        #: moved underneath bounces instead of mis-routing.
        self.view_epoch: Optional[int] = None
        #: Per-key load tracker (the observatory's), or None — the
        #: usual attach-once obs contract.
        self._load = None
        if metrics is not None:
            self._lookups = metrics.counter("placement.router.lookups")
            self._routed = {
                name: metrics.counter(
                    f"placement.router.keys_routed.{name}")
                for name in self.services}

    def attach_load(self, tracker: Any) -> None:
        """Feed every routed lookup to a
        :class:`~repro.obs.loadstats.KeyLoadTracker` (hot-key
        accounting).  Attach once, at build time."""
        self._load = tracker

    def __len__(self) -> int:
        return len(self.services)

    def shard_index(self, key: Any) -> int:
        return zlib.crc32(str(key).encode("utf-8")) % len(self.services)

    def _route(self, key: Any) -> str:
        """Routing function alone, no metric counting."""
        return self.services[self.shard_index(key)]

    def route(self, key: Any) -> str:
        """The service name responsible for ``key``."""
        name = self._route(key)
        if self._lookups is not None:
            self._lookups.inc()
            counter = self._routed.get(name)
            if counter is not None:
                counter.inc()
        if self._load is not None:
            self._load.note(name, str(key))
        return name

    def partition(self, keys: Iterable[Any]) -> Dict[str, List[Any]]:
        """Group ``keys`` by owning service (bulk-operation helper).

        Bypasses the lookup metrics: bulk planning must not inflate the
        per-call routing counters benchmarks assert on.
        """
        out: Dict[str, List[Any]] = {name: [] for name in self.services}
        for key in keys:
            out[self._route(key)].append(key)
        return out


class RingRouter(ShardRouter):
    """Consistent-hash routing: the drop-in that survives resizes.

    Same surface as :class:`ShardRouter` (``route``/``shard_index``/
    ``partition``/lookup metrics), but placement comes from a seeded
    :class:`~repro.placement.ring.HashRing`, so :meth:`add` and
    :meth:`remove` disturb only the ranges adjacent to the changed
    shard.  ``shard_index`` remains the position in ``services`` for
    callers that index by shard number.
    """

    def __init__(self, services: Sequence[str], *,
                 vnodes: int = 64, seed: int = 0,
                 metrics: Optional[MetricsRegistry] = None):
        super().__init__(services, metrics=metrics)
        self._metrics = metrics
        self.ring = HashRing(self.services, vnodes=vnodes, seed=seed)
        #: name -> position in ``services``; O(1) shard_index instead of
        #: an O(N) list scan per routed call.
        self._index = {name: i for i, name in enumerate(self.services)}
        #: The :class:`~repro.placement.view.ViewManager` this router is
        #: pinned to, or None for a standalone (viewless) router.
        self._views: Any = None

    def pin(self, views: Any) -> None:
        """Pin the router to a deployment's placement-view plane.

        The router snapshots the current view's ring and remembers its
        epoch (stamped on every call via :attr:`view_epoch`).  When the
        view advances underneath, stamped calls bounce with
        ``Status.REDIRECT`` and the caller :meth:`repin`\\ s — the
        router can never silently mis-route against a retired layout.
        """
        self._views = views
        self.repin()

    def repin(self) -> None:
        """Re-snapshot the pinned view (after a redirect bounce)."""
        if self._views is None:
            return
        view = self._views.current
        self.ring = view.ring()
        self.services = list(view.shards)
        self._index = {name: i for i, name in enumerate(self.services)}
        self.view_epoch = view.epoch
        if self._metrics is not None:
            for name in self.services:
                if name not in self._routed:
                    self._routed[name] = self._metrics.counter(
                        f"placement.router.keys_routed.{name}")

    def shard_index(self, key: Any) -> int:
        return self._index[self.ring.route(str(key))]

    def _route(self, key: Any) -> str:
        return self.ring.route(str(key))

    def add(self, name: str) -> None:
        """Start routing a share of the keyspace to ``name``."""
        self.ring.add(name)
        self.services.append(name)
        self._index[name] = len(self.services) - 1
        if self._metrics is not None:
            self._routed[name] = self._metrics.counter(
                f"placement.router.keys_routed.{name}")

    def remove(self, name: str) -> None:
        """Stop routing to ``name``; its ranges fall to ring successors."""
        self.ring.remove(name)
        self.services.remove(name)
        self._index = {n: i for i, n in enumerate(self.services)}


class ShardedKV:
    """A client-side view of one keyspace spanning N KV services.

    Awaitable from a client task on node ``client_pid``; that node must
    participate (as client) in every shard service, which is what
    :func:`build_sharded_kv` arranges.  Single-key operations touch
    exactly one shard; :meth:`keys` fans out to all of them.
    """

    def __init__(self, deployment: Any, client_pid: int,
                 router: Union[ShardRouter, Sequence[str]]):
        self.deployment = deployment
        self.client_pid = client_pid
        self.router = router if isinstance(router, ShardRouter) \
            else RingRouter(router)

    def shard_of(self, key: Any) -> str:
        return self.router.route(key)

    async def _call(self, key: Any, op: str,
                    args: Dict[str, Any]) -> CallResult:
        while True:
            result = await self.deployment.call(
                self.client_pid, self.router.route(key), op, args,
                view_epoch=self.router.view_epoch)
            if result.status is not Status.REDIRECT:
                return result
            # The placement view advanced under our pinned layout: the
            # bounce is deployment-side (nothing was dispatched), so
            # re-pinning and re-routing is always safe.
            repin = getattr(self.router, "repin", None)
            if repin is None:
                return result
            repin()

    async def put(self, key: Any, value: Any,
                  **extra: Any) -> CallResult:
        return await self._call(key, "put",
                                {"key": key, "value": value, **extra})

    async def get(self, key: Any) -> CallResult:
        return await self._call(key, "get", {"key": key})

    async def delete(self, key: Any) -> CallResult:
        return await self._call(key, "delete", {"key": key})

    async def keys(self) -> List[str]:
        """Union of keys across all shards (sorted)."""
        seen: set = set()
        for name in self.router.services:
            result = await self.deployment.call(self.client_pid, name,
                                                "keys", {})
            if result.ok and result.args:
                seen.update(result.args)
        return sorted(seen)


def build_sharded_kv(deployment: Any, n_shards: int, *,
                     spec: Optional[ServiceSpec] = None,
                     specs: Optional[Sequence[ServiceSpec]] = None,
                     servers_per_shard: int = 1,
                     clients: Union[int, Sequence[int]] = 1,
                     name_prefix: str = "shard",
                     app_factory: Any = KVStore,
                     router: str = "ring",
                     vnodes: int = 64,
                     seed: int = 0,
                     observe: bool = False,
                     replication: Any = None) -> ShardedKV:
    """Deploy ``n_shards`` KV services and return a routed client.

    Pass a single ``spec`` for uniform shards or per-shard ``specs``
    (length ``n_shards``) to configure each shard's semantics
    independently.  Server pids are auto-allocated per shard; ``clients``
    (a count or explicit pids) are shared by every shard, so any of those
    nodes can drive the whole keyspace.  ``router`` selects consistent
    hashing (``"ring"``, the default) or the legacy modulo-N baseline
    (``"modulo"``).  Returns a :class:`ShardedKV` bound to the first
    client; build more views over the same router for the other client
    pids.

    ``replication`` turns every shard into a replica group: pass one
    :class:`~repro.replication.spec.ReplicaSpec` for uniform shards or a
    sequence of them (length ``n_shards``) for per-shard consistency.
    The replica count and composed micro-protocols then come from the
    ReplicaSpec (``spec``/``specs``/``servers_per_shard`` must be left
    at their defaults), every composition is validated against the
    Figure-4 dependency graph up front, and the deployment's call path
    splits read/write routing per shard — reads to any in-sync replica,
    writes through the group (active) or the primary (passive).
    """
    if n_shards < 1:
        raise ReproError("need at least one shard")
    if specs is not None and len(specs) != n_shards:
        raise ReproError(f"got {len(specs)} specs for {n_shards} shards")
    if router not in ("ring", "modulo"):
        raise ReproError(f"unknown router kind {router!r}; "
                         f"expected 'ring' or 'modulo'")
    rspecs = None
    if replication is not None:
        from repro.replication import ReplicaSpec
        if isinstance(replication, ReplicaSpec):
            rspecs = [replication] * n_shards
        else:
            rspecs = list(replication)
        if len(rspecs) != n_shards:
            raise ReproError(f"got {len(rspecs)} ReplicaSpecs for "
                             f"{n_shards} shards")
        if spec is not None or specs is not None or servers_per_shard != 1:
            raise ReproError(
                "replication= supplies each shard's spec and replica "
                "count; don't also pass spec/specs/servers_per_shard")
        # Validate every composition before deploying anything: an
        # illegal shard must fail the whole build, not shard k of n.
        specs = [rspec.service_spec() for rspec in rspecs]
    if specs is None:
        specs = [spec if spec is not None else ServiceSpec()] * n_shards

    first = None
    names: List[str] = []
    for i in range(n_shards):
        name = f"{name_prefix}-{i}"
        svc = deployment.add_service(
            name, specs[i], app_factory,
            servers=(servers_per_shard if rspecs is None
                     else rspecs[i].replicas),
            clients=clients if first is None else first.client_pids,
            observe=observe)
        if first is None:
            first = svc
        names.append(name)
    if rspecs is not None:
        from repro.replication import ReplicationManager
        manager = ReplicationManager.ensure(deployment)
        for name, rspec in zip(names, rspecs):
            manager.replicate(name, rspec)
    if router == "ring":
        routed: ShardRouter = RingRouter(names, vnodes=vnodes, seed=seed,
                                         metrics=deployment.metrics)
    else:
        routed = ShardRouter(names, metrics=deployment.metrics)
    observatory = getattr(deployment, "observatory", None)
    if observatory is not None:
        routed.attach_load(observatory.load)
    return ShardedKV(deployment, first.client, routed)
