"""A replicated key-value store: the workhorse demo application.

Operations (args are dicts; all values must be plain data):

* ``put {key, value}``        -> previous value (or None)
* ``get {key}``               -> stored value (or None)
* ``delete {key}``            -> deleted value (or None)
* ``keys {}``                 -> sorted key list
* ``snapshot {}``             -> full dict copy

State is volatile — a crash loses it — which makes the store a clean
probe for ordering semantics: under Total Order every replica applies the
same writes in the same order, so snapshots agree; without it, concurrent
writers can leave replicas divergent.  ``apply_log`` records every
mutation in order for the ordering invariant checks.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Tuple

from repro.apps.dispatcher import ServerApp

__all__ = ["KVStore"]


class KVStore(ServerApp):
    """In-memory replicated KV store with an application log."""

    def __init__(self, *, op_delay: float = 0.0, keep_log: bool = True):
        super().__init__()
        self.data: Dict[str, Any] = {}
        #: Ordered log of mutations (kind, key, value) for order checking.
        #: Disable with ``keep_log=False`` when the log would dominate
        #: checkpoint sizes (e.g. the delta-checkpoint benchmarks).
        self.apply_log: List[Tuple[str, str, Any]] = []
        self.keep_log = keep_log
        self.op_delay = op_delay
        # Keys written/deleted since the last pop_delta(): the change
        # tracking behind the paper's delta-checkpoint optimization.
        self._dirty: set = set()

    def _log(self, entry: Tuple[str, str, Any]) -> None:
        if self.keep_log:
            self.apply_log.append(entry)

    def pop_delta(self) -> Any:
        """State changes since the last checkpoint, for delta-mode
        Atomic Execution (only when the apply log is off; the log would
        make every delta O(history))."""
        if self.keep_log:
            return None
        from repro.core.microprotocols.atomic_execution import _DELETED
        changes = {key: self.data.get(key, _DELETED)
                   for key in self._dirty}
        self._dirty.clear()
        return {"data": {"__nested__": changes}} if changes else {}

    def on_crash(self) -> None:
        self.data = {}
        self.apply_log = []
        self._dirty = set()

    def get_state(self) -> Any:
        return {"data": copy.deepcopy(self.data),
                "apply_log": list(self.apply_log)}

    def set_state(self, state: Any) -> None:
        self.data = copy.deepcopy(state["data"])
        self.apply_log = list(state["apply_log"])
        self._dirty = set()

    # -- operations ------------------------------------------------------

    async def handle_put(self, args: Dict[str, Any]) -> Any:
        # A per-call "delay" overrides the store-wide op_delay, letting
        # experiments race slow and fast operations against each other.
        await self.work(args.get("delay", self.op_delay))
        previous = self.data.get(args["key"])
        self.data[args["key"]] = args["value"]
        self._dirty.add(args["key"])
        self._log(("put", args["key"], args["value"]))
        return previous

    async def handle_get(self, args: Dict[str, Any]) -> Any:
        await self.work(self.op_delay)
        return self.data.get(args["key"])

    async def handle_delete(self, args: Dict[str, Any]) -> Any:
        await self.work(self.op_delay)
        value = self.data.pop(args["key"], None)
        self._dirty.add(args["key"])
        self._log(("delete", args["key"], None))
        return value

    async def handle_keys(self, args: Dict[str, Any]) -> List[str]:
        await self.work(self.op_delay)
        return sorted(self.data)

    async def handle_snapshot(self, args: Dict[str, Any]) -> Dict[str, Any]:
        await self.work(self.op_delay)
        return copy.deepcopy(self.data)
