"""A replicated key-value store: the workhorse demo application.

Operations (args are dicts; all values must be plain data):

* ``put {key, value}``        -> previous value (or None)
* ``get {key}``               -> stored value (or None)
* ``delete {key}``            -> deleted value (or None)
* ``keys {}``                 -> sorted key list
* ``snapshot {}``             -> full dict copy
* ``ingest {entries}``        -> bulk load (key migration transfer)
* ``drop_keys {keys}``        -> bulk retire (key migration cutover)

State is volatile — a crash loses it — which makes the store a clean
probe for ordering semantics: under Total Order every replica applies the
same writes in the same order, so snapshots agree; without it, concurrent
writers can leave replicas divergent.  ``apply_log`` records every
mutation in order for the ordering invariant checks.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Tuple

from repro.apps.dispatcher import ServerApp

__all__ = ["KVStore", "StableKVStore"]


class KVStore(ServerApp):
    """In-memory replicated KV store with an application log."""

    def __init__(self, *, op_delay: float = 0.0, keep_log: bool = True):
        super().__init__()
        self.data: Dict[str, Any] = {}
        #: Ordered log of mutations (kind, key, value) for order checking.
        #: Disable with ``keep_log=False`` when the log would dominate
        #: checkpoint sizes (e.g. the delta-checkpoint benchmarks).
        self.apply_log: List[Tuple[str, str, Any]] = []
        self.keep_log = keep_log
        self.op_delay = op_delay
        # Keys written/deleted since the last pop_delta(): the change
        # tracking behind the paper's delta-checkpoint optimization.
        self._dirty: set = set()

    def _log(self, entry: Tuple[str, str, Any]) -> None:
        if self.keep_log:
            self.apply_log.append(entry)

    def pop_delta(self) -> Any:
        """State changes since the last checkpoint, for delta-mode
        Atomic Execution (only when the apply log is off; the log would
        make every delta O(history))."""
        if self.keep_log:
            return None
        from repro.core.microprotocols.atomic_execution import _DELETED
        changes = {key: self.data.get(key, _DELETED)
                   for key in self._dirty}
        self._dirty.clear()
        return {"data": {"__nested__": changes}} if changes else {}

    def on_crash(self) -> None:
        self.data = {}
        self.apply_log = []
        self._dirty = set()

    def get_state(self) -> Any:
        return {"data": copy.deepcopy(self.data),
                "apply_log": list(self.apply_log)}

    def set_state(self, state: Any) -> None:
        self.data = copy.deepcopy(state["data"])
        self.apply_log = list(state["apply_log"])
        self._dirty = set()

    # -- operations ------------------------------------------------------

    async def handle_put(self, args: Dict[str, Any]) -> Any:
        # A per-call "delay" overrides the store-wide op_delay, letting
        # experiments race slow and fast operations against each other.
        await self.work(args.get("delay", self.op_delay))
        previous = self.data.get(args["key"])
        self.data[args["key"]] = args["value"]
        self._dirty.add(args["key"])
        self._log(("put", args["key"], args["value"]))
        return previous

    async def handle_get(self, args: Dict[str, Any]) -> Any:
        await self.work(self.op_delay)
        return self.data.get(args["key"])

    async def handle_delete(self, args: Dict[str, Any]) -> Any:
        await self.work(self.op_delay)
        value = self.data.pop(args["key"], None)
        self._dirty.add(args["key"])
        self._log(("delete", args["key"], None))
        return value

    async def handle_keys(self, args: Dict[str, Any]) -> List[str]:
        await self.work(self.op_delay)
        return sorted(self.data)

    async def handle_snapshot(self, args: Dict[str, Any]) -> Dict[str, Any]:
        await self.work(self.op_delay)
        return copy.deepcopy(self.data)

    # -- key-migration surface (placement plane) -------------------------

    async def handle_ingest(self, args: Dict[str, Any]) -> int:
        """Bulk-load migrated entries; returns how many were applied.

        One operation regardless of entry count: a migration transfer is
        a single (possibly ordered, exactly-once) group call, not a
        per-key storm.
        """
        entries: Dict[str, Any] = args["entries"]
        for key, value in entries.items():
            self.data[key] = value
            self._dirty.add(key)
            self._log(("ingest", key, value))
        return len(entries)

    async def handle_drop_keys(self, args: Dict[str, Any]) -> int:
        """Bulk-retire keys that migrated away; returns how many existed."""
        dropped = 0
        for key in args["keys"]:
            if key in self.data:
                del self.data[key]
                dropped += 1
            self._dirty.add(key)
            self._log(("drop", key, None))
        return dropped


class StableKVStore(KVStore):
    """A KV store whose acknowledged writes also live on "disk".

    Every mutation is mirrored into the node's
    :class:`~repro.stablestore.StableStore` under :data:`STABLE_PREFIX`
    after the volatile write, so a reply implies the value is stable.  A
    crash wipes the volatile dict as usual; recovery (and the initial
    bind) reloads it from the stable cells.  This is what makes a shard
    *salvageable*: the placement plane can re-home a dead shard's keys
    by reading its stable store directly.
    """

    STABLE_PREFIX = "kv."

    def bind(self, node: Any) -> None:
        super().bind(node)
        self._reload()
        # Re-binding must not stack duplicate listeners (each would
        # re-run _reload on every recovery).
        if getattr(self, "_recover_hooked", None) is not node:
            node.recover_listeners.append(
                lambda incarnation: self._reload())
            self._recover_hooked = node

    def _reload(self) -> None:
        prefix = self.STABLE_PREFIX
        self.data = {cell[len(prefix):]: value for cell, value
                     in self.node.stable.items_with_prefix(prefix)}

    def _persist(self, key: str) -> None:
        self.node.stable.put(self.STABLE_PREFIX + str(key),
                             self.data[key])

    async def handle_put(self, args: Dict[str, Any]) -> Any:
        previous = await super().handle_put(args)
        self._persist(args["key"])
        return previous

    async def handle_delete(self, args: Dict[str, Any]) -> Any:
        value = await super().handle_delete(args)
        self.node.stable.delete(self.STABLE_PREFIX + str(args["key"]))
        return value

    async def handle_ingest(self, args: Dict[str, Any]) -> int:
        count = await super().handle_ingest(args)
        for key in args["entries"]:
            self._persist(key)
        return count

    async def handle_drop_keys(self, args: Dict[str, Any]) -> int:
        dropped = await super().handle_drop_keys(args)
        for key in args["keys"]:
            self.node.stable.delete(self.STABLE_PREFIX + str(key))
        return dropped
