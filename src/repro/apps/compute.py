"""A parallel-computation service: the probe for collation semantics.

Each replica computes a (deliberately replica-dependent) result, so the
client-visible answer depends entirely on the configured collation
function and acceptance limit — return-any gives the fastest replica's
value, return-all gives one value per accepted replica, and ``average``
folds them into one number, the paper's own example of a collation
function.  Also used for the paper's other motivating uses of group RPC:
"to implement parallel computation, or to improve response time".
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.apps.dispatcher import ServerApp

__all__ = ["ComputeApp"]


class ComputeApp(ServerApp):
    """Replica-dependent measurements and partitioned computation."""

    def __init__(self, replica_value: float, *, op_delay: float = 0.0):
        super().__init__()
        self.replica_value = replica_value
        self.op_delay = op_delay

    # Stateless: nothing to checkpoint or lose.

    async def handle_measure(self, args: Dict[str, Any]) -> float:
        """Return this replica's local measurement."""
        await self.work(self.op_delay)
        return self.replica_value

    async def handle_whoami(self, args: Dict[str, Any]) -> int:
        """Identify the answering replica (return-any demos)."""
        await self.work(self.op_delay)
        return self.node.pid

    async def handle_partial_sum(self, args: Dict[str, Any]) -> float:
        """Sum the slice of ``values`` this replica is responsible for.

        The group partitions the index space by replica rank; collating
        with ``sum`` across ALL replicas yields the full reduction — the
        parallel-computation use of group RPC.
        """
        values: List[float] = args["values"]
        members = sorted(args["members"])
        rank = members.index(self.node.pid)
        await self.work(self.op_delay)
        return float(sum(values[rank::len(members)]))
