"""A bank with *stable* state: the probe for atomic-execution semantics.

The paper: "In situations where the server has no stable state ...
execution is automatically atomic.  On the other hand, if the server does
have stable state, transactional techniques must be used to guarantee
atomicity."

Account balances live in the node's :class:`~repro.stablestore.
StableStore` — they survive crashes.  ``transfer`` performs two separate
stable writes (debit, then credit) with simulated work in between, so a
crash mid-transfer leaves the stable state half-updated... unless the
Atomic Execution micro-protocol is configured, whose checkpoint rollback
erases the partial debit on recovery.  The invariant probe is
:meth:`total`: money is conserved iff execution was atomic.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.apps.dispatcher import ServerApp
from repro.errors import RPCError

__all__ = ["BankApp"]

_PREFIX = "acct:"


class BankApp(ServerApp):
    """Accounts in stable storage; non-atomic multi-write transfers."""

    def __init__(self, initial_accounts: Dict[str, int], *,
                 transfer_delay: float = 0.01):
        super().__init__()
        self.initial_accounts = dict(initial_accounts)
        self.transfer_delay = transfer_delay

    def bind(self, node) -> None:
        super().bind(node)
        for account, balance in self.initial_accounts.items():
            if _PREFIX + account not in node.stable:
                node.stable.put(_PREFIX + account, balance)

    # Balances are stable: nothing volatile to lose on crash.

    def get_state(self) -> Any:
        # The full state is the stable cells (the paper's checkpoint of
        # "the (volatile and stable) state of the server").
        return self.node.stable.snapshot_cells()

    def set_state(self, state: Any) -> None:
        self.node.stable.restore_cells(state)

    # -- internals -------------------------------------------------------

    def _read(self, account: str) -> int:
        balance = self.node.stable.get(_PREFIX + account)
        if balance is None:
            raise RPCError(f"unknown account {account!r}")
        return balance

    def _write(self, account: str, balance: int) -> None:
        self.node.stable.put(_PREFIX + account, balance)

    # -- operations ------------------------------------------------------

    async def handle_balance(self, args: Dict[str, Any]) -> int:
        return self._read(args["account"])

    async def handle_deposit(self, args: Dict[str, Any]) -> int:
        balance = self._read(args["account"]) + args["amount"]
        self._write(args["account"], balance)
        return balance

    async def handle_transfer(self, args: Dict[str, Any]) -> int:
        """Debit source, *then* credit destination: two stable writes."""
        amount = args["amount"]
        self._write(args["src"], self._read(args["src"]) - amount)
        # The non-atomic window: a crash (or an orphan kill) here leaves
        # the debit persisted and the credit lost.
        await self.work(self.transfer_delay)
        new_balance = self._read(args["dst"]) + amount
        self._write(args["dst"], new_balance)
        return new_balance

    async def handle_total(self, args: Dict[str, Any]) -> int:
        """Sum of all balances — the conservation-of-money invariant."""
        return sum(self.node.stable.get(key)
                   for key in self.node.stable.keys()
                   if key.startswith(_PREFIX))

    async def handle_accounts(self, args: Dict[str, Any]) -> List[str]:
        return sorted(key[len(_PREFIX):] for key in self.node.stable.keys()
                      if key.startswith(_PREFIX))
