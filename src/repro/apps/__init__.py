"""Demo server applications exercising the gRPC public API."""

from repro.apps.bank import BankApp
from repro.apps.compute import ComputeApp
from repro.apps.counter import CounterApp
from repro.apps.dispatcher import ServerApp, ServerDispatcher
from repro.apps.kvstore import KVStore, StableKVStore
from repro.apps.locks import LockService
from repro.apps.sharding import (
    RingRouter,
    ShardedKV,
    ShardRouter,
    build_sharded_kv,
)
from repro.apps.workqueue import WorkQueue

__all__ = [
    "ServerApp",
    "ServerDispatcher",
    "KVStore",
    "StableKVStore",
    "CounterApp",
    "BankApp",
    "ComputeApp",
    "LockService",
    "WorkQueue",
    "ShardRouter",
    "RingRouter",
    "ShardedKV",
    "build_sharded_kv",
]
