"""A replicated counter: the minimal probe for execution-count semantics.

``inc`` is deliberately non-idempotent, so the counter's final value
reveals exactly how many times the server procedure executed — the
measurement at the heart of the Figure-1 (failure semantics) experiment:
at-least-once may overshoot under message loss, exactly-once may not.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.dispatcher import ServerApp

__all__ = ["CounterApp"]


class CounterApp(ServerApp):
    """In-memory counter with non-idempotent increments."""

    def __init__(self, *, op_delay: float = 0.0):
        super().__init__()
        self.value = 0
        self.increments = 0
        self.op_delay = op_delay

    def on_crash(self) -> None:
        self.value = 0
        self.increments = 0

    def get_state(self) -> Any:
        return {"value": self.value, "increments": self.increments}

    def set_state(self, state: Any) -> None:
        self.value = state["value"]
        self.increments = state["increments"]

    # -- operations ------------------------------------------------------

    async def handle_inc(self, args: Dict[str, Any]) -> int:
        await self.work(self.op_delay)
        self.value += args.get("amount", 1)
        self.increments += 1
        return self.value

    async def handle_read(self, args: Dict[str, Any]) -> int:
        await self.work(self.op_delay)
        return self.value
