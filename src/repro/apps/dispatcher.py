"""The user protocol above gRPC: server apps and their dispatcher.

The paper assumes "a stub on the server site [that] unmarshalls the data
and invokes the actual procedure".  :class:`ServerDispatcher` is that
protocol: it sits on top of the gRPC composite, receives the blocking
``Server.pop(op, args)`` upcall, and invokes the application procedure.
It also implements the ``checkpoint_state``/``restore_state`` surface the
Atomic Execution micro-protocol requires, and wires the application's
volatile state to the node's crash lifecycle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import UnknownCallError
from repro.net.node import Node
from repro.obs.metrics import Counter, MetricsRegistry
from repro.xkernel.upi import Protocol

__all__ = ["ServerApp", "ServerDispatcher"]


class ServerApp:
    """Base class for server applications.

    Subclasses implement ``handle_<op>`` coroutine methods (e.g.
    ``handle_put``) taking the unmarshalled argument object and returning
    the reply value.  State management hooks:

    * :meth:`get_state` / :meth:`set_state` — the *full* application state
      for Atomic Execution checkpoints;
    * :meth:`on_crash` — reinitialize volatile state when the site
      crashes (stable state, living in ``node.stable``, survives);
    * :meth:`bind` — called once with the owning node, giving the app
      access to the runtime (for simulated work delays) and to stable
      storage.
    """

    def __init__(self) -> None:
        self.node: Optional[Node] = None

    def bind(self, node: Node) -> None:
        self.node = node

    async def handle(self, op: str, args: Any) -> Any:
        method = getattr(self, f"handle_{op}", None)
        if method is None:
            raise UnknownCallError(
                f"{type(self).__name__} has no operation {op!r}")
        return await method(args)

    async def work(self, seconds: float) -> None:
        """Simulate ``seconds`` of server-side computation."""
        if self.node is not None and seconds > 0:
            await self.node.runtime.sleep(seconds)

    # -- state hooks -----------------------------------------------------

    def get_state(self) -> Any:
        """Full (volatile + stable) state for checkpoints."""
        return None

    def set_state(self, state: Any) -> None:
        """Restore from a checkpoint taken with :meth:`get_state`."""

    def on_crash(self) -> None:
        """Volatile state dies with the site.  Default: nothing."""


class ServerDispatcher(Protocol):
    """x-kernel user protocol invoking application procedures."""

    def __init__(self, node: Node, app: ServerApp, *,
                 service: str = "",
                 metrics: Optional[MetricsRegistry] = None,
                 keep_log: bool = True):
        super().__init__(f"server@{node.pid}")
        self.node = node
        self.app = app
        self.service = service
        app.bind(node)
        node.crash_listeners.append(app.on_crash)
        #: Every execution as (op, args) in order — the raw material for
        #: the unique/atomic execution experiments.  ``keep_log=False``
        #: (deployments built with ``keep_trace=False``) skips it: a
        #: million-call perf run would otherwise retain every request's
        #: args forever, growing each gc generation-2 sweep.
        self.keep_log = keep_log
        self.execution_log: List[Tuple[str, Any]] = []
        #: Executions per request tag, when args carry a ``tag`` key.
        self.executions_by_tag: Dict[Any, int] = {}
        #: Per-service execution counter (``service.<name>.executions``)
        #: when deployed with a service label and a shared registry.
        self._exec_counter: Optional[Counter] = None
        if metrics is not None and service:
            self._exec_counter = metrics.counter(
                f"service.{service}.executions")

    async def pop(self, op: str, args: Any) -> Any:
        """The blocking ``Server.pop`` upcall from gRPC."""
        if self.keep_log:
            self.execution_log.append((op, args))
        if self._exec_counter is not None:
            self._exec_counter.inc()
        if isinstance(args, dict) and "tag" in args:
            tag = args["tag"]
            self.executions_by_tag[tag] = \
                self.executions_by_tag.get(tag, 0) + 1
        return await self.app.handle(op, args)

    # -- Atomic Execution's checkpoint surface ---------------------------

    def checkpoint_state(self) -> Any:
        return self.app.get_state()

    def restore_state(self, state: Any) -> None:
        self.app.set_state(state)

    def pop_delta(self) -> Any:
        """App-tracked state changes since the last checkpoint.

        Returns ``None`` when the app does not track changes, in which
        case delta-mode Atomic Execution falls back to structural diffs.
        """
        pop = getattr(self.app, "pop_delta", None)
        return pop() if callable(pop) else None

    def executions(self, tag: Any) -> int:
        return self.executions_by_tag.get(tag, 0)
