"""One shard as a replica group: routing, election, state transfer.

A :class:`ReplicaGroup` wraps one deployed service whose servers are the
replicas of a single shard, and interposes on the deployment's
name-resolved call path (:meth:`~repro.core.deployment.Deployment.call`
consults it through the :class:`~repro.replication.manager.
ReplicationManager`):

* **reads** (ops named by the :class:`~repro.replication.spec.
  ReplicaSpec`) are narrowed to a single in-sync replica, round-robin,
  which is where read scaling comes from — unless the composition
  orders delivery (FIFO/total), in which case every replica must see
  the whole call stream and reads ride the full group;
* **active writes** go to the currently bound group unchanged — the
  composed micro-protocols (acceptance count, ordering, unique
  execution) decide what a write costs and guarantees;
* **passive writes** are narrowed to the elected primary; after the
  primary's reply, the resulting *state change* is transferred to every
  in-sync backup (one single-member call each, through the migration
  surface — backups never execute the application procedure) before the
  write is acknowledged, so an acknowledged write survives any primary
  crash.

Election is deterministic from the membership stream: the primary is
the largest-pid live, in-sync replica (the paper's leader rule).  When
the primary is suspected the group **parks** incoming writes, promotes
the next eligible backup, and releases the parked calls; a write that
was already in flight surfaces as a TIMEOUT and is transparently
re-issued against the new primary (``failover_retry``).  A recovered
replica is *resynced* — writes parked, state snapshot transferred,
leftover keys dropped — before it serves reads or stands for election;
a rejoining larger pid then deterministically takes the primary role
back (a taped demotion).

Everything the group does lands under the ``repl.*`` metric namespace
and leaves causal breadcrumbs on the deployment's flight recorder.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.core.messages import CallResult
from repro.errors import ReproError
from repro.net.message import Group
from repro.replication.spec import (
    ReplicaSpec,
    forward_state,
    validate_replica_spec,
)

__all__ = ["ReplicaGroup"]


class ReplicaGroup:
    """The replication state machine of one shard service."""

    def __init__(self, deployment: Any, service: str, rspec: ReplicaSpec):
        validate_replica_spec(rspec)
        self.deployment = deployment
        self.name = service
        self.rspec = rspec
        svc = deployment.service(service)
        if len(svc.server_pids) != rspec.replicas:
            raise ReproError(
                f"service {service!r} runs {len(svc.server_pids)} servers "
                f"but the ReplicaSpec names {rspec.replicas} replicas")
        #: The configured replica set (static; liveness is dynamic).
        self.members: List[int] = list(svc.server_pids)
        #: Replicas holding every acknowledged write (election domain).
        self.synced: Set[int] = set(self.members)
        #: Replicas currently suspected down.
        self.down: Set[int] = set()
        #: The elected primary (passive mode; None while failing over).
        self.primary: Optional[int] = (max(self.members)
                                       if rspec.passive else None)
        self._write_blocked = False
        self._gate: Any = None
        self._rr = 0
        self.metrics = deployment.metrics
        self._flight = getattr(deployment, "flight", None)
        m = self.metrics
        self._c_promotions = m.counter("repl.promotions")
        self._c_demotions = m.counter("repl.demotions")
        self._c_shrinks = m.counter("repl.shrinks")
        self._c_regrows = m.counter("repl.regrows")
        self._c_resyncs = m.counter("repl.resyncs")
        self._c_sync_calls = m.counter("repl.sync.calls")
        self._c_sync_failures = m.counter("repl.sync.failures")
        self._c_failover_retries = m.counter("repl.failover.retries")
        self._c_parked = m.counter("repl.parked_writes")
        self._c_reads = m.counter("repl.reads.routed")
        self._publish()

    # ------------------------------------------------------------------
    # Call-path interposition (driven by Deployment.call)
    # ------------------------------------------------------------------

    async def admit(self, op: str, bound: Group) -> Group:
        """The target group for one call, parking writes when the group
        is mid-promotion or mid-resync."""
        if self.rspec.is_read(op):
            return self._read_target(bound)
        while self._write_blocked or (self.rspec.passive
                                      and self.primary is None):
            self._c_parked.inc()
            await self._gate.wait()
        if self.rspec.passive:
            return Group(self.name, [self.primary])
        return bound

    async def complete(self, grpc: Any, op: str, args: Any,
                       result: CallResult, target: Group) -> CallResult:
        """Post-call step: passive backup sync and failover retry.

        ``target`` is the group the call was actually sent to (what
        :meth:`admit` returned).  A write that comes back OK from a
        primary that has *since been suspected* is unconfirmed: the
        acceptance protocol's membership semantics complete a call whose
        every destination failed without collecting a single reply, so
        the OK may cover a write that never executed.  Such writes are
        re-issued against the promoted primary before they are
        acknowledged — safe, because the state-forward surface (put /
        delete / ingest / drop_keys) is idempotent on state, and the
        dead primary's copy left the group with it.
        """
        if not self.rspec.passive or self.rspec.is_read(op):
            return result
        sent_to: Optional[int] = (target.members[0]
                                  if target.members else None)
        attempts = 0
        while (self.rspec.failover_retry
               and (not result.ok
                    or (sent_to is not None and sent_to in self.down))
               and attempts < len(self.members)):
            # The primary (probably) died under the call.  Wait out the
            # promotion, then re-issue against the new primary.  Only
            # unacknowledged or unconfirmed writes take this path, so
            # the re-execution is the ordinary at-least-once retry
            # story, not a duplicate of a confirmed acknowledgement.
            retry_against = await self._await_primary()
            if retry_against is None or retry_against == sent_to:
                break
            self._c_failover_retries.inc()
            if self._flight is not None:
                self._flight.note("repl-failover-retry",
                                  service=self.name, op=op,
                                  old=sent_to, primary=retry_against)
            result = await grpc.call(op, args,
                                     Group(self.name, [retry_against]))
            sent_to = retry_against
            attempts += 1
        if result.ok and not (sent_to is not None
                              and sent_to in self.down):
            await self._sync_backups(grpc, op, args)
        return result

    def _read_target(self, bound: Group) -> Group:
        if not self.rspec.reads_narrow:
            # An ordered composition (FIFO/total) gates every replica on
            # the client's full call sequence; a read served by one
            # replica alone would open a sequence gap at the others and
            # park all later writes.  Reads ride the full group instead.
            return bound
        if self.rspec.passive and self.rspec.read_from == "primary" \
                and self.primary is not None:
            return Group(self.name, [self.primary])
        eligible = [pid for pid in self.members
                    if pid in self.synced and pid not in self.down
                    and pid in bound.members]
        if not eligible:
            # Fall back to everyone in sync (a shrunk binding may lag
            # a promotion) or, failing that, the binding as bound.
            eligible = sorted(self.synced - self.down) or \
                list(bound.members)
        pid = eligible[self._rr % len(eligible)]
        self._rr += 1
        self._c_reads.inc()
        return Group(self.name, [pid])

    async def _await_primary(self) -> Optional[int]:
        while self._write_blocked or self.primary is None:
            if not (self.synced - self.down) and not self._write_blocked:
                return None      # nobody left to promote
            self._c_parked.inc()
            await self._gate.wait()
        return self.primary

    # ------------------------------------------------------------------
    # Passive state transfer
    # ------------------------------------------------------------------

    async def _sync_backups(self, grpc: Any, op: str, args: Any) -> None:
        """Ship the primary's state change to every in-sync backup
        before the write is acknowledged (single-member calls, so each
        backup's reply really is that backup's)."""
        translated = forward_state(op, args)
        if translated is None:
            return
        sync_op, sync_args = translated
        for pid in sorted(self.synced - self.down):
            if pid == self.primary:
                continue
            self._c_sync_calls.inc()
            result = await grpc.call(sync_op, sync_args,
                                     Group(self.name, [pid]))
            if not result.ok:
                # The backup will be (or already is) suspected; until it
                # resyncs it must not serve reads or stand for election.
                self._c_sync_failures.inc()
                self.synced.discard(pid)
                self._publish()

    # ------------------------------------------------------------------
    # Membership reactions (driven by the ReplicationManager)
    # ------------------------------------------------------------------

    def on_suspect(self, pid: int) -> None:
        if pid not in self.members or pid in self.down:
            return
        self.down.add(pid)
        self.synced.discard(pid)   # volatile state died with the crash
        self._c_shrinks.inc()
        if self._flight is not None:
            self._flight.note("repl-shrink", service=self.name, pid=pid,
                              live=len(self.members) - len(self.down))
        if self.rspec.passive and self.primary == pid:
            self.primary = None
            self._arm_gate()
            self._elect(reason="suspicion")
        self._publish()

    def on_recover(self, pid: int) -> None:
        if pid not in self.members or pid not in self.down:
            return
        self.down.discard(pid)
        self._c_regrows.inc()
        if self._flight is not None:
            self._flight.note("repl-regrow", service=self.name, pid=pid)
        if self.rspec.resync:
            self.deployment.runtime.spawn(
                self._resync(pid), name=f"resync-{self.name}-{pid}",
                daemon=True)
        else:
            self.synced.add(pid)
            self._reconsider()
        self._publish()

    def _elect(self, *, reason: str) -> None:
        """Deterministic promotion: largest-pid live in-sync replica."""
        eligible = sorted(self.synced - self.down)
        if not eligible:
            return                 # stay parked until someone recovers
        old, self.primary = self.primary, eligible[-1]
        self._c_promotions.inc()
        if self._flight is not None:
            self._flight.note("repl-promote", service=self.name,
                              primary=self.primary, reason=reason)
        self._release_gate()
        self._publish()

    def _reconsider(self) -> None:
        """Re-apply the election rule after the sync set grew: a
        rejoined larger pid deterministically takes the role back."""
        if not self.rspec.passive or self.primary is None:
            return
        challenger = max(self.synced - self.down, default=None)
        if challenger is not None and challenger != self.primary:
            demoted = self.primary
            self._c_demotions.inc()
            if self._flight is not None:
                self._flight.note("repl-demote", service=self.name,
                                  pid=demoted, successor=challenger)
            self.primary = challenger
            self._c_promotions.inc()
            if self._flight is not None:
                self._flight.note("repl-promote", service=self.name,
                                  primary=challenger, reason="rejoin")
            self._publish()

    # ------------------------------------------------------------------
    # Resync: state transfer to a recovered replica
    # ------------------------------------------------------------------

    async def _resync(self, pid: int) -> None:
        """Bring a recovered replica back in sync, writes parked.

        The park closes the window in which a write could land between
        the donor snapshot and the snapshot's ingest (the write would be
        silently shadowed by the older snapshot otherwise).
        """
        donor = max(self.synced - self.down, default=None)
        if donor is None:
            # Nobody holds a better copy; the replica rejoins with its
            # stable-store state (all *its* acknowledged writes).
            self.synced.add(pid)
            self._maybe_promote_sole(pid)
            return
        grpc = self._client_grpc()
        self._block_writes()
        try:
            snap = await grpc.call("snapshot", {},
                                   Group(self.name, [donor]))
            if not snap.ok:
                return             # donor died; the next recovery retries
            entries: Dict[str, Any] = dict(snap.args or {})
            have = await grpc.call("keys", {}, Group(self.name, [pid]))
            if not have.ok:
                return
            stale = [key for key in (have.args or [])
                     if key not in entries]
            if stale:
                result = await grpc.call("drop_keys", {"keys": stale},
                                         Group(self.name, [pid]))
                if not result.ok:
                    return
            if entries:
                result = await grpc.call("ingest", {"entries": entries},
                                         Group(self.name, [pid]))
                if not result.ok:
                    return
            self.synced.add(pid)
            self._c_resyncs.inc()
            if self._flight is not None:
                self._flight.note("repl-resync", service=self.name,
                                  pid=pid, donor=donor,
                                  entries=len(entries))
        finally:
            self._release_writes()
            self._reconsider()
            self._publish()

    def _maybe_promote_sole(self, pid: int) -> None:
        if self.rspec.passive and self.primary is None:
            self._arm_gate()
            self._elect(reason="sole-survivor")

    def _client_grpc(self) -> Any:
        svc = self.deployment.service(self.name)
        return svc.grpcs[svc.client_pids[0]]

    # ------------------------------------------------------------------
    # Write parking
    # ------------------------------------------------------------------

    def _arm_gate(self) -> None:
        if self._gate is None or self._gate.is_set():
            self._gate = self.deployment.runtime.event()

    def _block_writes(self) -> None:
        self._write_blocked = True
        self._arm_gate()

    def _release_writes(self) -> None:
        self._write_blocked = False
        if not (self.rspec.passive and self.primary is None):
            self._release_gate()

    def _release_gate(self) -> None:
        if self._gate is not None and not self._write_blocked:
            self._gate.set()

    # ------------------------------------------------------------------

    def live_members(self) -> List[int]:
        return [pid for pid in self.members if pid not in self.down]

    @property
    def is_dead(self) -> bool:
        return not self.live_members()

    def _publish(self) -> None:
        self.metrics.gauge(f"repl.group.{self.name}.synced").set(
            len(self.synced))
        self.metrics.gauge(f"repl.group.{self.name}.primary").set(
            self.primary if self.primary is not None else -1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ReplicaGroup {self.name!r} mode={self.rspec.mode} "
                f"members={self.members} primary={self.primary} "
                f"down={sorted(self.down)}>")
