"""Per-shard replication contracts: the :class:`ReplicaSpec`.

The paper's configurability story — pick acceptance, ordering and
execution discipline per service — stops at the edge of a single server
group.  A :class:`ReplicaSpec` carries that story into the deployment
plane: it bundles a replica count, a replication *mode*, and the
:class:`~repro.core.config.ServiceSpec` whose micro-protocols govern the
group's write path, so every shard of a deployment can choose its own
consistency/latency trade-off.

Two modes:

* **active** — every write fans out through the whole replica group via
  the ordinary group-RPC machinery; how many replicas must answer
  (acceptance) and in what order writes apply (ordering) come straight
  from the composed ``spec``.  Reads are served by any single replica.
* **passive** (primary-backup) — writes execute on one deterministic
  primary only; the resulting *state change* is transferred to the
  backups before the write is acknowledged, so a primary crash loses no
  acknowledged write.  The primary is elected from the membership
  stream (the paper's leader rule: largest live pid) and a backup is
  promoted on suspicion.

Validation composes the replication-mode rules with the Figure-4
dependency graph: :func:`validate_replica_spec` first runs the embedded
``ServiceSpec`` through :func:`repro.core.config.validate` (the same
strict checker :func:`repro.core.enumerate.enumerate_services` counts
with), then applies the mode edges listed by :func:`replication_edges`.
Illegal compositions fail at deployment *build* time with an error
naming the violated edge — never at the first write.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.core.config import ServiceSpec, validate
from repro.errors import ConfigurationError, DependencyError

__all__ = [
    "ReplicaSpec",
    "validate_replica_spec",
    "replication_edges",
    "active_replicas",
    "primary_backup",
    "KV_STATE_FORWARD",
]

MODES = ("active", "passive")
READ_FROM = ("any", "primary")

#: How a passive primary's successful write is turned into the state
#: update shipped to the backups: write op -> sync op.  The argument
#: translation lives in :func:`forward_state`; the default table covers
#: the KV migration surface every shard application already implements
#: (the backups *ingest the resulting state*, they never re-execute the
#: application procedure — that is what makes the mode passive).
KV_STATE_FORWARD: Dict[str, str] = {
    "put": "ingest",
    "delete": "drop_keys",
    "ingest": "ingest",
    "drop_keys": "drop_keys",
}


@dataclass(frozen=True)
class ReplicaSpec:
    """The replication contract of one shard service.

    ``spec`` is the micro-protocol composition of every replica's
    composite — the knob that makes a replica group's write semantics
    configurable per shard.  ``read_ops`` classifies operations for the
    read/write routing split; anything not listed is treated as a write.
    """

    replicas: int = 3
    mode: str = "active"
    spec: ServiceSpec = field(default_factory=lambda: ServiceSpec(
        reliable=True, unique=True, execution="serial",
        ordering="none", acceptance=1))
    #: Operations routed to a single replica instead of the write path.
    read_ops: FrozenSet[str] = frozenset({"get", "keys", "snapshot"})
    #: Where reads land: ``"any"`` round-robins over in-sync replicas
    #: (read scaling); ``"primary"`` pins reads to the passive primary.
    read_from: str = "any"
    #: Passive mode: transparently park and re-issue a write whose
    #: primary died mid-call once a backup has been promoted.
    failover_retry: bool = True
    #: Re-transfer state to a recovered replica before it serves reads
    #: or becomes electable again.
    resync: bool = True

    def with_(self, **changes: Any) -> "ReplicaSpec":
        return replace(self, **changes)

    @property
    def passive(self) -> bool:
        return self.mode == "passive"

    def is_read(self, op: str) -> bool:
        return op in self.read_ops

    @property
    def reads_narrow(self) -> bool:
        """Whether reads may be narrowed to a single replica.

        Ordered delivery (FIFO or total) sequences the *whole* per-client
        call stream: every replica gates on seeing call *n* before it
        will deliver call *n+1*.  A read served by one replica alone
        would consume a sequence number the other replicas never see, so
        their gates would park every later fan-out write forever.  Read
        narrowing — and with it read scaling — is therefore only sound
        when the composition imposes no inter-replica ordering.
        """
        return self.spec.ordering == "none"

    def service_spec(self) -> ServiceSpec:
        """The validated per-replica composition (build-time check)."""
        validate_replica_spec(self)
        return self.spec


def replication_edges() -> List[Tuple[str, str]]:
    """The mode dependency edges layered on Figure 4, in the same
    ``(dependent, prerequisite)`` shape as
    :func:`repro.core.enumerate.figure4_edges`."""
    return [
        ("Passive_Replication", "Acceptance(1)"),
        ("Passive_Replication", "Reliable_Communication"),
        ("Passive_Replication", "NOT Ordered_Delivery"),
        ("Active_Replication(n>1)", "Unique_Execution"),
    ]


def validate_replica_spec(rspec: ReplicaSpec) -> None:
    """Reject illegal replica-group compositions; no-op when legal.

    The embedded :class:`~repro.core.config.ServiceSpec` is checked
    against the full Figure-4 dependency graph first, then the
    replication-mode edges (:func:`replication_edges`) on top.
    """
    if rspec.replicas < 1:
        raise ConfigurationError(
            f"a replica group needs at least one replica, "
            f"got {rspec.replicas}")
    if rspec.mode not in MODES:
        raise ConfigurationError(
            f"unknown replication mode {rspec.mode!r}; "
            f"choose from {MODES}")
    if rspec.read_from not in READ_FROM:
        raise ConfigurationError(
            f"unknown read_from {rspec.read_from!r}; "
            f"choose from {READ_FROM}")
    validate(rspec.spec)        # the Figure-4 graph itself
    if rspec.mode == "passive":
        if rspec.spec.acceptance != 1:
            raise DependencyError(
                "Passive_Replication requires an acceptance limit of 1: "
                "a write executes on the primary alone, so there is only "
                "one server that can ever respond (Figure-4 extension "
                "edge Passive_Replication -> Acceptance(1))")
        if rspec.spec.ordering == "total":
            raise DependencyError(
                "Passive_Replication conflicts with Total_Order: the "
                "ordering leader rule and the primary election would "
                "name two different masters for the same group "
                "(Figure-4 extension edge Passive_Replication -> "
                "NOT Ordered_Delivery)")
        if rspec.spec.ordering == "fifo":
            raise DependencyError(
                "Passive_Replication conflicts with FIFO_Order: writes "
                "execute on the primary alone, so the backups would "
                "observe sequence gaps in the client's call stream and "
                "park forever waiting for calls they will never see; "
                "the primary's serial execution already orders writes "
                "(Figure-4 extension edge Passive_Replication -> "
                "NOT Ordered_Delivery)")
        if not rspec.spec.reliable:
            raise DependencyError(
                "Passive_Replication requires Reliable_Communication: "
                "a write racing a promotion is recovered by "
                "retransmission against the new primary")
    else:
        if rspec.replicas > 1 and not rspec.spec.unique:
            raise DependencyError(
                "Active_Replication with more than one replica requires "
                "Unique_Execution: retransmitted writes would otherwise "
                "apply a different number of times on different "
                "replicas, diverging the group")


def forward_state(op: str, args: Any,
                  table: Optional[Dict[str, str]] = None
                  ) -> Optional[Tuple[str, Any]]:
    """The backup state update for a primary's successful write.

    Returns ``(sync_op, sync_args)`` or ``None`` when the operation has
    no state to forward (unknown write ops fall back to ``None``; the
    group then relies on the next resync, and counts the gap).
    """
    table = table if table is not None else KV_STATE_FORWARD
    sync_op = table.get(op)
    if sync_op is None:
        return None
    if op == "put":
        return sync_op, {"entries": {args["key"]: args["value"]}}
    if op == "delete":
        return sync_op, {"keys": [args["key"]]}
    # ingest / drop_keys travel verbatim: they already *are* state form.
    return sync_op, dict(args)


def active_replicas(replicas: int = 3, *,
                    acceptance: int = 1, ordering: str = "none",
                    **overrides: Any) -> ReplicaSpec:
    """An active replica group with the classic knobs exposed.

    ``acceptance`` and ``ordering`` are the two axes the read-scaling
    benchmark sweeps: acceptance 1 acknowledges at the first replica,
    :data:`~repro.core.microprotocols.ALL` waits for the whole group;
    ordering ``"fifo"`` keeps per-client order, ``"total"`` makes the
    replicas a replicated state machine.  Ordered compositions sequence
    the whole call stream, so they serve reads through the full group
    (no read narrowing — see :attr:`ReplicaSpec.reads_narrow`); the
    ``"none"`` default is what read scaling is built on.
    """
    spec = ServiceSpec(reliable=True, unique=True, execution="serial",
                      ordering=ordering, acceptance=acceptance)
    rspec = ReplicaSpec(replicas=replicas, mode="active",
                        spec=spec).with_(**overrides)
    validate_replica_spec(rspec)
    return rspec


def primary_backup(replicas: int = 3, *, bounded: float = 2.0,
                   **overrides: Any) -> ReplicaSpec:
    """A passive (primary-backup) replica group.

    Bounded termination is on by default so a write against a crashed
    primary surfaces as a TIMEOUT the failover machinery can observe
    and retry, instead of hanging until suspicion.
    """
    spec = ServiceSpec(reliable=True, unique=True, execution="serial",
                      ordering="none", acceptance=1, bounded=bounded)
    rspec = ReplicaSpec(replicas=replicas, mode="passive",
                        spec=spec).with_(**overrides)
    validate_replica_spec(rspec)
    return rspec
