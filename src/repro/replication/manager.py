"""The deployment's replication directory and membership bridge.

One :class:`ReplicationManager` per deployment maps shard-service names
to their :class:`~repro.replication.group.ReplicaGroup` and feeds every
group the deployment-level membership stream (the same deduplicated
suspicion/recovery events the :class:`~repro.placement.driver.
RebindDriver` consumes), so promotions and resyncs happen whether or
not automatic rebinding is enabled.

Installing the manager is what switches the deployment's call path into
replication-aware routing: :meth:`~repro.core.deployment.Deployment.
call` consults ``deployment.replication`` on every call and defers
target selection to the service's replica group when one is registered.
Services without a registered group are untouched.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.replication.group import ReplicaGroup
from repro.replication.spec import ReplicaSpec

__all__ = ["ReplicationManager"]


class ReplicationManager:
    """Maps service names to replica groups; bridges membership."""

    def __init__(self, deployment: Any):
        if getattr(deployment, "replication", None) is not None:
            raise ReproError(
                "this deployment already has a ReplicationManager; "
                "use ReplicationManager.ensure()")
        self.deployment = deployment
        self.groups: Dict[str, ReplicaGroup] = {}
        deployment.replication = self
        #: View-delta subscription when the placement plane is live (one
        #: stream carries membership and epoch events); raw membership
        #: callbacks otherwise.
        self._views = getattr(deployment, "views", None)
        if self._views is not None:
            self._views.watch(self._on_delta)
        else:
            deployment.watch_membership(self._on_change)
        register = getattr(deployment, "register_driver", None)
        if register is not None:
            register(self)
        deployment.metrics.gauge("repl.groups").set(0)

    @classmethod
    def ensure(cls, deployment: Any) -> "ReplicationManager":
        """The deployment's manager, created on first use."""
        manager = getattr(deployment, "replication", None)
        return manager if manager is not None else cls(deployment)

    def close(self) -> None:
        """Detach from the membership stream and uninstall the manager."""
        if self._views is not None:
            self._views.unwatch(self._on_delta)
        else:
            self.deployment.unwatch_membership(self._on_change)
        if getattr(self.deployment, "replication", None) is self:
            self.deployment.replication = None
        unregister = getattr(self.deployment, "unregister_driver", None)
        if unregister is not None:
            unregister(self)

    # ------------------------------------------------------------------

    def _on_delta(self, delta: Any) -> None:
        if delta.kind != "member":
            return
        self._on_change(delta.pid, delta.alive)

    def replicate(self, service: str, rspec: ReplicaSpec) -> ReplicaGroup:
        """Register ``service`` (already deployed with ``rspec.replicas``
        servers) as a replica group."""
        if service in self.groups:
            raise ReproError(
                f"service {service!r} is already a replica group")
        group = ReplicaGroup(self.deployment, service, rspec)
        self.groups[service] = group
        self.deployment.metrics.gauge("repl.groups").set(len(self.groups))
        return group

    def group(self, service: str) -> Optional[ReplicaGroup]:
        return self.groups.get(service)

    def live_members(self, service: str) -> List[int]:
        """The service's currently-unsuspected replicas ([] when the
        service is not replicated)."""
        group = self.groups.get(service)
        return group.live_members() if group is not None else []

    def group_is_dead(self, service: str) -> bool:
        """True when every replica of a *registered* group is down."""
        group = self.groups.get(service)
        return group is not None and group.is_dead

    # ------------------------------------------------------------------

    def _on_change(self, pid: int, alive: bool) -> None:
        for group in self.groups.values():
            if pid not in group.members:
                continue
            if alive:
                group.on_recover(pid)
            else:
                group.on_suspect(pid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReplicationManager groups={sorted(self.groups)}>"
