"""Replicated shard groups: per-shard configurable consistency.

The paper shows how one group-RPC kit yields many RPC services by
composing micro-protocols; this package carries that configurability
into the deployment plane by turning each shard into a genuine replica
group whose consistency/latency trade-off is chosen *per shard*:

* :class:`~repro.replication.spec.ReplicaSpec` — replica count, mode
  (``active`` fan-out vs ``passive`` primary-backup) and the composed
  :class:`~repro.core.config.ServiceSpec` governing the write path,
  validated against the Figure-4 dependency graph plus the mode edges
  at deployment build time;
* :class:`~repro.replication.group.ReplicaGroup` — per-shard routing
  (reads to any in-sync replica, writes through the group or the
  primary), deterministic primary election from the membership stream,
  promotion on suspicion, synchronous backup state transfer, and
  resync of recovered replicas;
* :class:`~repro.replication.manager.ReplicationManager` — the
  deployment-wide directory the call path consults, fed by the same
  membership stream the :class:`~repro.placement.driver.RebindDriver`
  uses.

``docs/replication.md`` has the modes, the consistency matrix, and the
wiring through :func:`repro.apps.sharding.build_sharded_kv` and the
elastic placement plane.
"""

from repro.replication.group import ReplicaGroup
from repro.replication.manager import ReplicationManager
from repro.replication.spec import (
    ReplicaSpec,
    active_replicas,
    primary_backup,
    replication_edges,
    validate_replica_spec,
)

__all__ = [
    "ReplicaSpec",
    "ReplicaGroup",
    "ReplicationManager",
    "active_replicas",
    "primary_backup",
    "replication_edges",
    "validate_replica_spec",
]
