"""Deterministic cooperative simulation substrate.

The x-kernel platform the paper ran on is replaced by this package: a
virtual-time coroutine kernel (:mod:`repro.sim.kernel`), blocking
synchronization primitives matching the paper's ``P``/``V`` semaphores
(:mod:`repro.sim.sync`), and seeded random streams
(:mod:`repro.sim.rand`).
"""

from repro.sim.kernel import (
    Kernel,
    Task,
    Timer,
    checkpoint_yield,
    current_kernel,
    current_task,
    sleep,
    spawn,
)
from repro.sim.rand import RandomSource
from repro.sim.sync import Condition, Event, Lock, Queue, Semaphore

__all__ = [
    "Kernel",
    "Task",
    "Timer",
    "checkpoint_yield",
    "current_kernel",
    "current_task",
    "sleep",
    "spawn",
    "Condition",
    "Event",
    "Lock",
    "Queue",
    "Semaphore",
    "RandomSource",
]
