"""A deterministic cooperative simulation kernel.

This module implements a small curio-style coroutine kernel with a *virtual*
clock.  It is the substrate on which the reproduced group RPC system runs:
the paper assumes an asynchronous distributed system with threads that may
block on semaphores, and this kernel provides exactly that — ``async def``
tasks that can block on synchronization primitives — while keeping execution
fully deterministic and instantaneous (simulated time advances only when every
runnable task has yielded).

Design notes
------------

* Tasks are plain Python coroutines driven by :meth:`Kernel._step`.  They
  communicate with the kernel by ``await``-ing *traps* — small request
  objects yielded up through ``types.coroutine`` shims.  The awaitable
  helpers at the bottom of this module are themselves ``types.coroutine``
  generators (one frame per await, no intermediate ``async def`` shim),
  and the no-argument traps (yield, current-task) are module singletons,
  so the common suspension points allocate at most one small object.
* The ready queue is FIFO and timers break ties by insertion sequence, so a
  given program plus a given seed always produces the same schedule.  The
  network fabric layers randomness on top using seeded RNG streams.
* The timer heap stores plain ``(when, seq, Timer)`` tuples, so heap
  sifting compares tuples in C rather than calling a Python ``__lt__``;
  ``(when, seq)`` is unique, which keeps the pop order total and
  deterministic.  Cancelled timers are purged lazily: normally a dead
  entry is discarded when popped, but once dead entries outnumber half
  the heap (heartbeat-heavy runs cancel timers by the thousand) the heap
  is compacted in one pass, so it cannot grow unboundedly.
* A sleeping task parks *directly on its timer* (``Timer.task``): waking
  it is a field test in the timer loop instead of a per-sleep closure.
* Cancellation mirrors ``asyncio``: :meth:`Task.cancel` throws
  :class:`~repro.errors.TaskCancelled` into the coroutine at its suspension
  point.  Simulated node crashes and the Terminate Orphan micro-protocol are
  built on this.
* ``daemon`` tasks (heartbeat senders, retransmitters) do not keep the
  kernel alive and are cancelled silently when the main task finishes.
"""

from __future__ import annotations

import heapq
import types
from collections import deque
from typing import Any, Callable, Coroutine, Iterable, Optional

from repro.errors import KernelError, NoCurrentTask, TaskCancelled

__all__ = [
    "Kernel",
    "Task",
    "Timer",
    "current_kernel",
    "current_task",
    "spawn",
    "sleep",
    "suspend",
    "checkpoint_yield",
]


# The kernel currently executing tasks.  The simulation is single-threaded,
# so a module-level variable (rather than a contextvar) is sufficient and
# considerably faster.
_KERNEL: Optional["Kernel"] = None


def current_kernel() -> "Kernel":
    """Return the kernel currently running tasks.

    Raises :class:`~repro.errors.NoCurrentTask` when called outside of
    :meth:`Kernel.run`.
    """
    if _KERNEL is None:
        raise NoCurrentTask("no kernel is currently running")
    return _KERNEL


class _Trap:
    """Base class for requests a task makes to the kernel."""

    __slots__ = ()


class _SpawnTrap(_Trap):
    __slots__ = ("coro", "name", "daemon")

    def __init__(self, coro: Coroutine, name: str, daemon: bool):
        self.coro = coro
        self.name = name
        self.daemon = daemon


class _SleepTrap(_Trap):
    __slots__ = ("delay",)

    def __init__(self, delay: float):
        self.delay = delay


class _SuspendTrap(_Trap):
    """Park the current task until something reschedules it.

    ``park`` is called with the task so the waiter can be recorded in a
    wait structure; ``unpark`` must remove it again (used on cancellation).
    """

    __slots__ = ("park", "unpark")

    def __init__(self, park: Callable[["Task"], None],
                 unpark: Callable[["Task"], None]):
        self.park = park
        self.unpark = unpark


class _JoinTrap(_Trap):
    __slots__ = ("task",)

    def __init__(self, task: "Task"):
        self.task = task


class _CurrentTaskTrap(_Trap):
    __slots__ = ()


class _YieldTrap(_Trap):
    __slots__ = ()


#: Singleton no-payload traps: awaiting them must not allocate.
_YIELD_TRAP = _YieldTrap()
_CURRENT_TASK_TRAP = _CurrentTaskTrap()


# Task states.  Small ints compare faster than interned strings on the
# step hot path; ``state >= _DONE`` is the "finished" test.
_READY = 0
_RUNNING = 1
_WAITING = 2
_DONE = 3
_CANCELLED = 4

_STATE_NAMES = ("READY", "RUNNING", "WAITING", "DONE", "CANCELLED")


class Task:
    """A unit of cooperative execution managed by the kernel.

    Tasks are created through :func:`spawn` (from inside a task) or
    :meth:`Kernel.spawn` (from setup code).  A finished task exposes
    :attr:`result` or :attr:`exception`; other tasks can block on it with
    :meth:`join`.
    """

    __slots__ = ("id", "coro", "name", "daemon", "state", "result",
                 "exception", "cancelled", "_kernel", "_joiners",
                 "_unpark", "_sleep_timer", "_pending_exc", "tags")

    _next_id = 1

    def __init__(self, coro: Coroutine, name: str, daemon: bool,
                 kernel: "Kernel"):
        self.id = Task._next_id
        Task._next_id += 1
        self.coro = coro
        self.name = name or f"task-{self.id}"
        self.daemon = daemon
        self.state = _READY
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.cancelled = False
        self._kernel = kernel
        self._joiners: list[Task] = []
        # When parked on a _SuspendTrap, the unpark callback used to remove
        # the task from its wait structure if it gets cancelled first.
        self._unpark: Optional[Callable[["Task"], None]] = None
        # Timer associated with a sleep, so cancellation can void it.
        self._sleep_timer: Optional[Timer] = None
        # Exception to throw into the coroutine at the next step.
        self._pending_exc: Optional[BaseException] = None
        # Arbitrary annotations (e.g. owning node) set by higher layers.
        self.tags: dict[str, Any] = {}

    @property
    def done(self) -> bool:
        return self.state >= _DONE

    def cancel(self) -> bool:
        """Request cancellation of this task.

        Returns ``True`` if a cancellation was delivered (or is pending),
        ``False`` if the task had already finished.  Cancelling the
        currently-running task from within itself is disallowed; raise
        :class:`~repro.errors.TaskCancelled` directly instead.
        """
        return self._kernel._cancel_task(self)

    async def join(self) -> Any:
        """Wait for this task to finish and return its result.

        Re-raises the task's exception, including
        :class:`~repro.errors.TaskCancelled` if it was cancelled.
        """
        if self.state < _DONE:
            await _invoke(_JoinTrap(self))
        if self.exception is not None:
            raise self.exception
        if self.state == _CANCELLED:
            raise TaskCancelled(f"{self.name} was cancelled")
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.id} {self.name!r} {_STATE_NAMES[self.state]}>"


class Timer:
    """Handle for a scheduled timer; :meth:`cancel` voids it.

    Heap entries are ``(when, seq, timer)`` tuples owned by the kernel;
    the object itself is the user-facing handle.  A timer created for a
    plain sleep parks the sleeping task in :attr:`task` instead of
    carrying an action closure.  Cancelling a kernel-attached timer
    feeds the kernel's dead-entry count, which drives the lazy purge.
    """

    __slots__ = ("when", "seq", "action", "cancelled", "task", "_kernel")

    def __init__(self, when: float, seq: int,
                 action: Optional[Callable[[], None]]):
        self.when = when
        self.seq = seq
        self.action = action
        self.cancelled = False
        #: The task to wake (sleep timers), or None (action timers).
        self.task: Optional[Task] = None
        self._kernel: Optional["Kernel"] = None

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            kernel = self._kernel
            if kernel is not None:
                kernel._note_dead_timer()

    def __lt__(self, other: "Timer") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class Kernel:
    """Deterministic virtual-time scheduler for cooperative tasks.

    Typical use::

        kernel = Kernel()

        async def main():
            ...

        kernel.run(main())

    The clock starts at ``0.0`` and advances to the deadline of the next
    timer whenever the ready queue drains.  Within one instant, tasks run in
    FIFO order and each task runs until it blocks — there is no preemption,
    which is what makes experiments repeatable.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._ready: deque[tuple[Task, Any]] = deque()
        #: Timer heap of (when, seq, Timer) tuples; comparisons stay in C.
        self._timers: list[tuple[float, int, Timer]] = []
        self._timer_seq = 0
        #: Cancelled-but-not-popped entries still sitting in the heap.
        self._timers_dead = 0
        self._current: Optional[Task] = None
        self._tasks: dict[int, Task] = {}
        self._running = False
        #: Exceptions from tasks that finished with an error and were never
        #: joined.  ``run(..., strict=True)`` re-raises the first of these.
        self.failures: list[tuple[Task, BaseException]] = []
        # Scheduler counters for the observability layer (plain integer
        # increments on the hot paths; summarized by :meth:`stats`).
        self.tasks_spawned = 0
        self.steps_executed = 0
        self.timers_scheduled = 0
        self.timers_fired = 0
        self.timers_purged = 0
        #: Step-sampling hook (``hook(task)``), installed by the
        #: observatory's kernel profiler via ``SimRuntime.
        #: attach_profiler``; ``None`` costs one is-None test per step.
        self.profile_hook: Optional[Callable[[Task], None]] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def spawn(self, coro: Coroutine, *, name: str = "",
              daemon: bool = False) -> Task:
        """Create a task and place it on the ready queue.

        May be called from setup code (outside :meth:`run`) or from inside a
        running task; :func:`spawn` is the in-task convenience wrapper.
        """
        task = Task(coro, name, daemon, self)
        self._tasks[task.id] = task
        self._ready.append((task, None))
        self.tasks_spawned += 1
        return task

    def call_later(self, delay: float, action: Callable[[], None]) -> Timer:
        """Run ``action()`` (a plain function) after ``delay`` seconds.

        The action executes in kernel context; it may call :meth:`spawn`
        but must not block.  Returns a cancellable :class:`Timer`.
        """
        if delay < 0:
            raise KernelError(f"negative delay: {delay}")
        seq = self._timer_seq
        self._timer_seq = seq + 1
        timer = Timer(self._now + delay, seq, action)
        timer._kernel = self
        heapq.heappush(self._timers, (timer.when, seq, timer))
        self.timers_scheduled += 1
        return timer

    def call_at(self, when: float, action: Callable[[], None]) -> Timer:
        """Run ``action()`` at absolute virtual time ``when``."""
        return self.call_later(max(0.0, when - self._now), action)

    def run(self, coro: Optional[Coroutine] = None, *,
            strict: bool = True, shutdown: bool = True) -> Any:
        """Run the simulation.

        With ``coro``, a main task is spawned and the kernel runs until it
        finishes; its result is returned (its exception re-raised) and —
        unless ``shutdown=False`` — every other task is cancelled.
        ``shutdown=False`` leaves the rest of the system (server loops,
        timers) intact so further ``run`` calls can continue the same
        simulation.  Without ``coro``, the kernel runs until no task is
        runnable and no timer is pending (useful after seeding work with
        :meth:`spawn`).

        ``strict`` re-raises the first unjoined task failure once the run
        completes, so broken protocol code cannot fail silently.
        """
        main: Optional[Task] = None
        if coro is not None:
            main = self.spawn(coro, name="main")
        self._loop(main, None)
        if main is not None and shutdown:
            self._cancel_all(except_task=main)
            # The main task's outcome is reported directly, not through the
            # unjoined-failure channel.
            self.failures = [(t, e) for (t, e) in self.failures
                             if t is not main]
            if main.exception is not None:
                raise main.exception
            if main.state == _CANCELLED:
                raise TaskCancelled("main task was cancelled")
        self._raise_if_strict(strict)
        return main.result if main is not None else None

    def run_until_idle(self, *, strict: bool = True) -> None:
        """Run until no task is runnable and no timer is pending."""
        self._loop(None, None)
        self._raise_if_strict(strict)

    def run_until(self, deadline: float, *, strict: bool = True) -> None:
        """Run until virtual time reaches ``deadline`` (or the system idles).

        The clock is left at ``deadline`` if it was reached, so repeated
        calls advance time monotonically even when nothing is scheduled.
        """
        self._loop(None, deadline)
        if self._now < deadline:
            self._now = deadline
        self._raise_if_strict(strict)

    def run_for(self, duration: float, *, strict: bool = True) -> None:
        """Run for ``duration`` seconds of virtual time."""
        self.run_until(self._now + duration, strict=strict)

    def live_tasks(self) -> Iterable[Task]:
        """All tasks that have not finished."""
        return [t for t in self._tasks.values() if t.state < _DONE]

    def stats(self) -> dict:
        """Scheduler counters, as plain data for the obs exporters."""
        return {
            "now": self._now,
            "tasks_spawned": self.tasks_spawned,
            "tasks_live": len(self._tasks),
            "steps_executed": self.steps_executed,
            "timers_scheduled": self.timers_scheduled,
            "timers_fired": self.timers_fired,
            "timers_purged": self.timers_purged,
        }

    def shutdown(self) -> None:
        """Cancel every live task and run their cleanup to completion.

        Call at the end of an experiment that deliberately leaves work in
        flight (e.g. an overloaded open-loop run), so ``finally`` blocks
        execute under the kernel instead of at garbage collection.
        """
        self._cancel_all()
        self.failures.clear()

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------

    def _raise_if_strict(self, strict: bool) -> None:
        if strict and self.failures:
            task, exc = self.failures[0]
            raise KernelError(
                f"task {task.name!r} died with {exc!r}") from exc

    def _note_dead_timer(self) -> None:
        """Count a cancelled heap entry; compact once they dominate.

        The purge predicate is pure bookkeeping (counts, no clock, no
        randomness), so compaction points are deterministic; and because
        ``(when, seq)`` is unique, re-heapifying the survivors cannot
        change the pop order.
        """
        self._timers_dead += 1
        if self._timers_dead > 16 and \
                self._timers_dead * 2 >= len(self._timers):
            self._timers = [entry for entry in self._timers
                            if not entry[2].cancelled]
            heapq.heapify(self._timers)
            self.timers_purged += self._timers_dead
            self._timers_dead = 0

    def _loop(self, main: Optional[Task],
              deadline: Optional[float]) -> None:
        """Drive the simulation until ``main`` finishes (when given), the
        ``deadline`` is reached (when given), or the system idles.

        The ready queue is drained in one tight inner loop per instant —
        a run of ready tasks executes back to back without re-entering
        the timer bookkeeping — and the stop condition is an inline field
        test rather than a callback.
        """
        if self._running:
            raise KernelError("kernel is already running (nested run)")
        global _KERNEL
        self._running = True
        prev = _KERNEL
        _KERNEL = self
        ready = self._ready
        popleft = ready.popleft
        step = self._step
        try:
            while True:
                # Batched drain: every task runnable at this instant.
                while ready:
                    if main is not None and main.state >= _DONE:
                        return
                    task, value = popleft()
                    if task.state >= _DONE:
                        continue
                    step(task, value)
                if main is not None and main.state >= _DONE:
                    return
                # Ready queue drained: advance the clock to the next timer.
                timer = self._pop_timer()
                if timer is None:
                    return
                if deadline is not None and timer.when > deadline:
                    # Put it back; it fires on a later run_until call.
                    heapq.heappush(self._timers,
                                   (timer.when, timer.seq, timer))
                    self._now = deadline
                    return
                if timer.when > self._now:
                    self._now = timer.when
                self.timers_fired += 1
                sleeper = timer.task
                if sleeper is not None:
                    # Direct task wake-up: the sleep fast path.
                    timer.task = None
                    sleeper._sleep_timer = None
                    if sleeper.state < _DONE:
                        sleeper.state = _READY
                        sleeper._unpark = None
                        ready.append((sleeper, None))
                else:
                    timer.action()
        finally:
            self._running = False
            _KERNEL = prev

    def _pop_timer(self) -> Optional[Timer]:
        timers = self._timers
        while timers:
            timer = heapq.heappop(timers)[2]
            if not timer.cancelled:
                return timer
            self._timers_dead -= 1
        return None

    def _reschedule(self, task: Task, value: Any = None) -> None:
        """Make a parked task runnable again with ``value`` as the await
        result."""
        if task.state >= _DONE:
            return
        task.state = _READY
        task._unpark = None
        self._ready.append((task, value))

    def _step(self, task: Task, value: Any) -> None:
        """Run one task until it blocks, yields, or finishes."""
        self._current = task
        task.state = _RUNNING
        self.steps_executed += 1
        if self.profile_hook is not None:
            self.profile_hook(task)
        coro = task.coro
        send = coro.send
        try:
            while True:
                try:
                    if task._pending_exc is not None:
                        exc = task._pending_exc
                        task._pending_exc = None
                        trap = coro.throw(exc)
                    else:
                        trap = send(value)
                except StopIteration as stop:
                    self._finish(task, result=stop.value)
                    return
                except TaskCancelled:
                    task.state = _CANCELLED
                    self._finish(task, cancelled=True)
                    return
                except BaseException as exc:  # noqa: BLE001 - task crash
                    task.exception = exc
                    self._finish(task, failed=True)
                    return

                # Immediate traps keep the task running without a yield;
                # blocking traps park it and return to the loop.  Ordered
                # by observed frequency: suspends (sync primitives) and
                # sleeps dominate protocol workloads.
                cls = trap.__class__
                if cls is _SuspendTrap:
                    task.state = _WAITING
                    task._unpark = trap.unpark
                    trap.park(task)
                    return
                elif cls is _SleepTrap:
                    delay = trap.delay
                    if delay < 0:
                        raise KernelError(f"negative delay: {delay}")
                    # Inlined call_later with the task parked directly on
                    # the timer — no closure, no bound-method hop.
                    task.state = _WAITING
                    seq = self._timer_seq
                    self._timer_seq = seq + 1
                    timer = Timer(self._now + delay, seq, None)
                    timer.task = task
                    timer._kernel = self
                    heapq.heappush(self._timers,
                                   (timer.when, seq, timer))
                    self.timers_scheduled += 1
                    task._sleep_timer = timer
                    return
                elif cls is _YieldTrap:
                    task.state = _READY
                    self._ready.append((task, None))
                    return
                elif cls is _SpawnTrap:
                    value = self.spawn(trap.coro, name=trap.name,
                                       daemon=trap.daemon)
                elif cls is _CurrentTaskTrap:
                    value = task
                elif cls is _JoinTrap:
                    target = trap.task
                    if target.state >= _DONE:
                        value = None
                    else:
                        task.state = _WAITING
                        target._joiners.append(task)
                        task._unpark = target._joiners.remove
                        return
                else:
                    raise KernelError(f"unknown trap {trap!r} from "
                                      f"{task.name}")
        finally:
            self._current = None

    def _wake_sleeper(self, task: Task) -> None:
        task._sleep_timer = None
        self._reschedule(task)

    def _finish(self, task: Task, result: Any = None, failed: bool = False,
                cancelled: bool = False) -> None:
        task.result = result
        if cancelled:
            task.state = _CANCELLED
            task.cancelled = True
        else:
            task.state = _DONE
        del self._tasks[task.id]
        joiners, task._joiners = task._joiners, []
        for joiner in joiners:
            self._reschedule(joiner)
        if failed and not joiners and not task.daemon:
            self.failures.append((task, task.exception))

    def _cancel_task(self, task: Task) -> bool:
        if task.state >= _DONE:
            return False
        if task is self._current:
            raise KernelError("a task cannot cancel() itself; raise "
                              "TaskCancelled instead")
        task.cancelled = True
        exc = TaskCancelled(f"{task.name} cancelled")
        if task.state == _WAITING:
            if task._unpark is not None:
                task._unpark(task)
                task._unpark = None
            if task._sleep_timer is not None:
                task._sleep_timer.task = None
                task._sleep_timer.cancel()
                task._sleep_timer = None
            task.state = _READY
            task._pending_exc = exc
            self._ready.append((task, None))
        else:
            # READY (queued) — deliver the exception when it next runs.
            task._pending_exc = exc
        return True

    def _cancel_all(self, except_task: Optional[Task] = None) -> None:
        for task in list(self._tasks.values()):
            if task is except_task or task.state >= _DONE:
                continue
            task.cancel()
        # Drain so cancellations actually execute their cleanup code.
        self._loop(None, self._now)


# ----------------------------------------------------------------------
# Awaitable convenience functions (usable from inside tasks)
# ----------------------------------------------------------------------
#
# Each is a ``types.coroutine`` generator rather than an ``async def``
# wrapper around a shim: awaiting one runs a single generator frame, so
# the kernel's trap round-trip costs one ``send`` per suspension.

@types.coroutine
def _invoke(trap: _Trap):
    """Yield a trap to the kernel and return its response."""
    return (yield trap)


@types.coroutine
def spawn(coro: Coroutine, *, name: str = "", daemon: bool = False):
    """Spawn a child task from inside a running task; returns the
    :class:`Task`."""
    return (yield _SpawnTrap(coro, name, daemon))


@types.coroutine
def sleep(delay: float):
    """Suspend the current task for ``delay`` seconds of virtual time."""
    yield _SleepTrap(delay)


@types.coroutine
def current_task():
    """Return the currently running :class:`Task`."""
    return (yield _CURRENT_TASK_TRAP)


@types.coroutine
def checkpoint_yield():
    """Yield to the scheduler, letting other ready tasks run first."""
    yield _YIELD_TRAP


@types.coroutine
def suspend(park: Callable[[Task], None],
            unpark: Callable[[Task], None]):
    """Park the current task; used by the synchronization primitives.

    ``park(task)`` records the task in a wait structure and ``unpark(task)``
    removes it (called if the task is cancelled while parked).  The task
    resumes when :meth:`Kernel._reschedule` is called on it, returning the
    value passed to ``_reschedule``.
    """
    return (yield _SuspendTrap(park, unpark))
