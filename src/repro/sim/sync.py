"""Synchronization primitives for the simulation kernel.

The paper's micro-protocols are written against classic counting semaphores
(``P``/``V``) plus mutexes guarding the shared ``pRPC``/``sRPC`` tables.
These primitives provide the same blocking semantics on top of
:mod:`repro.sim.kernel`, with two properties that matter for faithfulness:

* **Uncontended acquires do not yield.**  A trigger chain that takes and
  releases a free mutex runs atomically with respect to other tasks, which
  matches the sequential-and-blocking event dispatch described in Section 3
  of the paper and keeps schedules deterministic.
* **Releases never preempt.**  ``V`` makes a waiter runnable but the caller
  keeps running, so (for example) the Collation micro-protocol still gets to
  fold in the final reply after Acceptance has released the client's
  semaphore but before the client thread resumes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import KernelError
from repro.sim.kernel import Task, current_kernel, suspend

__all__ = ["Semaphore", "Lock", "Event", "Condition", "Queue"]


class Semaphore:
    """A counting semaphore with FIFO wakeup order.

    ``acquire`` is the paper's ``P`` operation and ``release`` is ``V``.
    The starting ``value`` may be zero, which is how per-call completion
    semaphores are created (the client blocks until Acceptance or Bounded
    Termination releases it).
    """

    def __init__(self, value: int = 1):
        if value < 0:
            raise ValueError(f"semaphore value must be >= 0, got {value}")
        self._value = value
        self._waiters: Deque[Task] = deque()

    @property
    def value(self) -> int:
        """Current counter value (0 while any task is blocked)."""
        return self._value

    def locked(self) -> bool:
        """True if an ``acquire`` would block right now."""
        return self._value == 0

    async def acquire(self) -> None:
        """P: decrement the counter, blocking while it is zero."""
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return
        await suspend(self._waiters.append, self._waiters.remove)

    def release(self) -> None:
        """V: increment the counter, waking the longest waiter if any.

        This is a plain function (not async) because releases never block;
        the paper's handlers call ``V`` freely from any context.
        """
        if self._waiters:
            task = self._waiters.popleft()
            current_kernel()._reschedule(task)
        else:
            self._value += 1

    def reset(self, value: int) -> None:
        """Forcibly set the counter, waking waiters while value allows.

        Used by recovery code (the paper's Atomic Execution handler does
        ``sRPC_mutex = 0``) to reinitialize semaphores after a crash.
        """
        if value < 0:
            raise ValueError(f"semaphore value must be >= 0, got {value}")
        self._value = value
        while self._value > 0 and self._waiters:
            self._value -= 1
            task = self._waiters.popleft()
            current_kernel()._reschedule(task)

    async def __aenter__(self) -> "Semaphore":
        await self.acquire()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        self.release()


class Lock(Semaphore):
    """A mutex: a binary semaphore initialized to 1."""

    def __init__(self) -> None:
        super().__init__(1)

    def release(self) -> None:
        if self._value >= 1 and not self._waiters:
            raise KernelError("Lock.release() called on an unlocked lock")
        super().release()


class Event:
    """A one-shot level-triggered event (like ``threading.Event``).

    ``kernel`` optionally binds the event to its owning kernel, which
    lets :meth:`set` be called *between* kernel runs (membership-driven
    reconfiguration — a crash notification promoting a replica, say —
    happens outside any task); parked waiters are moved to the ready
    queue and resume at the next run.  Unbound events fall back to the
    currently running kernel, as before.
    """

    def __init__(self, kernel: Optional[Any] = None) -> None:
        self._set = False
        self._kernel = kernel
        self._waiters: Deque[Task] = deque()

    def is_set(self) -> bool:
        return self._set

    def set(self) -> None:
        """Set the flag and wake every waiter."""
        if self._set:
            return
        self._set = True
        if not self._waiters:
            return
        kernel = self._kernel if self._kernel is not None \
            else current_kernel()
        while self._waiters:
            kernel._reschedule(self._waiters.popleft())

    def clear(self) -> None:
        self._set = False

    async def wait(self) -> None:
        """Block until the flag is set (returns immediately if already)."""
        if self._set:
            return
        await suspend(self._waiters.append, self._waiters.remove)


class Condition:
    """A condition variable bound to a :class:`Lock`.

    Mirrors ``threading.Condition``: ``wait`` atomically releases the lock
    and re-acquires it before returning; ``notify`` wakes waiters.
    """

    def __init__(self, lock: Optional[Lock] = None):
        self._lock = lock or Lock()
        self._waiters: Deque[Task] = deque()

    @property
    def lock(self) -> Lock:
        return self._lock

    async def acquire(self) -> None:
        await self._lock.acquire()

    def release(self) -> None:
        self._lock.release()

    async def wait(self) -> None:
        if not self._lock.locked():
            raise KernelError("Condition.wait() without holding the lock")
        self._lock.release()
        try:
            await suspend(self._waiters.append, self._waiters.remove)
        finally:
            await self._lock.acquire()

    def notify(self, n: int = 1) -> None:
        kernel = current_kernel()
        for _ in range(min(n, len(self._waiters))):
            kernel._reschedule(self._waiters.popleft())

    def notify_all(self) -> None:
        self.notify(len(self._waiters))

    async def __aenter__(self) -> "Condition":
        await self.acquire()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        self.release()


class Queue:
    """An unbounded FIFO queue with blocking ``get``.

    Used to hand messages from the network fabric to per-node receiver
    tasks and as the mailbox behind the asynchronous-call example.
    """

    def __init__(self) -> None:
        self._items: Deque[Any] = deque()
        self._getters: Deque[Task] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def empty(self) -> bool:
        return not self._items

    def put(self, item: Any) -> None:
        """Enqueue ``item``; never blocks."""
        if self._getters:
            task = self._getters.popleft()
            current_kernel()._reschedule(task, item)
        else:
            self._items.append(item)

    async def get(self) -> Any:
        """Dequeue the oldest item, blocking while the queue is empty."""
        if self._items:
            return self._items.popleft()
        return await suspend(self._getters.append, self._getters.remove)

    def get_nowait(self) -> Any:
        """Dequeue without blocking; raises ``IndexError`` when empty."""
        return self._items.popleft()

    def clear(self) -> None:
        """Drop all queued items (crash cleanup)."""
        self._items.clear()
