"""Seeded, named random streams for reproducible experiments.

Every source of randomness in the simulator (per-link delays, loss,
duplication, workload think times) draws from its own named stream derived
from a single experiment seed.  Adding a new consumer of randomness therefore
does not perturb the draws seen by existing consumers, which keeps recorded
experiment results stable as the library evolves.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict

__all__ = ["RandomSource"]


class RandomSource:
    """A factory of independent named :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The stream's seed mixes the experiment seed with a CRC of the name,
        so distinct names give de-correlated streams and the same name
        always gives the same sequence for a given experiment seed.
        """
        rng = self._streams.get(name)
        if rng is None:
            mixed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) \
                & 0xFFFFFFFFFFFFFFFF
            rng = random.Random(mixed)
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomSource":
        """Derive a child source (e.g. one per node) from this one."""
        mixed = (self.seed * 0x85EBCA77 + zlib.crc32(name.encode())) \
            & 0xFFFFFFFFFFFFFFFF
        return RandomSource(mixed)
