"""The unreliable transport protocol at the bottom of every stack.

This is the paper's "unreliable communication" composite/simple protocol:
it provides "the transport service needed to deliver messages between gRPC
on the client and server sites" with no reliability guarantees of its own —
making messages arrive despite omission failures is exactly the job of the
Reliable Communication micro-protocol above it.

``push`` accepts a :class:`~repro.net.message.ProcessId`, a
:class:`~repro.net.message.Group`, or any iterable of process ids as the
destination, covering the paper's ``Net.push(p, msg)`` and
``Net.push(msg.server, msg)`` uses uniformly.

Outbound messages are handed to the fabric's
:class:`~repro.net.wire.WirePipeline` — the single send path shared by
every protocol stack — so link-level coalescing, backpressure and the
control fast lane apply uniformly no matter which composite is sending.
Inbound, the transport unbatches :class:`~repro.net.wire.WireBatch`
envelopes back into individual payloads, each dispatched up the demux
stack in its own task; everything above this layer is batching-agnostic.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.net.fabric import NetworkFabric
from repro.net.message import Envelope, Group, ProcessId
from repro.net.node import Node
from repro.net.wire import WireBatch
from repro.xkernel.upi import Protocol

__all__ = ["UnreliableTransport"]

Destination = Union[ProcessId, Group, Iterable[ProcessId]]


class UnreliableTransport(Protocol):
    """x-kernel leaf protocol binding a node's stack to the fabric."""

    def __init__(self, node: Node):
        super().__init__(f"transport@{node.pid}")
        self.node = node
        self.fabric: NetworkFabric = node.fabric
        node.transport = self

    async def push(self, dest: Destination, payload: object) -> None:
        """Send ``payload`` toward ``dest`` via the wire pipeline.

        May be lost; may block briefly when the pipeline's per-link
        in-flight budget is exhausted (backpressure), never otherwise.
        """
        if not self.node.up:
            # A crashed site cannot transmit; tasks are normally cancelled
            # before reaching here, but timer callbacks may race the crash.
            return
        pipeline = self.fabric.pipeline
        if isinstance(dest, (Group, list, tuple, set, frozenset)):
            await pipeline.multicast(self.node.pid, dest, payload)
        else:
            await pipeline.send(self.node.pid, dest, payload)

    async def handle_arrival(self, envelope: Envelope) -> None:
        """Deliver one arrived envelope up the stack (its own task).

        A coalesced envelope fans out into one task per inner message,
        preserving arrival order at the same instant while keeping the
        per-message execution model: one blocked handler chain must not
        stall the rest of the batch.
        """
        payload = envelope.payload
        if isinstance(payload, WireBatch):
            for i, msg in enumerate(payload):
                self.node.scope.spawn(
                    self.pop(msg, sender=envelope.src),
                    name=f"{self.node.name}-msg-{envelope.seq}.{i}",
                    daemon=True)
            return
        await self.pop(payload, sender=envelope.src)
