"""The unreliable transport protocol at the bottom of every stack.

This is the paper's "unreliable communication" composite/simple protocol:
it provides "the transport service needed to deliver messages between gRPC
on the client and server sites" with no reliability guarantees of its own —
making messages arrive despite omission failures is exactly the job of the
Reliable Communication micro-protocol above it.

``push`` accepts a :class:`~repro.net.message.ProcessId`, a
:class:`~repro.net.message.Group`, or any iterable of process ids as the
destination, covering the paper's ``Net.push(p, msg)`` and
``Net.push(msg.server, msg)`` uses uniformly.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.net.fabric import NetworkFabric
from repro.net.message import Envelope, Group, ProcessId
from repro.net.node import Node
from repro.xkernel.upi import Protocol

__all__ = ["UnreliableTransport"]

Destination = Union[ProcessId, Group, Iterable[ProcessId]]


class UnreliableTransport(Protocol):
    """x-kernel leaf protocol binding a node's stack to the fabric."""

    def __init__(self, node: Node):
        super().__init__(f"transport@{node.pid}")
        self.node = node
        self.fabric: NetworkFabric = node.fabric
        node.transport = self

    async def push(self, dest: Destination, payload: object) -> None:
        """Send ``payload`` toward ``dest``; never blocks, may be lost."""
        if not self.node.up:
            # A crashed site cannot transmit; tasks are normally cancelled
            # before reaching here, but timer callbacks may race the crash.
            return
        if isinstance(dest, (Group, list, tuple, set, frozenset)):
            self.fabric.multicast(self.node.pid, dest, payload)
        else:
            self.fabric.send(self.node.pid, dest, payload)

    async def handle_arrival(self, envelope: Envelope) -> None:
        """Deliver one arrived envelope up the stack (its own task)."""
        await self.pop(envelope.payload, sender=envelope.src)
