"""The simulated unreliable network.

Implements the failure model the paper assumes: "an asynchronous
distributed system, where the underlying communication system can
experience both omission and performance failures".  Concretely:

* **omission failures** — each link drops a message with probability
  ``loss`` and may duplicate with probability ``duplicate``;
* **performance failures** — base latency plus uniform jitter, with
  occasional delay spikes (probability ``spike_prob``, extra delay
  ``spike_delay``), and reordering as a natural consequence of independent
  per-message delays;
* **partitions** — directional blocks installed between process sets;
* **crash failures** — delivery to a down node is dropped (handled with
  the :class:`~repro.net.node.Node` lifecycle).

All randomness is drawn from named streams of a
:class:`~repro.sim.rand.RandomSource`, one stream per directed link, so
experiments are exactly reproducible and adding nodes does not perturb
existing links' draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.net.message import Envelope, Group, ProcessId
from repro.net.node import Node
from repro.net.trace import NetTrace
from repro.net.wire import WireBatch, WireConfig, WirePipeline
from repro.obs.metrics import MetricsRegistry
from repro.runtime.base import Runtime
from repro.sim.rand import RandomSource

__all__ = ["LinkSpec", "NetworkFabric"]


@dataclass(frozen=True)
class LinkSpec:
    """Failure/latency parameters for one directed link.

    ``delay`` is the base one-way latency; each message adds uniform
    jitter in ``[0, jitter]``.  ``loss`` and ``duplicate`` are per-message
    probabilities.  ``spike_prob``/``spike_delay`` model performance
    failures (a late message rather than a lost one).
    """

    delay: float = 0.010
    jitter: float = 0.005
    loss: float = 0.0
    duplicate: float = 0.0
    spike_prob: float = 0.0
    spike_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.delay < 0 or self.jitter < 0 or self.spike_delay < 0:
            raise ValueError("delays must be non-negative")
        for p in (self.loss, self.duplicate, self.spike_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability out of range: {p}")


#: A message filter: returns False to drop the envelope (fault injection).
MessageFilter = Callable[[Envelope], bool]


class NetworkFabric:
    """Connects :class:`~repro.net.node.Node` objects with lossy links."""

    def __init__(self, runtime: Runtime, *,
                 rand: Optional[RandomSource] = None,
                 default_link: LinkSpec = LinkSpec(),
                 trace: Optional[NetTrace] = None,
                 metrics: Optional["MetricsRegistry"] = None,
                 wire: Optional[WireConfig] = None):
        self.runtime = runtime
        self.rand = rand or RandomSource(0)
        self.default_link = default_link
        self.trace = trace or NetTrace(metrics=metrics)
        #: The one outbound path: every sender reaches :meth:`send`
        #: through this pipeline (coalescing, backpressure, fast lane).
        self.pipeline = WirePipeline(self, wire)
        self.nodes: Dict[ProcessId, Node] = {}
        self._links: Dict[Tuple[ProcessId, ProcessId], LinkSpec] = {}
        self._blocked: Set[Tuple[ProcessId, ProcessId]] = set()
        self._filters: List[MessageFilter] = []
        # Per-link hot cache: (src, dst) -> (LinkSpec, rng stream).  The
        # stream name f-string and registry lookups are paid once per
        # link instead of once per send; invalidated by set_link.
        self._hot_links: Dict[Tuple[ProcessId, ProcessId], tuple] = {}
        self._envelopes_counter = self.trace.metrics.counter(
            "net.envelopes")
        #: Observers told when a node crashes/recovers; the oracle
        #: membership detector subscribes here.
        self._membership_watchers: List[Callable[[ProcessId, bool], None]] = []

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node.pid in self.nodes:
            raise ReproError(f"duplicate process id {node.pid}")
        self.nodes[node.pid] = node

    def node(self, pid: ProcessId) -> Node:
        return self.nodes[pid]

    def set_link(self, src: ProcessId, dst: ProcessId,
                 spec: LinkSpec) -> None:
        """Override the parameters of the ``src -> dst`` link."""
        self._links[(src, dst)] = spec
        self._hot_links.pop((src, dst), None)

    def set_links_to(self, dst: ProcessId, spec: LinkSpec) -> None:
        """Override every link toward ``dst`` (model a slow/lossy site)."""
        for pid in self.nodes:
            if pid != dst:
                self._links[(pid, dst)] = spec
                self._hot_links.pop((pid, dst), None)

    def link(self, src: ProcessId, dst: ProcessId) -> LinkSpec:
        return self._links.get((src, dst), self.default_link)

    def partition(self, side_a: Iterable[ProcessId],
                  side_b: Iterable[ProcessId]) -> None:
        """Block traffic in both directions between the two sets."""
        for a in side_a:
            for b in side_b:
                self._blocked.add((a, b))
                self._blocked.add((b, a))

    def heal(self, side_a: Optional[Iterable[ProcessId]] = None,
             side_b: Optional[Iterable[ProcessId]] = None) -> None:
        """Remove partitions — all of them when called with no arguments."""
        if side_a is None or side_b is None:
            self._blocked.clear()
            return
        for a in side_a:
            for b in side_b:
                self._blocked.discard((a, b))
                self._blocked.discard((b, a))

    def add_filter(self, fltr: MessageFilter) -> Callable[[], None]:
        """Install a scripted drop filter; returns a remover callback."""
        self._filters.append(fltr)
        return lambda: self._filters.remove(fltr)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: object, *,
             resolve: Optional[Callable[[], None]] = None) -> None:
        """Queue ``payload`` for delivery over the ``src -> dst`` link.

        This is the single internal primitive the wire pipeline owns:
        protocol stacks go through ``fabric.pipeline`` (which stages,
        coalesces and budgets) and the pipeline lands here.  Never
        blocks; the envelope is subjected to the link's loss, duplication
        and delay models and delivered (or not) later.

        A :class:`~repro.net.wire.WireBatch` payload travels (and is
        lost, duplicated or delayed) as one envelope, but every ``net.*``
        trace record accounts per *inner* message — dropping a batch of
        five is five losses.  Scripted fault filters are likewise probed
        once per inner message, so :mod:`repro.faults` applies uniformly
        whether or not batching is on; surviving messages continue in a
        rebuilt batch.  ``resolve`` is called exactly once when the
        envelope's fate is decided (the pipeline's budget return).
        """
        now = self.runtime.now()
        envelope = Envelope(src, dst, payload, now, on_resolved=resolve)
        batched = isinstance(payload, WireBatch)
        inner: List[object] = list(payload) if batched else [payload]
        self._envelopes_counter.inc()
        trace_record = self.trace.record
        for msg in inner:
            trace_record(now, "send", src, dst, detail=msg)
        if self._filters:
            survivors = []
            for msg in inner:
                probe = envelope if not batched else \
                    Envelope(src, dst, msg, now, seq=envelope.seq)
                if all(fltr(probe) for fltr in list(self._filters)):
                    survivors.append(msg)
                else:
                    self.trace.record(now, "drop-filter", src, dst,
                                      detail=msg)
            if not survivors:
                envelope.resolve()
                return
            if len(survivors) != len(inner):
                inner = survivors
                payload = survivors[0] if len(survivors) == 1 \
                    else WireBatch(survivors)
                envelope = Envelope(src, dst, payload, now,
                                    seq=envelope.seq, on_resolved=resolve)
        if (src, dst) in self._blocked:
            for msg in inner:
                self.trace.record(now, "drop-partition", src, dst,
                                  detail=msg)
            envelope.resolve()
            return
        key = (src, dst)
        hot = self._hot_links.get(key)
        if hot is None:
            hot = (self._links.get(key, self.default_link),
                   self.rand.stream(f"link-{src}-{dst}"))
            self._hot_links[key] = hot
        spec, rng = hot
        if spec.loss and rng.random() < spec.loss:
            for msg in inner:
                self.trace.record(now, "drop-loss", src, dst, detail=msg)
            envelope.resolve()
            return
        copies = 1
        if spec.duplicate and rng.random() < spec.duplicate:
            copies = 2
            for msg in inner:
                self.trace.record(now, "duplicate", src, dst, detail=msg)
        for copy in range(copies):
            delay = spec.delay + rng.uniform(0.0, spec.jitter)
            if spec.spike_prob and rng.random() < spec.spike_prob:
                delay += spec.spike_delay
            copy_env = Envelope(src, dst, payload, now, copy=copy,
                                on_resolved=resolve)
            self.runtime.call_later(
                delay, lambda env=copy_env: self._deliver(env))

    def multicast(self, src: ProcessId, group: Group | Iterable[ProcessId],
                  payload: object) -> None:
        """Send ``payload`` to every group member over independent links.

        The paper permits group RPC "using either multicast or
        point-to-point communication"; the fabric models multicast as
        point-to-point fan-out with independent per-link failures, which is
        the weaker (and therefore safe) assumption.
        """
        for member in group:
            self.send(src, member, payload)

    def _deliver(self, envelope: Envelope) -> None:
        node = self.nodes.get(envelope.dst)
        now = self.runtime.now()
        payload = envelope.payload
        inner: List[object] = list(payload) \
            if isinstance(payload, WireBatch) else [payload]
        if node is None or not node.up:
            for msg in inner:
                self.trace.record(now, "drop-dead", envelope.src,
                                  envelope.dst, detail=msg)
            envelope.resolve()
            return
        for msg in inner:
            self.trace.record(now, "deliver", envelope.src, envelope.dst,
                              detail=msg)
        envelope.resolve()
        if self.pipeline.link_metrics:
            self.pipeline.on_delivered(envelope.src, envelope.dst,
                                       len(inner),
                                       now - envelope.send_time)
        node.deliver(envelope)

    # ------------------------------------------------------------------
    # Membership plumbing
    # ------------------------------------------------------------------

    def watch_membership(self, watcher: Callable[[ProcessId, bool], None]
                         ) -> None:
        """Subscribe to crash/recover notifications (oracle detector)."""
        self._membership_watchers.append(watcher)

    def unwatch_membership(self,
                           watcher: Callable[[ProcessId, bool], None]
                           ) -> None:
        """Detach a :meth:`watch_membership` subscriber (no-op when it
        was never attached)."""
        try:
            self._membership_watchers.remove(watcher)
        except ValueError:
            pass

    def notify_membership(self, pid: ProcessId, alive: bool) -> None:
        for watcher in list(self._membership_watchers):
            watcher(pid, alive)

    def alive_pids(self) -> Set[ProcessId]:
        return {pid for pid, node in self.nodes.items() if node.up}
