"""Standard network topologies for experiments.

The fabric's per-link overrides are flexible but verbose; these helpers
install the common shapes in one call: a uniform LAN, a two-datacenter
WAN (fast intra-DC links, slow inter-DC links), and a star around a hub.
All of them only touch links between the process ids they are given, so
they compose (e.g. a WAN of two LANs with one degraded site).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, Sequence

from repro.net.fabric import LinkSpec, NetworkFabric
from repro.net.message import ProcessId

__all__ = ["uniform_lan", "two_datacenters", "star", "degrade_site"]

#: Typical latency profiles, reusable as starting points.
LAN = LinkSpec(delay=0.0005, jitter=0.0003)
METRO = LinkSpec(delay=0.005, jitter=0.002)
WAN = LinkSpec(delay=0.040, jitter=0.010)


def uniform_lan(fabric: NetworkFabric, pids: Iterable[ProcessId], *,
                link: LinkSpec = LAN) -> None:
    """Give every directed link among ``pids`` the same LAN profile."""
    pids = list(pids)
    for src, dst in product(pids, pids):
        if src != dst:
            fabric.set_link(src, dst, link)


def two_datacenters(fabric: NetworkFabric,
                    dc_a: Sequence[ProcessId],
                    dc_b: Sequence[ProcessId], *,
                    local: LinkSpec = LAN,
                    wan: LinkSpec = WAN) -> None:
    """Fast links within each datacenter, slow links between them."""
    uniform_lan(fabric, dc_a, link=local)
    uniform_lan(fabric, dc_b, link=local)
    for a in dc_a:
        for b in dc_b:
            fabric.set_link(a, b, wan)
            fabric.set_link(b, a, wan)


def star(fabric: NetworkFabric, hub: ProcessId,
         spokes: Iterable[ProcessId], *,
         spoke_link: LinkSpec = METRO,
         blocked_spoke_to_spoke: bool = True) -> None:
    """Spokes reach the hub directly; spoke-to-spoke is partitioned
    (all traffic must be application-relayed through the hub) unless
    ``blocked_spoke_to_spoke=False``."""
    spokes = list(spokes)
    for spoke in spokes:
        fabric.set_link(spoke, hub, spoke_link)
        fabric.set_link(hub, spoke, spoke_link)
    if blocked_spoke_to_spoke:
        for a in spokes:
            for b in spokes:
                if a != b:
                    fabric.partition([a], [b])


def degrade_site(fabric: NetworkFabric, pid: ProcessId, *,
                 extra_delay: float = 0.2,
                 loss: float = 0.0) -> None:
    """Layer a performance failure onto every link touching ``pid``."""
    for other in list(fabric.nodes):
        if other == pid:
            continue
        for src, dst in ((other, pid), (pid, other)):
            base = fabric.link(src, dst)
            fabric.set_link(src, dst, LinkSpec(
                delay=base.delay + extra_delay, jitter=base.jitter,
                loss=max(base.loss, loss), duplicate=base.duplicate,
                spike_prob=base.spike_prob,
                spike_delay=base.spike_delay))
