"""Network event tracing and counters.

Every fabric decision (send, drop, duplicate, deliver, crash, recover) is
recorded here.  Experiments use the counters for their reported metrics
(message costs per call, retransmission counts) and the event log for
invariant checking in tests.

The per-kind counters live in a :class:`~repro.obs.metrics.MetricsRegistry`
under ``net.<kind>`` (one registry per deployment, shared with the rest of
the observability layer).  The legacy ``trace.counts[...]`` mapping is kept
as a read-only view over those counters so existing callers and tests keep
working; new code should read ``metrics.counter("net.send")`` &c. directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["TraceEvent", "NetTrace"]

#: Registry namespace for the fabric's per-kind counters.
NET_PREFIX = "net."


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped fabric event.

    ``kind`` is one of ``send``, ``deliver``, ``drop-loss``,
    ``drop-partition``, ``drop-filter``, ``drop-dead``,
    ``drop-src-down`` (buffered by the wire pipeline when the sending
    site crashed before its coalescing flush), ``duplicate``, ``crash``,
    ``recover``.  Batched envelopes account one record per *inner*
    message for every kind.
    """

    time: float
    kind: str
    src: int
    dst: int
    detail: Any = None


class _CountsView(Mapping):
    """Read-only ``Counter``-style view over the ``net.*`` counters.

    Preserves the old interface: missing kinds read as 0, iteration and
    ``dict(...)`` cover only kinds that have actually been counted (zeroed
    counters — e.g. after :meth:`NetTrace.clear` — are skipped, matching
    ``collections.Counter`` semantics where ``clear`` empties the dict).
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics: MetricsRegistry):
        self._metrics = metrics

    def __getitem__(self, kind: str) -> int:
        return int(self._metrics.value(NET_PREFIX + kind, 0))

    def __iter__(self) -> Iterator[str]:
        for name in self._metrics.counter_names(NET_PREFIX):
            if self._metrics.value(name, 0) > 0:
                yield name[len(NET_PREFIX):]

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_CountsView({dict(self)!r})"


class NetTrace:
    """Accumulates :class:`TraceEvent` records and per-kind counters.

    Recording the full event list can be disabled (counters only) for the
    large benchmark runs via ``keep_events=False``.  Pass the deployment's
    shared registry as ``metrics`` to fold the network counters into it; a
    private registry is created otherwise.
    """

    def __init__(self, keep_events: bool = True,
                 metrics: Optional[MetricsRegistry] = None):
        self.keep_events = keep_events
        self.events: List[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Optional live observers, e.g. a test asserting on the fly.
        self.observers: List[Callable[[TraceEvent], None]] = []
        # Per-kind counter objects, resolved once: Counter instances are
        # stable across registry resets (reset zeroes them in place), so
        # the hot path skips the name concatenation and registry lookup.
        self._counters: Dict[str, Any] = {}

    def record(self, time: float, kind: str, src: int = -1, dst: int = -1,
               detail: Any = None) -> None:
        counter = self._counters.get(kind)
        if counter is None:
            counter = self.metrics.counter(NET_PREFIX + kind)
            self._counters[kind] = counter
        counter.inc()
        if not self.keep_events and not self.observers:
            # Counters-only mode (the big benchmark runs): no event
            # object is materialized at all.
            return
        event = TraceEvent(time, kind, src, dst, detail)
        if self.keep_events:
            self.events.append(event)
        for observer in self.observers:
            observer(event)

    # -- convenience accessors -------------------------------------------

    @property
    def counts(self) -> Mapping:
        """Deprecated per-kind counter mapping (kind -> count).

        A live read-only view over the registry's ``net.*`` counters; kept
        for backward compatibility with pre-registry callers.
        """
        return _CountsView(self.metrics)

    @property
    def sends(self) -> int:
        return int(self.metrics.value(NET_PREFIX + "send", 0))

    @property
    def deliveries(self) -> int:
        return int(self.metrics.value(NET_PREFIX + "deliver", 0))

    @property
    def losses(self) -> int:
        return int(self.metrics.value(NET_PREFIX + "drop-loss", 0))

    @property
    def duplicates(self) -> int:
        return int(self.metrics.value(NET_PREFIX + "duplicate", 0))

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def between(self, src: Optional[int] = None, dst: Optional[int] = None
                ) -> List[TraceEvent]:
        """Events filtered by endpoint(s)."""
        return [e for e in self.events
                if (src is None or e.src == src)
                and (dst is None or e.dst == dst)]

    def clear(self) -> None:
        self.events.clear()
        self.metrics.reset(NET_PREFIX)
