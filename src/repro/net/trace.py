"""Network event tracing and counters.

Every fabric decision (send, drop, duplicate, deliver, crash, recover) is
recorded here.  Experiments use the counters for their reported metrics
(message costs per call, retransmission counts) and the event log for
invariant checking in tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

__all__ = ["TraceEvent", "NetTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped fabric event.

    ``kind`` is one of ``send``, ``deliver``, ``drop-loss``,
    ``drop-partition``, ``drop-filter``, ``drop-dead``, ``duplicate``,
    ``crash``, ``recover``.
    """

    time: float
    kind: str
    src: int
    dst: int
    detail: Any = None


class NetTrace:
    """Accumulates :class:`TraceEvent` records and per-kind counters.

    Recording the full event list can be disabled (counters only) for the
    large benchmark runs via ``keep_events=False``.
    """

    def __init__(self, keep_events: bool = True):
        self.keep_events = keep_events
        self.events: List[TraceEvent] = []
        self.counts: Counter = Counter()
        #: Optional live observers, e.g. a test asserting on the fly.
        self.observers: List[Callable[[TraceEvent], None]] = []

    def record(self, time: float, kind: str, src: int = -1, dst: int = -1,
               detail: Any = None) -> None:
        self.counts[kind] += 1
        event = TraceEvent(time, kind, src, dst, detail)
        if self.keep_events:
            self.events.append(event)
        for observer in self.observers:
            observer(event)

    # -- convenience accessors -------------------------------------------

    @property
    def sends(self) -> int:
        return self.counts["send"]

    @property
    def deliveries(self) -> int:
        return self.counts["deliver"]

    @property
    def losses(self) -> int:
        return self.counts["drop-loss"]

    @property
    def duplicates(self) -> int:
        return self.counts["duplicate"]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def between(self, src: Optional[int] = None, dst: Optional[int] = None
                ) -> List[TraceEvent]:
        """Events filtered by endpoint(s)."""
        return [e for e in self.events
                if (src is None or e.src == src)
                and (dst is None or e.dst == dst)]

    def clear(self) -> None:
        self.events.clear()
        self.counts.clear()
