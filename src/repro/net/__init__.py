"""Simulated network substrate: nodes, lossy links, unreliable transport."""

from repro.net.fabric import LinkSpec, NetworkFabric
from repro.net.message import Envelope, Group, ProcessId, wire_size
from repro.net.node import Node
from repro.net.trace import NetTrace, TraceEvent
from repro.net.transport import UnreliableTransport
from repro.net.wire import WireBatch, WireConfig, WirePipeline

__all__ = [
    "LinkSpec",
    "NetworkFabric",
    "Envelope",
    "Group",
    "ProcessId",
    "Node",
    "NetTrace",
    "TraceEvent",
    "UnreliableTransport",
    "WireBatch",
    "WireConfig",
    "WirePipeline",
    "wire_size",
]
