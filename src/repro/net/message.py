"""Addressing and fabric-level message envelopes.

The paper addresses processes by ``process_id`` and server groups by
``group_id``; the underlying "unreliable communication" protocol moves
opaque payloads between sites.  This module defines those addressing types
plus the :class:`Envelope` wrapper the simulated fabric attaches to every
payload in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterable, Tuple

__all__ = ["ProcessId", "Group", "Envelope"]

#: Processes are identified by small integers, as in the paper's pseudocode
#: (`my_id`, `max(id: process_id in server)` for leader election).
ProcessId = int


@dataclass(frozen=True)
class Group:
    """An immutable named server group (the paper's ``group_id``).

    The *static* membership of the group — which processes were configured
    into it — never changes; the dynamic notion of which members are
    currently alive is the membership service's business (Section 2.2's
    membership semantics).

    The Total Order micro-protocol defines the leader as "the server with
    the largest unique identifier of all non-failed servers", which is what
    :meth:`leader` computes given a set of live processes.
    """

    name: str
    members: Tuple[ProcessId, ...]

    def __init__(self, name: str, members: Iterable[ProcessId]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "members",
                           tuple(sorted(set(members))))
        if not self.members:
            raise ValueError(f"group {name!r} must have at least one member")

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.members

    def leader(self, alive: FrozenSet[ProcessId] | set | None = None
               ) -> ProcessId:
        """Largest-id live member (the paper's leader rule).

        With ``alive=None`` every configured member is considered live.
        Raises ``ValueError`` if no member is alive.
        """
        candidates = self.members if alive is None else \
            [m for m in self.members if m in alive]
        if not candidates:
            raise ValueError(f"group {self.name!r} has no live members")
        return max(candidates)


_ENVELOPE_SEQ = 0


@dataclass
class Envelope:
    """A payload in flight through the simulated fabric.

    ``seq`` is a global sequence number used only for tracing and
    deterministic tie-breaking; ``copy`` distinguishes duplicated
    deliveries of the same send.
    """

    src: ProcessId
    dst: ProcessId
    payload: Any
    send_time: float
    seq: int = field(default=-1)
    copy: int = 0

    def __post_init__(self) -> None:
        global _ENVELOPE_SEQ
        if self.seq < 0:
            self.seq = _ENVELOPE_SEQ
            _ENVELOPE_SEQ += 1
