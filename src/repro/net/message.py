"""Addressing and fabric-level message envelopes.

The paper addresses processes by ``process_id`` and server groups by
``group_id``; the underlying "unreliable communication" protocol moves
opaque payloads between sites.  This module defines those addressing types
plus the :class:`Envelope` wrapper the simulated fabric attaches to every
payload in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Iterable, Optional, Tuple

__all__ = ["ProcessId", "Group", "Envelope", "wire_size"]

#: Processes are identified by small integers, as in the paper's pseudocode
#: (`my_id`, `max(id: process_id in server)` for leader election).
ProcessId = int


@dataclass(frozen=True)
class Group:
    """An immutable named server group (the paper's ``group_id``).

    The *static* membership of the group — which processes were configured
    into it — never changes; the dynamic notion of which members are
    currently alive is the membership service's business (Section 2.2's
    membership semantics).

    The Total Order micro-protocol defines the leader as "the server with
    the largest unique identifier of all non-failed servers", which is what
    :meth:`leader` computes given a set of live processes.
    """

    name: str
    members: Tuple[ProcessId, ...]

    def __init__(self, name: str, members: Iterable[ProcessId]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "members",
                           tuple(sorted(set(members))))
        if not self.members:
            raise ValueError(f"group {name!r} must have at least one member")

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.members

    def leader(self, alive: FrozenSet[ProcessId] | set | None = None
               ) -> ProcessId:
        """Largest-id live member (the paper's leader rule).

        With ``alive=None`` every configured member is considered live.
        Raises ``ValueError`` if no member is alive.
        """
        candidates = self.members if alive is None else \
            [m for m in self.members if m in alive]
        if not candidates:
            raise ValueError(f"group {self.name!r} has no live members")
        return max(candidates)


def wire_size(value: Any) -> int:
    """Deterministic byte-size *estimate* of a payload on the wire.

    The simulated fabric never actually serializes payloads (they are
    handed across as Python objects), but the wire pipeline's coalescing
    cap and per-link queue budgets need a size to reason about.  This
    estimate mirrors the framing of :mod:`repro.stubs.marshal` — one tag
    byte plus a length prefix per variable-size value — extended to the
    dataclass wire types (``NetMsg``, ``Heartbeat``, ...) that travel
    whole: a dataclass costs 2 bytes of framing plus its fields.

    Objects exposing their own ``wire_size()`` (e.g.
    :class:`~repro.net.wire.WireBatch`) are deferred to; anything
    unrecognised is charged a flat 16 bytes rather than rejected, since
    tests ship ad-hoc payloads through the fabric.
    """
    sizer = getattr(value, "wire_size", None)
    if callable(sizer):
        return int(sizer())
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 9
    if isinstance(value, str):
        return 5 + len(value)
    if isinstance(value, (bytes, bytearray)):
        return 5 + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 5 + sum(wire_size(item) for item in value)
    if isinstance(value, dict):
        return 5 + sum(wire_size(k) + wire_size(v)
                       for k, v in value.items())
    fields = getattr(value, "__dataclass_fields__", None)
    if fields is not None:
        return 2 + sum(wire_size(getattr(value, name)) for name in fields)
    return 16


_ENVELOPE_SEQ = 0


@dataclass(repr=False)
class Envelope:
    """A payload in flight through the simulated fabric.

    ``seq`` is a global sequence number used only for tracing and
    deterministic tie-breaking; ``copy`` distinguishes duplicated
    deliveries of the same send.  ``on_resolved`` is the wire pipeline's
    completion hook: called exactly once when the fabric decides the
    envelope's fate (delivered or dropped), it returns the link's
    in-flight budget so blocked senders can proceed.
    """

    src: ProcessId
    dst: ProcessId
    payload: Any
    send_time: float
    seq: int = field(default=-1)
    copy: int = 0
    on_resolved: Optional[Callable[[], None]] = field(default=None,
                                                      compare=False)
    # Memoized wire_size(); an envelope's payload never changes once it
    # is in flight, so the estimate is computed at most once per envelope
    # (duplicated copies each carry their own cache).
    _wire_size: Optional[int] = field(default=None, compare=False,
                                      init=False)

    def __post_init__(self) -> None:
        global _ENVELOPE_SEQ
        if self.seq < 0:
            self.seq = _ENVELOPE_SEQ
            _ENVELOPE_SEQ += 1

    def wire_size(self) -> int:
        """Estimated on-wire size of the carried payload (memoized)."""
        size = self._wire_size
        if size is None:
            size = self._wire_size = wire_size(self.payload)
        return size

    def resolve(self) -> None:
        """Fire the pipeline's completion hook (idempotence is the
        hook's own responsibility — duplicated copies share one)."""
        if self.on_resolved is not None:
            self.on_resolved()

    def __repr__(self) -> str:
        return (f"<Envelope #{self.seq} {self.src}->{self.dst} "
                f"{type(self.payload).__name__} size={self.wire_size()}"
                f"{f' copy={self.copy}' if self.copy else ''}>")
