"""The unified wire pipeline: one outbound send path for every sender.

Historically the reproduction grew three parallel ways of putting a
message on the simulated network — ``UnreliableTransport.push`` for the
protocol stacks, raw ``NetworkFabric.send`` for hand-built experiments,
and the deployment plane's service-stamped calls — which made link-level
optimisations impossible to do in one place.  This module collapses them
into a single :class:`WirePipeline` owned by the fabric.  Every sender
(gRPC composites, p2p stubs, heartbeat detectors, placement migration,
deployment calls) reaches the network through it, via the transport at
the bottom of each node's stack.

The pipeline is composed of small, configurable stages::

    sender
      │  annotate / account (net.* per-message counters)
      │  control fast lane ──────────────────────────┐
      │  per-link coalescing buffer                  │
      │    (flush at end of the scheduling round,    │
      │     or early at a size cap)                  │
      │  bounded per-link send queue (backpressure)  │
      ▼                                              ▼
    fabric.send  ← the single internal primitive the pipeline owns
      │  loss / duplication / partitions / scripted fault filters
      ▼
    delivery → unbatch → TypeDemux / ServiceDemux → composites

* **Coalescing** — with ``batch=True``, messages sharing a ``(src,
  dst)`` link within one scheduling round travel in a single
  :class:`WireBatch` envelope, so co-hosted composites pay one envelope
  per link per round instead of one per message.  The flush point is a
  zero-delay timer: on the virtual-time kernel it fires exactly when the
  current instant's ready queue drains (the end of the scheduling
  round), and on asyncio at the next loop iteration.  A buffer is also
  flushed early when it reaches ``max_batch_msgs`` messages or
  ``max_batch_bytes`` estimated bytes (:func:`repro.net.message.
  wire_size`).
* **Backpressure** — with ``queue_depth > 0``, each link has an
  in-flight budget: senders ``await`` when the budget is exhausted
  instead of growing unbounded fabric timer queues.  A message occupies
  budget from the moment it is accepted until the fabric resolves its
  envelope (delivered, or dropped by loss/partition/filter/crash).
* **Fast lane** — small control messages (payload types carrying a
  truthy ``wire_control`` class attribute, e.g. membership
  ``Heartbeat``\\ s) bypass both the coalescing buffer and the budget,
  so failure detectors are not head-of-line blocked behind bulk RPC
  traffic.
* **Metrics** — the pipeline lands ``net.batch.*``, ``net.queue.*`` and
  ``net.fastlane.*`` instruments in the deployment's shared registry,
  plus per-link flush histograms (``net.batch.flush.<src>-<dst>``) and,
  with ``link_metrics=True``, per-link delivery counters and latency
  histograms (``net.link.*``).

With the default :class:`WireConfig` every stage is pass-through and the
pipeline reproduces the old per-message path exactly — same RNG draws,
same trace events, same timing — which is what keeps the seeded
benchmarks and the fault-injection tests byte-identical.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.net.message import ProcessId, wire_size

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import NetworkFabric

__all__ = ["WireConfig", "WireBatch", "WirePipeline"]


@dataclass(frozen=True)
class WireConfig:
    """Knobs for the pipeline's coalescing and backpressure stages.

    The defaults disable every optimisation, recovering the exact
    pre-pipeline per-message behaviour (one envelope per message, no
    send-side blocking); experiments opt in per deployment.
    """

    #: Coalesce messages sharing a (src, dst) link within one scheduling
    #: round into a single :class:`WireBatch` envelope.
    batch: bool = False
    #: Flush a link's buffer early once it holds this many messages.
    max_batch_msgs: int = 16
    #: ... or this many estimated payload bytes.
    max_batch_bytes: int = 4096
    #: Per-link in-flight budget; senders await above it.  0 = unbounded.
    queue_depth: int = 0
    #: Let ``wire_control`` payloads (heartbeats) bypass batching and
    #: the queue budget.
    fast_lane: bool = True
    #: Record per-link delivery counters and latency histograms
    #: (``net.link.*``); off by default to keep big runs lean.
    link_metrics: bool = False
    #: Adapt the batch caps at runtime from the observed ``net.batch.*``
    #: / ``net.queue.*`` metrics (see :meth:`WirePipeline._tune_tick`).
    #: Off by default: the static config stays the reference behaviour.
    #: Only meaningful together with ``batch=True``.
    auto_tune: bool = False
    #: Virtual-time spacing of auto-tune adjustments.
    tune_interval: float = 0.25

    def __post_init__(self) -> None:
        if self.max_batch_msgs < 1:
            raise ValueError("max_batch_msgs must be >= 1")
        if self.max_batch_bytes < 1:
            raise ValueError("max_batch_bytes must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.tune_interval <= 0:
            raise ValueError("tune_interval must be > 0")


class WireBatch:
    """One coalesced envelope payload: messages sharing a link.

    The receiving transport unbatches it back into individual payloads,
    each dispatched up the demux stack in its own task, so everything
    above the wire layer is batching-agnostic.
    """

    __slots__ = ("messages",)

    def __init__(self, messages: Iterable[Any]):
        self.messages: Tuple[Any, ...] = tuple(messages)
        if not self.messages:
            raise ValueError("a WireBatch needs at least one message")

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages)

    def wire_size(self) -> int:
        """Framing plus the sum of the inner messages' estimates."""
        return 5 + sum(wire_size(msg) for msg in self.messages)

    def __repr__(self) -> str:
        kinds = sorted({type(m).__name__ for m in self.messages})
        return (f"<WireBatch n={len(self.messages)} "
                f"kinds={'/'.join(kinds)} size={self.wire_size()}>")


def is_control(payload: Any) -> bool:
    """Is this payload a small control message (fast-lane eligible)?

    Control payload *types* declare themselves with a class attribute
    ``wire_control = True`` (see :class:`repro.membership.detector.
    Heartbeat`), so the check is one ``getattr`` on the hot path and no
    registry is needed.
    """
    return bool(getattr(payload, "wire_control", False))


class _Link:
    """Per-directed-link pipeline state: buffer, budget, instruments."""

    __slots__ = ("src", "dst", "buffer", "buffered_bytes", "flush_pending",
                 "credits", "inflight", "depth_gauge", "flush_hist")

    def __init__(self, src: ProcessId, dst: ProcessId,
                 credits: Any, depth_gauge: Any, flush_hist: Any):
        self.src = src
        self.dst = dst
        self.buffer: List[Any] = []
        self.buffered_bytes = 0
        self.flush_pending = False
        self.credits = credits          # runtime semaphore, or None
        self.inflight = 0
        self.depth_gauge = depth_gauge  # gauge, or None
        self.flush_hist = flush_hist    # histogram, or None


class WirePipeline:
    """The single outbound path from every sender to the fabric.

    Owned by (and constructed with) the :class:`~repro.net.fabric.
    NetworkFabric`; the :class:`~repro.net.transport.UnreliableTransport`
    at the bottom of every node's stack routes all pushes through
    :meth:`send`/:meth:`multicast`.  ``fabric.send`` remains the single
    internal primitive the pipeline calls to put one envelope on a link.
    """

    def __init__(self, fabric: "NetworkFabric",
                 config: Optional[WireConfig] = None):
        self.fabric = fabric
        self.runtime = fabric.runtime
        self.config = config or WireConfig()
        self.metrics = fabric.trace.metrics
        # Unpacked for the hot path.
        self.batch = self.config.batch
        self.queue_depth = self.config.queue_depth
        self.fast_lane = self.config.fast_lane
        self.link_metrics = self.config.link_metrics
        self.max_batch_msgs = self.config.max_batch_msgs
        self.max_batch_bytes = self.config.max_batch_bytes
        #: Plain path: no stage is active, sends go straight down.
        self._passthrough = not self.batch and self.queue_depth == 0
        self._links: Dict[Tuple[ProcessId, ProcessId], _Link] = {}
        #: The observatory's flight recorder, or None.  Attached by
        #: :class:`repro.obs.observatory.Observatory`; records the first
        #: fast-lane activation per link and every backpressure stall.
        self.flight: Any = None
        self._fastlane_noted: set = set()
        # Hot-path counters resolved once (Counter objects are stable
        # across registry resets).
        self._ctr_fastlane = self.metrics.counter("net.fastlane.sends")
        self._ctr_waits = self.metrics.counter("net.queue.waits")
        self._ctr_batch_msgs = self.metrics.counter("net.batch.messages")
        self._ctr_flush_cap = self.metrics.counter("net.batch.flush.cap")
        self._ctr_flush_round = self.metrics.counter(
            "net.batch.flush.round")
        self._ctr_batch_envs = self.metrics.counter("net.batch.envelopes")
        # Per-link delivery instruments (link_metrics mode), cached so a
        # delivery doesn't rebuild the instrument names each time.
        self._delivery_instruments: Dict[Tuple[ProcessId, ProcessId],
                                         tuple] = {}
        # Auto-tune state: the tick timer is armed lazily by traffic and
        # disarms itself when the link goes quiet, so an idle deployment
        # schedules no timers (run_until_idle still terminates).
        self.auto_tune = self.config.auto_tune and self.batch
        self.tune_interval = self.config.tune_interval
        self._tune_armed = False
        self._tune_last: Dict[str, float] = {}
        self.tune_adjustments = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    async def send(self, src: ProcessId, dst: ProcessId,
                   payload: Any) -> None:
        """Stage ``payload`` for the ``src -> dst`` link.

        May block (backpressure) when the link's in-flight budget is
        exhausted; otherwise returns once the message is buffered or
        handed to the fabric.
        """
        if self.fast_lane and is_control(payload):
            # Control fast lane: no coalescing, no budget — a failure
            # detector's beats must not queue behind bulk payloads.
            self._ctr_fastlane.inc()
            if (self.flight is not None
                    and (src, dst) not in self._fastlane_noted):
                self._fastlane_noted.add((src, dst))
                self.flight.note("fastlane", src=src, dst=dst,
                                 payload=type(payload).__name__)
            self.fabric.send(src, dst, payload)
            return
        if self._passthrough:
            self.fabric.send(src, dst, payload)
            return
        link = self._link(src, dst)
        if link.credits is not None:
            if link.credits.locked():
                self._ctr_waits.inc()
                if self.flight is not None:
                    self.flight.note("backpressure", src=src, dst=dst,
                                     inflight=link.inflight)
            await link.credits.acquire()
            link.inflight += 1
            link.depth_gauge.set(link.inflight)
        if not self.batch:
            self.fabric.send(src, dst, payload,
                             resolve=self._resolver(link, 1))
            return
        link.buffer.append(payload)
        link.buffered_bytes += wire_size(payload)
        self._ctr_batch_msgs.inc()
        if (len(link.buffer) >= self.max_batch_msgs
                or link.buffered_bytes >= self.max_batch_bytes):
            self._ctr_flush_cap.inc()
            self._flush(link)
        elif not link.flush_pending:
            link.flush_pending = True
            # Zero-delay timer = end of the current scheduling round on
            # the sim kernel (timers fire only once the ready queue
            # drains), next loop iteration on asyncio.
            self.runtime.call_later(0.0,
                                    lambda: self._round_flush(link))
        if self.auto_tune and not self._tune_armed:
            self._tune_armed = True
            self.runtime.call_later(self.tune_interval, self._tune_tick)

    async def multicast(self, src: ProcessId, dests: Iterable[ProcessId],
                        payload: Any) -> None:
        """Fan ``payload`` out over independent per-member links."""
        for member in dests:
            await self.send(src, member, payload)

    # ------------------------------------------------------------------
    # Coalescing internals
    # ------------------------------------------------------------------

    def _link(self, src: ProcessId, dst: ProcessId) -> _Link:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            credits = depth_gauge = None
            if self.queue_depth > 0:
                credits = self.runtime.semaphore(self.queue_depth)
                depth_gauge = self.metrics.gauge(
                    f"net.queue.depth.{src}-{dst}")
            flush_hist = (self.metrics.histogram(
                f"net.batch.flush.{src}-{dst}") if self.batch else None)
            link = _Link(src, dst, credits, depth_gauge, flush_hist)
            self._links[key] = link
        return link

    def _round_flush(self, link: _Link) -> None:
        link.flush_pending = False
        if link.buffer:
            self.metrics.counter("net.batch.flush.round").inc()
            self._flush(link)

    def _flush(self, link: _Link) -> None:
        """Put the buffered messages on the wire as one envelope."""
        msgs = link.buffer
        if not msgs:
            return
        link.buffer = []
        link.buffered_bytes = 0
        n = len(msgs)
        node = self.fabric.nodes.get(link.src)
        if node is not None and not node.up:
            # The site crashed with messages still buffered: a down site
            # cannot transmit, so they die here rather than escaping on
            # the post-crash flush timer.
            now = self.runtime.now()
            for msg in msgs:
                self.fabric.trace.record(now, "drop-src-down", link.src,
                                         link.dst, detail=msg)
            self._release(link, n)
            return
        payload = msgs[0] if n == 1 else WireBatch(msgs)
        self._ctr_batch_envs.inc()
        link.flush_hist.observe(n)
        self.fabric.send(link.src, link.dst, payload,
                         resolve=self._resolver(link, n))

    # ------------------------------------------------------------------
    # Batch-cap auto-tuning
    # ------------------------------------------------------------------

    #: Hard bounds the tuner never leaves, whatever the load looks like.
    TUNE_MIN_MSGS = 2
    TUNE_MAX_MSGS = 256
    TUNE_MIN_BYTES = 512
    TUNE_MAX_BYTES = 1 << 16

    def _tune_tick(self) -> None:
        """One deterministic adjustment of the live batch caps.

        Driven entirely by virtual time and the deployment's own
        ``net.batch.*`` / ``net.queue.*`` counters — no wall clock, no
        randomness — so a seeded run tunes identically every time.  The
        policy reads the interval's deltas:

        * cap-flush dominated (or senders hit backpressure): the caps
          are throttling an offered load that could coalesce further —
          double both caps;
        * round-flush dominated with batches far below the message cap:
          the caps are oversized for the traffic — halve them toward
          the observed occupancy;

        always staying inside ``TUNE_MIN/MAX``.  The static
        :class:`WireConfig` is never mutated; the live caps are the
        pipeline's own unpacked attributes, and ``config`` remains the
        reference the pipeline was built from.
        """
        self._tune_armed = False
        cap = self._ctr_flush_cap.value
        rnd = self._ctr_flush_round.value
        msgs = self._ctr_batch_msgs.value
        waits = self._ctr_waits.value
        last = self._tune_last
        d_cap = cap - last.get("cap", 0)
        d_rnd = rnd - last.get("rnd", 0)
        d_msgs = msgs - last.get("msgs", 0)
        d_waits = waits - last.get("waits", 0)
        self._tune_last = {"cap": cap, "rnd": rnd, "msgs": msgs,
                           "waits": waits}
        flushes = d_cap + d_rnd
        if not flushes:
            return
        occupancy = d_msgs / flushes
        if d_cap > d_rnd or d_waits > 0:
            new_msgs = min(self.TUNE_MAX_MSGS, self.max_batch_msgs * 2)
            new_bytes = min(self.TUNE_MAX_BYTES, self.max_batch_bytes * 2)
        elif occupancy * 4 <= self.max_batch_msgs:
            new_msgs = max(self.TUNE_MIN_MSGS, self.max_batch_msgs // 2)
            new_bytes = max(self.TUNE_MIN_BYTES, self.max_batch_bytes // 2)
        else:
            return
        if (new_msgs, new_bytes) == (self.max_batch_msgs,
                                     self.max_batch_bytes):
            return
        self.max_batch_msgs = new_msgs
        self.max_batch_bytes = new_bytes
        self.tune_adjustments += 1
        self.metrics.counter("net.batch.tune.adjust").inc()
        self.metrics.gauge("net.batch.tuned.msgs").set(new_msgs)
        self.metrics.gauge("net.batch.tuned.bytes").set(new_bytes)
        if self.flight is not None:
            self.flight.note("wire-tune", max_batch_msgs=new_msgs,
                             max_batch_bytes=new_bytes,
                             occupancy=round(occupancy, 2))

    def drop_source(self, pid: ProcessId) -> int:
        """Discard every message ``pid`` still has buffered (it crashed).

        Returns how many messages were dropped.  Called from
        :meth:`repro.net.node.Node.crash`; the in-flight ones already on
        the fabric are not recalled — they were transmitted before the
        crash and resolve on their own.
        """
        dropped = 0
        now = self.runtime.now()
        for link in self._links.values():
            if link.src != pid or not link.buffer:
                continue
            msgs, link.buffer = link.buffer, []
            link.buffered_bytes = 0
            for msg in msgs:
                self.fabric.trace.record(now, "drop-src-down", link.src,
                                         link.dst, detail=msg)
            self._release(link, len(msgs))
            dropped += len(msgs)
        return dropped

    # ------------------------------------------------------------------
    # Budget accounting
    # ------------------------------------------------------------------

    def _resolver(self, link: _Link, n: int):
        """A call-once hook returning ``n`` messages of budget."""
        if link.credits is None:
            return None
        fired = False

        def resolve() -> None:
            nonlocal fired
            if fired:
                return
            fired = True
            self._release(link, n)

        return resolve

    def _release(self, link: _Link, n: int) -> None:
        if link.credits is None:
            return
        link.inflight -= n
        link.depth_gauge.set(link.inflight)
        for _ in range(n):
            link.credits.release()

    # ------------------------------------------------------------------
    # Delivery-side accounting (called by the fabric)
    # ------------------------------------------------------------------

    def on_delivered(self, src: ProcessId, dst: ProcessId, n_messages: int,
                     latency: float) -> None:
        """Per-link delivery instruments (only when ``link_metrics``)."""
        key = (src, dst)
        instruments = self._delivery_instruments.get(key)
        if instruments is None:
            instruments = (
                self.metrics.counter(f"net.link.delivered.{src}-{dst}"),
                self.metrics.histogram(f"net.link.latency.{src}-{dst}"))
            self._delivery_instruments[key] = instruments
        counter, hist = instruments
        counter.inc(n_messages)
        hist.observe(latency)

    # ------------------------------------------------------------------
    # Introspection (tests, benchmarks)
    # ------------------------------------------------------------------

    def buffered(self, src: Optional[ProcessId] = None,
                 dst: Optional[ProcessId] = None) -> int:
        """Messages currently held in coalescing buffers."""
        return sum(len(link.buffer) for link in self._links.values()
                   if (src is None or link.src == src)
                   and (dst is None or link.dst == dst))

    def inflight(self, src: ProcessId, dst: ProcessId) -> int:
        """Messages currently charged against the link's budget."""
        link = self._links.get((src, dst))
        return link.inflight if link is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WirePipeline batch={self.batch} "
                f"queue_depth={self.queue_depth} "
                f"links={len(self._links)}>")
