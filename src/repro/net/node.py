"""Simulated sites with crash failures, recovery and incarnation numbers.

The paper's system model: "sites can experience crash failures" and
recovering clients carry an *incarnation number* so servers can partition
calls into generations (Interference Avoidance, Terminate Orphan).  A
:class:`Node` models one site:

* **crash** — every task the site was running is cancelled (volatile state
  is the protocol layers' to reset via crash listeners), queued inbound
  messages are discarded, and the fabric stops delivering to it;
* **recover** — the incarnation number is bumped, the receive loop is
  restarted, and recovery listeners fire (gRPC turns this into the
  ``RECOVERY`` event of Section 4.3).

The incarnation counter survives crashes.  On real hardware it would be
read from stable storage at reboot; here the :class:`Node` object plays the
role of the machine, which persists while its volatile contents do not.
"""

from __future__ import annotations

import typing
from typing import Any, Callable, Coroutine, List

from repro.errors import NodeDown
from repro.net.message import Envelope, ProcessId
from repro.runtime.base import CancelScope, Runtime
from repro.stablestore import StableStore

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import NetworkFabric

__all__ = ["Node"]


class Node:
    """One simulated site: a process id, an inbox, and a task scope."""

    def __init__(self, pid: ProcessId, runtime: Runtime,
                 fabric: "NetworkFabric", *, name: str = ""):
        self.pid = pid
        self.name = name or f"node-{pid}"
        self.runtime = runtime
        self.fabric = fabric
        self.incarnation = 1
        self.up = False
        #: This site's "disk": survives crashes (the Node object persists
        #: while the tasks' volatile state does not).
        self.stable = StableStore()
        self.inbox = runtime.queue()
        self.scope = CancelScope(runtime)
        #: Called with no arguments the moment the node crashes; protocol
        #: layers register resets of their volatile state here.
        self.crash_listeners: List[Callable[[], None]] = []
        #: Called with the new incarnation number once the node restarts.
        self.recover_listeners: List[Callable[[int], None]] = []
        #: The bottom protocol of this node's stack; set by the transport.
        self.transport: Any = None
        self._receiver: Any = None
        fabric.add_node(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bring the node up for the first time (no listeners fire)."""
        if self.up:
            return
        self.up = True
        self._start_receiver()

    def crash(self) -> None:
        """Crash the site: kill tasks, drop queued input, go down."""
        if not self.up:
            return
        self.up = False
        self.fabric.trace.record(self.runtime.now(), "crash", self.pid,
                                 self.pid)
        self.scope.cancel_all()
        self._receiver = None
        self.inbox.clear()
        # Outbound messages still sitting in the wire pipeline's
        # coalescing buffers die with the site: a down node cannot
        # transmit on the flush timer.
        self.fabric.pipeline.drop_source(self.pid)
        for listener in list(self.crash_listeners):
            listener()
        self.fabric.notify_membership(self.pid, alive=False)

    def recover(self) -> None:
        """Restart the site with the next incarnation number."""
        if self.up:
            return
        self.incarnation += 1
        self.up = True
        self.fabric.trace.record(self.runtime.now(), "recover", self.pid,
                                 self.pid, detail=self.incarnation)
        self._start_receiver()
        for listener in list(self.recover_listeners):
            listener(self.incarnation)
        self.fabric.notify_membership(self.pid, alive=True)

    # ------------------------------------------------------------------
    # Task and message plumbing
    # ------------------------------------------------------------------

    def spawn(self, coro: Coroutine, *, name: str = "",
              daemon: bool = False) -> Any:
        """Spawn a task owned by this node (killed when the node crashes)."""
        if not self.up:
            coro.close()
            raise NodeDown(f"{self.name} is down")
        return self.scope.spawn(
            coro, name=name or f"{self.name}-task", daemon=daemon)

    def deliver(self, envelope: Envelope) -> None:
        """Called by the fabric to hand over an arrived envelope."""
        self.inbox.put(envelope)

    def _start_receiver(self) -> None:
        self._receiver = self.scope.spawn(
            self._receive_loop(), name=f"{self.name}-recv", daemon=True)

    async def _receive_loop(self) -> None:
        """Pop envelopes and hand each to the transport in its own task.

        Per-message tasks reproduce the paper's execution model where every
        network message arrival triggers its own (possibly blocking) event
        handler chain; a blocked chain must not stall later arrivals.
        """
        while True:
            envelope = await self.inbox.get()
            if self.transport is None:
                continue
            self.scope.spawn(
                self.transport.handle_arrival(envelope),
                name=f"{self.name}-msg-{envelope.seq}", daemon=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return (f"<Node {self.pid} {self.name!r} {state} "
                f"inc={self.incarnation}>")
