"""One-call construction of a complete group RPC deployment.

:class:`ServiceCluster` assembles everything the lower layers provide —
simulated fabric, nodes, per-node protocol stacks (dispatcher / gRPC /
demux / transport), membership service — from a
:class:`~repro.core.config.ServiceSpec` and an application factory.  It is
the entry point used by the examples, the integration tests, and the
benchmark harness.

Layout: servers get process ids ``1..n_servers`` (so the Total Order
leader is the highest-numbered server), clients get ids from 101 up.
Every node runs the same composite configuration, as in the paper's
model; servers additionally carry the application dispatcher on top.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Coroutine, Dict, List, Optional, Union

from repro.apps.dispatcher import ServerApp, ServerDispatcher
from repro.core.config import ServiceSpec
from repro.core.grpc import GroupRPC
from repro.core.messages import CallResult, NetMsg
from repro.core.microprotocols import CallObserver, CallTraceLog
from repro.errors import ReproError, TaskCancelled
from repro.membership import HeartbeatMembership, OracleMembership
from repro.obs import MetricsRegistry, Recorder, format_flame, to_jsonl
from repro.net import (
    Group,
    LinkSpec,
    NetworkFabric,
    Node,
    UnreliableTransport,
)
from repro.runtime import SimRuntime
from repro.sim import RandomSource
from repro.xkernel import TypeDemux, compose_stack

__all__ = ["ServiceCluster", "CLIENT_BASE_PID"]

#: Client process ids start here, well above any realistic group size.
CLIENT_BASE_PID = 101


def _instantiate_app(factory: Callable[..., ServerApp],
                     pid: int) -> ServerApp:
    """Build one server app, passing the pid if the factory accepts one.

    Lets callers pass a zero-argument class (``KVStore``) or a
    pid-consuming factory (``lambda pid: ComputeApp(pid * 10.0)``).
    """
    try:
        signature = inspect.signature(factory)
        takes_pid = any(
            p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD,
                       p.VAR_POSITIONAL)
            for p in signature.parameters.values())
    except (TypeError, ValueError):  # builtins without signatures
        takes_pid = True
    return factory(pid) if takes_pid else factory()


class ServiceCluster:
    """A ready-to-run simulated deployment of one gRPC configuration."""

    def __init__(self, spec: ServiceSpec,
                 app_factory: Callable[[int], ServerApp], *,
                 n_servers: int = 3, n_clients: int = 1,
                 seed: int = 0,
                 default_link: LinkSpec = LinkSpec(),
                 membership: Optional[str] = None,
                 membership_delay: float = 0.0,
                 heartbeat_interval: float = 0.05,
                 keep_trace: bool = True,
                 observe: bool = False,
                 obs: Union[bool, Recorder] = False,
                 runtime: Optional[SimRuntime] = None):
        """``membership`` is ``None``, ``"oracle"`` or ``"heartbeat"``.

        ``observe=True`` links a read-only Call Observer micro-protocol
        into every composite and exposes the shared timeline as
        ``cluster.call_log``.

        ``obs`` turns on the observability layer: ``True`` creates an
        enabled :class:`~repro.obs.Recorder` sharing the cluster's
        metrics registry; pass a pre-built recorder to control it
        yourself (a recorder with ``enabled=False`` keeps every
        instrumented component on its untraced path).  The metrics
        registry itself (``cluster.metrics``) always exists — the fabric
        counts messages through it regardless.
        """
        if n_servers < 1:
            raise ReproError("need at least one server")
        self.spec = spec
        self.runtime = runtime or SimRuntime()
        if obs is True:
            recorder: Optional[Recorder] = Recorder()
        elif isinstance(obs, Recorder):
            recorder = obs
        else:
            recorder = None
        #: Deployment-wide instrument table (``net.*``, ``handler.*``,
        #: ``kernel.*`` ...); adopted from the recorder when one is on so
        #: spans, handler histograms and network counters share a home.
        self.metrics = (recorder.metrics
                        if recorder is not None and recorder.enabled
                        else MetricsRegistry())
        # Must precede node construction: composites and buses capture
        # runtime.obs once, at attach time.
        self.runtime.attach_obs(recorder)
        #: The installed recorder (None when disabled).
        self.obs = self.runtime.obs
        self.fabric = NetworkFabric(
            self.runtime, rand=RandomSource(seed),
            default_link=default_link, metrics=self.metrics)
        self.fabric.trace.keep_events = keep_trace

        self.server_pids = list(range(1, n_servers + 1))
        self.client_pids = list(range(CLIENT_BASE_PID,
                                      CLIENT_BASE_PID + n_clients))
        self.group = Group("servers", self.server_pids)

        self.nodes: Dict[int, Node] = {}
        self.grpcs: Dict[int, GroupRPC] = {}
        self.dispatchers: Dict[int, ServerDispatcher] = {}
        self.apps: Dict[int, ServerApp] = {}
        self.demuxes: Dict[int, TypeDemux] = {}
        #: Shared per-call timeline when ``observe=True`` (else None);
        #: mirrored into the recorder when the obs layer is also on.
        self.call_log = CallTraceLog(self.obs) if observe else None

        for pid in self.server_pids:
            self._build_node(pid, _instantiate_app(app_factory, pid))
        for pid in self.client_pids:
            self._build_node(pid, None)

        self._membership = None
        if membership == "oracle":
            self._membership = OracleMembership(self.fabric,
                                                delay=membership_delay)
            for grpc in self.grpcs.values():
                self._membership.connect(grpc)
        elif membership == "heartbeat":
            self._membership = HeartbeatMembership(
                interval=heartbeat_interval)
            everyone = self.server_pids + self.client_pids
            for pid in everyone:
                self._membership.attach(self.grpcs[pid],
                                        self.demuxes[pid], everyone)
            self._membership.start_all()
        elif membership is not None:
            raise ReproError(f"unknown membership mode {membership!r}")

    # ------------------------------------------------------------------
    # Construction internals
    # ------------------------------------------------------------------

    def _build_node(self, pid: int, app: Optional[ServerApp]) -> None:
        node = Node(pid, self.runtime, self.fabric)
        grpc = GroupRPC(node)
        grpc.add(*self.spec.build())
        if self.call_log is not None:
            grpc.add(CallObserver(self.call_log))
        demux = TypeDemux(f"demux@{pid}")
        transport = UnreliableTransport(node)
        compose_stack(demux, transport)
        demux.attach(NetMsg, grpc)
        if app is not None:
            dispatcher = ServerDispatcher(node, app)
            compose_stack(dispatcher, grpc)  # only links this pair;
            # grpc.lower stays routed through the demux.
            self.dispatchers[pid] = dispatcher
            self.apps[pid] = app
        node.start()
        self.nodes[pid] = node
        self.grpcs[pid] = grpc
        self.demuxes[pid] = demux

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def trace(self):
        return self.fabric.trace

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def publish_runtime_stats(self) -> None:
        """Snapshot the runtime's scheduler counters into ``kernel.*``
        gauges, so they ride along in metric exports."""
        for name, value in self.runtime.stats().items():
            self.metrics.gauge(f"kernel.{name}").set(value)

    def export_trace(self, stream) -> int:
        """Write the recorded trace + metrics as JSONL; returns the line
        count.  Requires the obs layer (``obs=True``)."""
        if self.obs is None:
            raise ReproError("observability layer is not enabled "
                             "(construct the cluster with obs=True)")
        self.publish_runtime_stats()
        return to_jsonl(self.obs, stream)

    def format_flame(self, trace: Optional[int] = None) -> str:
        """Human-readable span tree(s); requires the obs layer."""
        if self.obs is None:
            raise ReproError("observability layer is not enabled "
                             "(construct the cluster with obs=True)")
        return format_flame(self.obs, trace)

    def node(self, pid: int) -> Node:
        return self.nodes[pid]

    def grpc(self, pid: int) -> GroupRPC:
        return self.grpcs[pid]

    def app(self, pid: int) -> ServerApp:
        return self.apps[pid]

    def dispatcher(self, pid: int) -> ServerDispatcher:
        return self.dispatchers[pid]

    @property
    def client(self) -> int:
        """The first client's pid (single-client shorthand)."""
        return self.client_pids[0]

    # ------------------------------------------------------------------
    # Driving the simulation
    # ------------------------------------------------------------------

    def spawn_client(self, pid: int, coro: Coroutine, *,
                     name: str = "") -> Any:
        """Run client code as a task owned by client node ``pid``.

        The task dies if that client crashes — required for the orphan
        experiments to be meaningful.
        """
        return self.nodes[pid].spawn(coro, name=name or f"client-{pid}")

    async def call(self, client_pid: int, op: str, args: Any) -> CallResult:
        """Issue one call from ``client_pid`` (await from a client task)."""
        return await self.grpcs[client_pid].call(op, args, self.group)

    def call_and_run(self, op: str, args: Any, *,
                     client_pid: Optional[int] = None,
                     extra_time: float = 0.0) -> CallResult:
        """Blockingly run one call to completion from outside the kernel.

        Spawns the call on the client node, drives the simulation until it
        finishes, optionally runs ``extra_time`` more virtual seconds (to
        let retransmissions and acks drain), and returns the result.
        """
        pid = client_pid if client_pid is not None else self.client
        results: List[CallResult] = []

        async def issue() -> None:
            results.append(await self.call(pid, op, args))

        task = self.spawn_client(pid, issue())

        async def supervise() -> None:
            try:
                await self.runtime.join(task)
            except TaskCancelled:
                pass

        self.runtime.run(supervise(), shutdown=False)
        if extra_time > 0:
            self.runtime.run_for(extra_time)
        if not results:
            raise TaskCancelled("client crashed before the call returned")
        return results[0]

    def run_scenario(self, coro: Coroutine, *,
                     extra_time: float = 0.0) -> Any:
        """Run an arbitrary scenario coroutine to completion.

        The scenario runs as a plain kernel task (not owned by any node),
        so it survives node crashes; spawn node-owned work from within it
        via :meth:`spawn_client`.
        """
        result = self.runtime.run(coro, shutdown=False)
        if extra_time > 0:
            self.runtime.run_for(extra_time)
        return result

    def settle(self, duration: float) -> None:
        """Advance virtual time (heartbeats, retransmits, timeouts)."""
        self.runtime.run_for(duration)

    def shutdown(self) -> None:
        """Tear the whole deployment down, cancelling in-flight work.

        Only needed when an experiment intentionally ends with calls
        still in progress (overload studies); normal runs drain
        naturally.
        """
        self.runtime.kernel.shutdown()

    # ------------------------------------------------------------------
    # Fault injection shorthands
    # ------------------------------------------------------------------

    def crash(self, pid: int) -> None:
        self.nodes[pid].crash()

    def recover(self, pid: int) -> None:
        self.nodes[pid].recover()

    def partition(self, side_a, side_b) -> None:
        self.fabric.partition(side_a, side_b)

    def heal(self) -> None:
        self.fabric.heal()

    def make_slow(self, pid: int, delay: float) -> None:
        """Give every link toward ``pid`` a large delay (performance
        failure)."""
        self.fabric.set_links_to(pid, LinkSpec(delay=delay, jitter=0.0))
