"""One-call construction of a complete single-service deployment.

:class:`ServiceCluster` is the historical entry point used by the
examples, the integration tests and the benchmark harness: one
:class:`~repro.core.config.ServiceSpec`, one server group, one
application.  It is now a thin wrapper over a one-service
:class:`~repro.core.deployment.Deployment` — the multi-service
deployment plane — exposing the same flat surface as before: per-pid
``grpcs``/``apps``/``dispatchers`` dicts, ``cluster.group``,
``cluster.call`` &c.  New code that needs several differently-configured
services on one fabric should use :class:`Deployment` directly.

Layout: servers get process ids ``1..n_servers`` (so the Total Order
leader is the highest-numbered server), clients get ids from
:data:`CLIENT_BASE_PID` up.  Every node runs the same composite
configuration, as in the paper's model; servers additionally carry the
application dispatcher on top.
"""

from __future__ import annotations

from typing import Any, Callable, Coroutine, Optional, Union

from repro.apps.dispatcher import ServerApp
from repro.core.config import ServiceSpec
from repro.core.deployment import CLIENT_BASE_PID, Deployment
from repro.core.messages import CallResult
from repro.errors import ConfigurationError, ReproError
from repro.net import LinkSpec, WireConfig
from repro.obs import Recorder
from repro.runtime import SimRuntime

__all__ = ["ServiceCluster", "CLIENT_BASE_PID"]

#: The wrapped service's name (also its group's name, as before).
_SERVICE_NAME = "servers"


class ServiceCluster:
    """A ready-to-run simulated deployment of one gRPC configuration."""

    def __init__(self, spec: ServiceSpec,
                 app_factory: Callable[[int], ServerApp], *,
                 n_servers: int = 3, n_clients: int = 1,
                 seed: int = 0,
                 default_link: LinkSpec = LinkSpec(),
                 membership: Optional[str] = None,
                 membership_delay: float = 0.0,
                 heartbeat_interval: float = 0.05,
                 keep_trace: bool = True,
                 observe: bool = False,
                 obs: Union[bool, Recorder] = False,
                 runtime: Optional[SimRuntime] = None,
                 wire: Optional[WireConfig] = None):
        """``membership`` is ``None``, ``"oracle"`` or ``"heartbeat"``.

        ``observe=True`` links a read-only Call Observer micro-protocol
        into every composite and exposes the shared timeline as
        ``cluster.call_log``.

        ``obs`` turns on the observability layer: ``True`` creates an
        enabled :class:`~repro.obs.Recorder` sharing the cluster's
        metrics registry; pass a pre-built recorder to control it
        yourself (a recorder with ``enabled=False`` keeps every
        instrumented component on its untraced path).  The metrics
        registry itself (``cluster.metrics``) always exists — the fabric
        counts messages through it regardless.
        """
        if n_servers < 1:
            raise ReproError("need at least one server")
        if n_servers >= CLIENT_BASE_PID:
            raise ConfigurationError(
                f"n_servers={n_servers} reaches the client pid range "
                f"(client pids start at CLIENT_BASE_PID={CLIENT_BASE_PID}); "
                f"server and client pids would collide")
        self.spec = spec
        self.deployment = Deployment(
            seed=seed, default_link=default_link, membership=membership,
            membership_delay=membership_delay,
            heartbeat_interval=heartbeat_interval, keep_trace=keep_trace,
            obs=obs, runtime=runtime, wire=wire)
        self._service = self.deployment.add_service(
            _SERVICE_NAME, spec, app_factory,
            servers=range(1, n_servers + 1),
            clients=range(CLIENT_BASE_PID, CLIENT_BASE_PID + n_clients),
            observe=observe)

        # The historical flat surface, aliased onto the deployment's
        # shared substrate and the single service's wiring.
        self.runtime = self.deployment.runtime
        self.metrics = self.deployment.metrics
        self.obs = self.deployment.obs
        self.fabric = self.deployment.fabric
        self.nodes = self.deployment.nodes
        self.demuxes = self.deployment.demuxes
        self.server_pids = self._service.server_pids
        self.client_pids = self._service.client_pids
        self.grpcs = self._service.grpcs
        self.dispatchers = self._service.dispatchers
        self.apps = self._service.apps
        self.call_log = self._service.call_log
        self._membership = self.deployment._membership

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def group(self):
        """The service's current server group (tracks rebinds)."""
        return self._service.group

    @property
    def trace(self):
        return self.fabric.trace

    def node(self, pid: int):
        return self.nodes[pid]

    def grpc(self, pid: int):
        return self.grpcs[pid]

    def app(self, pid: int) -> ServerApp:
        return self.apps[pid]

    def dispatcher(self, pid: int):
        return self.dispatchers[pid]

    @property
    def client(self) -> int:
        """The first client's pid (single-client shorthand)."""
        return self.client_pids[0]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def publish_runtime_stats(self) -> None:
        """Snapshot the runtime's scheduler counters into ``kernel.*``
        gauges, so they ride along in metric exports."""
        self.deployment.publish_runtime_stats()

    def export_trace(self, stream) -> int:
        """Write the recorded trace + metrics as JSONL; returns the line
        count.  Requires the obs layer (``obs=True``)."""
        return self.deployment.export_trace(stream)

    def format_flame(self, trace: Optional[int] = None) -> str:
        """Human-readable span tree(s); requires the obs layer."""
        return self.deployment.format_flame(trace)

    # ------------------------------------------------------------------
    # Driving the simulation
    # ------------------------------------------------------------------

    def spawn_client(self, pid: int, coro: Coroutine, *,
                     name: str = "") -> Any:
        """Run client code as a task owned by client node ``pid``.

        The task dies if that client crashes — required for the orphan
        experiments to be meaningful.
        """
        return self.deployment.spawn_client(pid, coro, name=name)

    async def call(self, client_pid: int, op: str, args: Any) -> CallResult:
        """Issue one call from ``client_pid`` (await from a client task)."""
        return await self.deployment.call(client_pid, _SERVICE_NAME, op,
                                          args)

    def call_and_run(self, op: str, args: Any, *,
                     client_pid: Optional[int] = None,
                     extra_time: float = 0.0) -> CallResult:
        """Blockingly run one call to completion from outside the kernel.

        Spawns the call on the client node, drives the simulation until it
        finishes, optionally runs ``extra_time`` more virtual seconds (to
        let retransmissions and acks drain), and returns the result.
        """
        return self.deployment.call_and_run(
            _SERVICE_NAME, op, args,
            client_pid=client_pid if client_pid is not None
            else self.client,
            extra_time=extra_time)

    def run_scenario(self, coro: Coroutine, *,
                     extra_time: float = 0.0) -> Any:
        """Run an arbitrary scenario coroutine to completion.

        The scenario runs as a plain kernel task (not owned by any node),
        so it survives node crashes; spawn node-owned work from within it
        via :meth:`spawn_client`.
        """
        return self.deployment.run_scenario(coro, extra_time=extra_time)

    def settle(self, duration: float) -> None:
        """Advance virtual time (heartbeats, retransmits, timeouts)."""
        self.deployment.settle(duration)

    def shutdown(self) -> None:
        """Tear the whole deployment down, cancelling in-flight work."""
        self.deployment.shutdown()

    # ------------------------------------------------------------------
    # Fault injection shorthands
    # ------------------------------------------------------------------

    def crash(self, pid: int) -> None:
        self.deployment.crash(pid)

    def recover(self, pid: int) -> None:
        self.deployment.recover(pid)

    def partition(self, side_a, side_b) -> None:
        self.deployment.partition(side_a, side_b)

    def heal(self) -> None:
        self.deployment.heal()

    def make_slow(self, pid: int, delay: float) -> None:
        """Give every link toward ``pid`` a large delay (performance
        failure)."""
        self.deployment.make_slow(pid, delay)
