"""Configuring a group RPC service (Section 5).

A :class:`ServiceSpec` names one variant per property; :func:`validate`
checks it against the Figure-4 dependency graph; :meth:`ServiceSpec.build`
instantiates the corresponding micro-protocols in composition order.  The
presets at the bottom give the classic semantics by name, including the
paper's Section-5 example (:func:`read_optimized`).

The encoded Figure-4 graph:

* choice groups (exactly one each): call semantics {synchronous,
  asynchronous}; orphan handling {none, avoid, terminate}; execution
  discipline {none, serial, atomic (which includes serial)};
  ordering {none, fifo, total};
* dependencies: Unique Execution -> Reliable Communication; FIFO Order ->
  Reliable Communication; Total Order -> Unique Execution, Reliable
  Communication, and *not* Bounded Termination; Atomic Execution ->
  Serial Execution; Interference Avoidance -> Reliable Communication;
* the minimal functional set {RPC Main, a call micro-protocol,
  Acceptance, Collation} is always configured.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, List, Tuple

from repro.core.framework import MicroProtocol
from repro.core.microprotocols import (
    ALL,
    Acceptance,
    AsynchronousCall,
    AtomicExecution,
    BoundedTermination,
    CausalOrder,
    Collation,
    FIFOOrder,
    InterferenceAvoidance,
    ProbeOrphanTermination,
    ReliableCommunication,
    RPCMain,
    SerialExecution,
    SynchronousCall,
    TerminateOrphan,
    TotalOrder,
    UniqueExecution,
    last_reply,
)
from repro.errors import ConfigurationError, DependencyError

__all__ = [
    "ServiceSpec",
    "validate",
    "at_least_once",
    "exactly_once",
    "at_most_once",
    "read_optimized",
    "replicated_state_machine",
    "CALL_CHOICES",
    "ORPHAN_CHOICES",
    "EXECUTION_CHOICES",
    "ORDERING_CHOICES",
]

CALL_CHOICES = ("synchronous", "asynchronous")
#: "probe" is an extension beyond the paper (probing-based orphan
#: detection, which Section 4.4.7 names but does not implement); the
#: Figure-4 enumeration counts only the paper's three policies.
ORPHAN_CHOICES = ("none", "avoid", "terminate", "probe")
PAPER_ORPHAN_CHOICES = ("none", "avoid", "terminate")
EXECUTION_CHOICES = ("none", "serial", "atomic")
#: "causal" is an extension beyond the paper (Section 2.2 mentions causal
#: order as a defined variant but implements only FIFO and Total); the
#: Figure-4 enumeration deliberately counts only the paper's three.
ORDERING_CHOICES = ("none", "fifo", "total", "causal")
PAPER_ORDERING_CHOICES = ("none", "fifo", "total")


@dataclass(frozen=True)
class ServiceSpec:
    """One point in the configuration space of Figure 4.

    ``acceptance`` counts required responses (:data:`~repro.core.
    microprotocols.ALL` for every live member).  ``collation`` is the
    ``(cum_func, init)`` pair handed to the Collation micro-protocol.
    """

    call: str = "synchronous"
    reliable: bool = True
    retrans_timeout: float = 0.05
    bounded: float = 0.0            # 0 disables Bounded Termination
    unique: bool = False
    execution: str = "none"
    ordering: str = "none"
    orphans: str = "none"
    acceptance: int = 1
    collation: Tuple[Callable[[Any, Any], Any], Any] = (last_reply, None)
    #: Parameters for the probe-based orphan detection extension.
    probe_interval: float = 0.1
    probe_missed_limit: int = 3
    #: Total Order's agreement-phase extension (the leader-change resync
    #: the paper omits "for brevity").  Needs a membership service.
    total_resync: bool = False
    total_resync_grace: float = 0.5
    #: Atomic Execution's delta-checkpoint extension (the optimization
    #: the paper proposes for large server states).
    atomic_delta: bool = False
    atomic_compact_every: int = 16

    # -- derived views ---------------------------------------------------

    @property
    def atomic(self) -> bool:
        return self.execution == "atomic"

    @property
    def failure_semantics(self) -> str:
        """The Figure-1 name of this spec's failure semantics."""
        from repro.core.properties import failure_semantics_name
        return failure_semantics_name(self.unique, self.atomic)

    def micro_protocol_names(self) -> List[str]:
        """The micro-protocols this spec selects, in composition order."""
        return [m.name for m in self.build()]

    def with_(self, **changes: Any) -> "ServiceSpec":
        """A modified copy (sweeps in the benchmarks use this)."""
        return replace(self, **changes)

    # -- building --------------------------------------------------------

    def build(self) -> List[MicroProtocol]:
        """Fresh micro-protocol instances for one composite.

        Validates first; composition order keeps equal-priority handlers
        (e.g. the orphan protocols at 2.2) in a deterministic sequence.
        """
        validate(self)
        micros: List[MicroProtocol] = [RPCMain()]
        if self.call == "synchronous":
            micros.append(SynchronousCall())
        else:
            micros.append(AsynchronousCall())
        if self.reliable:
            micros.append(ReliableCommunication(self.retrans_timeout))
        if self.bounded:
            micros.append(BoundedTermination(self.bounded))
        if self.unique:
            micros.append(UniqueExecution())
        if self.execution in ("serial", "atomic"):
            micros.append(SerialExecution())
        if self.execution == "atomic":
            micros.append(AtomicExecution(
                delta=self.atomic_delta,
                compact_every=self.atomic_compact_every))
        if self.ordering == "fifo":
            micros.append(FIFOOrder())
        elif self.ordering == "total":
            micros.append(TotalOrder(resync=self.total_resync,
                                     resync_grace=self.total_resync_grace))
        elif self.ordering == "causal":
            micros.append(CausalOrder())
        if self.orphans == "avoid":
            micros.append(InterferenceAvoidance())
        elif self.orphans == "terminate":
            micros.append(TerminateOrphan())
        elif self.orphans == "probe":
            micros.append(ProbeOrphanTermination(
                self.probe_interval, self.probe_missed_limit))
        cum_func, init = self.collation
        micros.append(Collation(cum_func, init))
        micros.append(Acceptance(self.acceptance))
        return micros


def validate(spec: ServiceSpec) -> None:
    """Reject specs that violate the Figure-4 graph; no-op when legal."""
    if spec.call not in CALL_CHOICES:
        raise ConfigurationError(f"unknown call semantics {spec.call!r}; "
                                 f"choose from {CALL_CHOICES}")
    if spec.orphans not in ORPHAN_CHOICES:
        raise ConfigurationError(f"unknown orphan policy {spec.orphans!r}; "
                                 f"choose from {ORPHAN_CHOICES}")
    if spec.execution not in EXECUTION_CHOICES:
        raise ConfigurationError(
            f"unknown execution discipline {spec.execution!r}; "
            f"choose from {EXECUTION_CHOICES}")
    if spec.ordering not in ORDERING_CHOICES:
        raise ConfigurationError(f"unknown ordering {spec.ordering!r}; "
                                 f"choose from {ORDERING_CHOICES}")
    if spec.bounded < 0:
        raise ConfigurationError("bounded termination time must be >= 0")
    if spec.acceptance < 1:
        raise ConfigurationError("acceptance limit must be >= 1")

    if spec.unique and not spec.reliable:
        raise DependencyError(
            "Unique_Execution requires Reliable_Communication: its "
            "reply store is only retired on ACKs, which presume "
            "retransmission")
    if spec.ordering == "fifo" and not spec.reliable:
        raise DependencyError(
            "FIFO_Order requires Reliable_Communication: a lost call "
            "would gate all its successors forever (Figure 2)")
    if spec.ordering == "total":
        if not spec.unique:
            raise DependencyError(
                "Total_Order requires Unique_Execution: it assumes any "
                "request is received at the server only once")
        if not spec.reliable:
            raise DependencyError(
                "Total_Order requires Reliable_Communication")
        if spec.bounded:
            raise DependencyError(
                "Total_Order assumes Bounded_Termination is not present: "
                "an abandoned-but-ordered call would stall the sequence")
    if spec.ordering == "causal" and not spec.reliable:
        raise DependencyError(
            "Causal_Order requires Reliable_Communication: a call parked "
            "on its dependencies needs those dependencies to eventually "
            "arrive")
    if spec.orphans == "avoid" and not spec.reliable:
        raise DependencyError(
            "Interference_Avoidance requires Reliable_Communication: it "
            "drops deferred calls, relying on client retransmission")


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

def at_least_once(**overrides: Any) -> ServiceSpec:
    """Figure 1 row 1: retransmission without duplicate filtering."""
    return ServiceSpec(reliable=True, unique=False,
                       execution="none").with_(**overrides)


def exactly_once(**overrides: Any) -> ServiceSpec:
    """Figure 1 row 2: unique execution, no atomicity guarantee."""
    return ServiceSpec(reliable=True, unique=True,
                       execution="none").with_(**overrides)


def at_most_once(**overrides: Any) -> ServiceSpec:
    """Figure 1 row 3: unique + atomic execution."""
    return ServiceSpec(reliable=True, unique=True,
                       execution="atomic").with_(**overrides)


def read_optimized(timebound: float = 1.0, **overrides: Any) -> ServiceSpec:
    """The paper's Section-5 example configuration.

    "A simple group RPC designed to provide quick response time to
    read-only requests ... 'at least once' semantics, acceptance one,
    synchronous call semantics, and bounded termination time", with
    reliability in the RPC layer.
    """
    return ServiceSpec(call="synchronous", reliable=True,
                       bounded=timebound, acceptance=1).with_(**overrides)


def replicated_state_machine(group_size: int,
                             **overrides: Any) -> ServiceSpec:
    """Totally ordered, exactly-once, all-replica configuration.

    The classic replicated-server deployment the paper's introduction
    motivates: every replica executes every call in the same total order.
    """
    return ServiceSpec(call="synchronous", reliable=True, unique=True,
                       ordering="total",
                       acceptance=group_size).with_(**overrides)
