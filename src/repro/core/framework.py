"""Micro-protocols and composite protocols (Section 3).

A **micro-protocol** is "a collection of event handlers, which are
procedure-like segments of code that are invoked when an event occurs";
a **composite protocol** is "the object formed by the linking of a
collection of micro-protocols and associated framework".  The composite
exports the x-kernel Uniform Protocol Interface so it composes
hierarchically with other protocols, "even though its internal structure
is richer than a standard x-kernel protocol".

:class:`MicroProtocol` is the base class all of Section 4's
micro-protocols derive from; :class:`CompositeProtocol` owns the
:class:`~repro.core.events.EventBus` and the shared data the
micro-protocols operate on.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.events import EventBus, Handler, Registration
from repro.errors import ConfigurationError
from repro.runtime.base import Runtime
from repro.xkernel.upi import Protocol

__all__ = ["MicroProtocol", "CompositeProtocol"]


class MicroProtocol:
    """Base class for micro-protocols.

    Subclasses implement :meth:`configure`, registering their event
    handlers with the framework — the moral equivalent of the
    ``register(...)`` statements at the bottom of each micro-protocol in
    the paper's pseudocode.  Construction parameters (timeouts, acceptance
    limits, collation functions) are ordinary ``__init__`` arguments.
    """

    #: Human-readable name; doubles as the configuration-graph key.
    protocol_name: str = ""

    def __init__(self) -> None:
        self.composite: Optional["CompositeProtocol"] = None
        #: Set by :meth:`detach` when a live adaptation swaps this
        #: instance out.  In-flight handlers of a detached instance may
        #: still be unwinding; their re-registration attempts (a
        #: self-rearming TIMEOUT loop, say) are dropped here, at the
        #: instance, so they cannot ghost handlers back into the bus
        #: even when a same-named replacement has already registered.
        self.detached = False

    # -- wiring ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.protocol_name or type(self).__name__

    def attach(self, composite: "CompositeProtocol") -> None:
        if self.composite is not None:
            raise ConfigurationError(
                f"{self.name} is already attached to a composite")
        self.composite = composite
        self.configure()

    def configure(self) -> None:
        """Register event handlers; runs when attached and on reboot."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reinitialize *volatile* state after a site crash.

        Called by the composite during recovery, just before
        :meth:`configure` re-installs the handlers, modelling the process
        being relinked from scratch at reboot.  State the paper marks
        ``stable`` (e.g. Atomic Execution's checkpoint addresses) must NOT
        be cleared here.  Default: nothing to reset.
        """

    def unconfigure(self) -> None:
        """Undo :meth:`configure`'s effects on the composite's *shared*
        state when this instance is swapped out of a running composite.

        Handler deregistration is the framework's job
        (:meth:`EventBus.retire_owner`); this hook is only for side
        effects configure() left outside the bus — an installed execution
        gate, a declared HOLD property.  Default: nothing to undo.
        """

    def detach(self) -> None:
        """Remove this instance from its composite (live adaptation).

        Runs :meth:`unconfigure`, retires every bus registration tagged
        with this instance's name, and marks the instance detached so
        in-flight handlers cannot re-register.  The composite reference
        is kept: handlers still unwinding may touch shared state through
        it.  A detached instance is never re-attached — adaptation
        builds fresh instances.
        """
        if self.composite is None or self.detached:
            return
        self.detached = True
        self.unconfigure()
        self.bus.retire_owner(self.name)

    # -- framework operations (Section 3) --------------------------------

    @property
    def bus(self) -> EventBus:
        assert self.composite is not None
        return self.composite.bus

    @property
    def runtime(self) -> Runtime:
        assert self.composite is not None
        return self.composite.runtime

    def register(self, event: str, handler: Handler,
                 priority: Optional[float] = None) -> Registration:
        if self.detached:
            # A swapped-out instance's handler unwinding after detach():
            # hand back an inert registration instead of re-wiring it.
            return Registration(event, handler, priority or 0.0, -1,
                                self.name)
        # The owner tag attributes dispatch records (and per-handler
        # virtual-time costs) to this micro-protocol in the obs layer.
        return self.bus.register(event, handler, priority, owner=self.name)

    def deregister(self, event: str, handler: Handler) -> bool:
        return self.bus.deregister(event, handler)

    async def trigger(self, event: str, *args: Any) -> bool:
        return await self.bus.trigger(event, *args)

    def cancel_event(self) -> None:
        self.bus.cancel_event()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MicroProtocol {self.name}>"


class CompositeProtocol(Protocol):
    """A framework instance plus the micro-protocols linked into it.

    Exposes the x-kernel UPI (push/pop) so the composite can sit in a
    protocol stack between the user protocol and the transport.  Concrete
    composites (:class:`repro.core.grpc.GroupRPC`) add the shared data
    structures their micro-protocols need.
    """

    def __init__(self, name: str, runtime: Runtime,
                 spawner: Optional[Any] = None):
        super().__init__(name)
        self.runtime = runtime
        self.bus = EventBus(runtime, spawner)
        self.micro_protocols: List[MicroProtocol] = []
        # Resolved once at construction (attach-time check; ``None``
        # means tracing is disabled and no span code runs).
        self.obs = getattr(runtime, "obs", None)

    def add(self, *micros: MicroProtocol) -> "CompositeProtocol":
        """Link micro-protocols into this composite (order preserved).

        This is the paper's parallel composition operator ``||``: each
        micro-protocol's ``configure`` runs, installing its handlers.
        """
        for micro in micros:
            self.micro_protocols.append(micro)
            micro.attach(self)
            if self.obs is not None:
                self.obs.record_event("micro.attach", node=self.bus.node_id,
                                      micro=micro.name,
                                      composite=self.name)
        return self

    def unlink(self, micro: MicroProtocol) -> None:
        """Swap one micro-protocol out of the running composite.

        The inverse of :meth:`add` for live adaptation: the instance is
        detached (handlers retired, shared-state side effects undone) and
        dropped from the linked list.  Callers are responsible for the
        protocol-level safety of removing it (the adaptation engine
        drains the composite first).
        """
        micro.detach()
        if micro in self.micro_protocols:
            self.micro_protocols.remove(micro)
        if self.obs is not None:
            self.obs.record_event("micro.detach", node=self.bus.node_id,
                                  micro=micro.name, composite=self.name)

    def micro(self, name: str) -> MicroProtocol:
        """Look up a linked micro-protocol by name."""
        for micro in self.micro_protocols:
            if micro.name == name:
                return micro
        raise KeyError(name)

    def has_micro(self, name: str) -> bool:
        return any(m.name == name for m in self.micro_protocols)
