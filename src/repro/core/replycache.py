"""Per-service reply caching: answering retried calls across rebinds.

The Unique Execution micro-protocol filters duplicates *inside one
server group*: its ``OldResults`` table lives on the servers and dies
with them.  After a reconfiguration — a rebind to a shrunken group, a
key range migrated to a different shard — a client's retry can land on
servers that never saw the original call, so the server-side filter
cannot help.  The :class:`ReplyCache` extends the filter across
reconfigurations by keeping a deployment-side LRU of
``(client, call_id) -> CallResult`` per service: a retry that names the
original call id is answered from the cache without re-executing the
procedure anywhere.

The cache only stores *completed, successful* results (a TIMEOUT is not
a reply; retrying it must really re-issue), and it is bounded: the
least-recently-used entry is evicted once ``capacity`` is exceeded, the
standard answer to the paper's open question of when a stored reply may
be discarded without an explicit client acknowledgement.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.core.messages import CallResult

__all__ = ["ReplyCache"]


class ReplyCache:
    """A bounded LRU of ``(client_pid, call_id) -> CallResult``."""

    def __init__(self, capacity: int = 128):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], CallResult]" = \
            OrderedDict()
        #: Placement-view epoch each reply completed under (tracked only
        #: for entries stored with ``epoch=``): a retry answered from the
        #: cache can be audited against the epoch the original ran in.
        self._epochs: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, client_pid: int, call_id: int) -> Optional[CallResult]:
        """The cached reply for a call, refreshing its recency."""
        entry = self._entries.get((client_pid, call_id))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end((client_pid, call_id))
        self.hits += 1
        return entry

    def epoch_of(self, client_pid: int, call_id: int) -> Optional[int]:
        """The view epoch a cached reply completed under, if recorded."""
        return self._epochs.get((client_pid, call_id))

    def put(self, client_pid: int, call_id: int,
            result: CallResult, *, epoch: Optional[int] = None) -> None:
        """Remember a completed reply (successful results only make
        sense here; the caller filters).  ``epoch`` optionally records
        the placement-view epoch the call completed under."""
        if self.capacity == 0:
            return
        key = (client_pid, call_id)
        self._entries[key] = result
        self._entries.move_to_end(key)
        if epoch is not None:
            self._epochs[key] = epoch
            self._epochs.move_to_end(key)
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._epochs.pop(evicted, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ReplyCache {len(self._entries)}/{self.capacity} "
                f"hits={self.hits} misses={self.misses}>")
