"""A compact, hand-fused point-to-point RPC (ablation baseline).

Section 4.1: "Point-to-point RPC can be seen as a special case in this
implementation, although in practice it would likely be implemented
separately to obtain a more compact and efficient protocol."  This module
is that separate implementation: one protocol object providing
synchronous calls with reliability (retransmission + acks), exactly-once
execution (duplicate filter + reply cache) and optional bounded
termination — the same semantics as the composite
``ServiceSpec(unique=True, bounded=...)`` for a group of one, but with
every property fused into a single state machine with no event bus, no
handler dispatch, and no HOLD bookkeeping.

The X7 benchmark compares the two: semantics identical, CPU cost not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from repro.core.messages import CallResult, Status
from repro.errors import ConfigurationError
from repro.net.message import ProcessId
from repro.net.node import Node
from repro.xkernel.upi import Protocol

__all__ = ["P2PMsg", "PointToPointRPC"]


@dataclass
class P2PMsg:
    """Wire message of the compact protocol (own type, own demux route)."""

    kind: str                  # "call" | "reply" | "ack"
    id: int = 0
    op: str = ""
    args: Any = None
    sender: ProcessId = -1
    inc: int = 0


_Key = Tuple[ProcessId, int, int]


class _Pending:
    __slots__ = ("sem", "args", "status", "acked")

    def __init__(self, sem: Any):
        self.sem = sem
        self.args: Any = None
        self.status = Status.WAITING
        self.acked = False


class PointToPointRPC(Protocol):
    """Monolithic exactly-once synchronous RPC between two sites."""

    def __init__(self, node: Node, *, retrans_timeout: float = 0.05,
                 timebound: float = 0.0):
        super().__init__(f"p2p@{node.pid}")
        self.node = node
        self.runtime = node.runtime
        self.retrans_timeout = retrans_timeout
        self.timebound = timebound
        self._next_id = 1
        self._pending: Dict[int, _Pending] = {}
        self._pending_dest: Dict[int, ProcessId] = {}
        self._pending_msg: Dict[int, P2PMsg] = {}
        self._old_calls: Set[_Key] = set()
        self._old_results: Dict[_Key, Any] = {}
        self._retransmitter: Any = None
        node.crash_listeners.append(self._on_crash)
        node.recover_listeners.append(self._on_recover)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    async def call(self, op: str, args: Any,
                   server: ProcessId) -> CallResult:
        """Synchronous exactly-once call to ``server``."""
        call_id = self._next_id
        self._next_id += 1
        pending = _Pending(self.runtime.semaphore(0))
        self._pending[call_id] = pending
        msg = P2PMsg("call", call_id, op, args, self.node.pid,
                     self.node.incarnation)
        self._pending_dest[call_id] = server
        self._pending_msg[call_id] = msg
        self._ensure_retransmitter()
        timer = None
        if self.timebound:
            timer = self.runtime.call_later(
                self.timebound, lambda: self._expire(call_id))
        await self._send(server, msg)
        await pending.sem.acquire()
        if timer is not None:
            # Void the expiry timer as soon as the call resolves; a
            # long-timebound workload would otherwise grow the kernel's
            # timer heap by one dead entry per call until the distant
            # expiries drained (the kernel purges cancelled entries).
            timer.cancel()
        self._pending.pop(call_id, None)
        self._pending_dest.pop(call_id, None)
        self._pending_msg.pop(call_id, None)
        return CallResult(call_id, pending.status, pending.args)

    def _expire(self, call_id: int) -> None:
        pending = self._pending.get(call_id)
        if pending is not None and pending.status is Status.WAITING:
            pending.status = Status.TIMEOUT
            pending.sem.release()

    def _ensure_retransmitter(self) -> None:
        if self._retransmitter is None or \
                getattr(self._retransmitter, "done", False):
            self._retransmitter = self.node.spawn(
                self._retransmit_loop(), name=f"{self.name}-retrans",
                daemon=True)

    async def _retransmit_loop(self) -> None:
        while True:
            await self.runtime.sleep(self.retrans_timeout)
            if not self._pending:
                continue
            for call_id, pending in list(self._pending.items()):
                if pending.acked or pending.status is not Status.WAITING:
                    continue
                await self._send(self._pending_dest[call_id],
                                 self._pending_msg[call_id])

    # ------------------------------------------------------------------
    # Wire handling (both sides)
    # ------------------------------------------------------------------

    async def _send(self, dest: ProcessId, msg: P2PMsg) -> None:
        if self.lower is None:
            raise ConfigurationError(f"{self.name} has no transport")
        await self.lower.push(dest, msg)

    async def pop(self, msg: P2PMsg, sender: ProcessId) -> None:
        if msg.kind == "call":
            await self._handle_call(msg)
        elif msg.kind == "reply":
            await self._handle_reply(msg)
        elif msg.kind == "ack":
            self._old_results.pop((msg.sender, msg.inc, msg.id), None)

    async def _handle_call(self, msg: P2PMsg) -> None:
        key = (msg.sender, msg.inc, msg.id)
        if key in self._old_results:
            reply = P2PMsg("reply", msg.id, msg.op,
                           self._old_results[key], self.node.pid, msg.inc)
            await self._send(msg.sender, reply)
            return
        if key in self._old_calls:
            return   # in progress or already acked
        self._old_calls.add(key)
        if self.upper is None:
            raise ConfigurationError(f"{self.name} has no server above")
        result = await self.upper.pop(msg.op, msg.args)
        self._old_results[key] = result
        reply = P2PMsg("reply", msg.id, msg.op, result, self.node.pid,
                       msg.inc)
        await self._send(msg.sender, reply)

    async def _handle_reply(self, msg: P2PMsg) -> None:
        ack = P2PMsg("ack", msg.id, "", None, self.node.pid, msg.inc)
        await self._send(msg.sender, ack)
        pending = self._pending.get(msg.id)
        if pending is None or msg.inc != self.node.incarnation:
            return
        pending.acked = True
        if pending.status is Status.WAITING:
            pending.args = msg.args
            pending.status = Status.OK
            pending.sem.release()

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def _on_crash(self) -> None:
        self._pending.clear()
        self._pending_dest.clear()
        self._pending_msg.clear()
        self._old_calls.clear()
        self._old_results.clear()
        self._retransmitter = None

    def _on_recover(self, incarnation: int) -> None:
        self._next_id = 1
