"""Shared data structures of the gRPC framework (Section 4.2).

The framework half of a composite protocol "supports shared data (e.g.,
messages) that can be accessed by the micro-protocols configured into the
framework".  For gRPC that shared data is:

* :class:`ClientTable` (``pRPC``) — pending calls at the client, each a
  :class:`ClientRecord` with the per-call semaphore the client thread
  waits on, the required-response count ``nres``, and the per-server
  pending/acked/done bookkeeping;
* :class:`ServerTable` (``sRPC``) — pending calls at a server, each a
  :class:`ServerRecord` with the per-call *hold array*;
* :class:`HoldRegistry` (``HOLD``) — which properties must be satisfied
  before a call may be forwarded up to the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.core.messages import CallKey, Status
from repro.net.message import Group, ProcessId

__all__ = ["PendingEntry", "ClientRecord", "ClientTable",
           "ServerRecord", "ServerTable", "HoldRegistry"]


@dataclass
class PendingEntry:
    """Per-server state within a client record (the ``waiting_list``).

    ``acked`` — the server has acknowledged (or replied to) the call, so
    Reliable Communication stops retransmitting to it.
    ``done`` — the server's reply has been counted by Acceptance (or the
    server was declared failed by the membership service).
    """

    acked: bool = False
    done: bool = False


@dataclass
class ClientRecord:
    """One pending call at the client (the paper's ``Client_Record``)."""

    id: int
    op: str
    args: Any
    server: Group
    sem: Any                      # semaphore the client thread waits on
    nres: int = 0                 # responses still required
    pending: Dict[ProcessId, PendingEntry] = field(default_factory=dict)
    status: Status = Status.WAITING
    #: Incarnation of the client when the call was issued.
    inc: int = 0
    #: Virtual time the call entered gRPC; used by the bench harness.
    issued_at: float = 0.0
    #: How many replies have been folded in by Collation.
    replies_seen: int = 0
    #: The original request arguments, kept separately because ``args``
    #: becomes the collation accumulator once Collation initializes it
    #: (the paper's retransmission path reads ``pRPC(id).args``, which
    #: would resend the accumulator — deviation #5 in DESIGN.md).
    request_args: Any = None
    #: Micro-protocol piggyback data, copied onto every transmission of
    #: this call (set during NEW_RPC_CALL, e.g. by Causal Order).
    annotations: Dict[str, Any] = field(default_factory=dict)
    #: Per-call cleanup callbacks run when the record is retired from the
    #: table (e.g. Bounded Termination disarming its expiry TIMEOUT).
    #: ``None`` until a micro-protocol attaches one, so the common
    #: unbounded call pays no list allocation.
    disposers: Optional[List[Any]] = None

    def add_disposer(self, fn: Any) -> None:
        """Attach a cleanup callback to run when this record retires."""
        if self.disposers is None:
            self.disposers = [fn]
        else:
            self.disposers.append(fn)

    @classmethod
    def fresh(cls, call_id: int, op: str, args: Any, server: Group,
              sem: Any, inc: int, now: float) -> "ClientRecord":
        return cls(id=call_id, op=op, args=args, server=server, sem=sem,
                   pending={p: PendingEntry() for p in server},
                   inc=inc, issued_at=now, request_args=args)


class ClientTable:
    """``pRPC``: pending calls indexed by call id.

    The table itself is volatile client state; the ``mutex`` guarding it is
    created by the composite from its runtime (the paper's
    ``pRPC_mutex``).
    """

    def __init__(self) -> None:
        self._records: Dict[int, ClientRecord] = {}

    def __contains__(self, call_id: int) -> bool:
        return call_id in self._records

    def __getitem__(self, call_id: int) -> ClientRecord:
        return self._records[call_id]

    def get(self, call_id: int) -> Optional[ClientRecord]:
        return self._records.get(call_id)

    def add(self, record: ClientRecord) -> None:
        self._records[record.id] = record

    def remove(self, call_id: int) -> Optional[ClientRecord]:
        record = self._records.pop(call_id, None)
        if record is not None and record.disposers is not None:
            for dispose in record.disposers:
                dispose()
            record.disposers = None
        return record

    def ids(self) -> List[int]:
        return list(self._records)

    def records(self) -> List[ClientRecord]:
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()


@dataclass
class ServerRecord:
    """One pending call at a server (the paper's ``Server_Record``)."""

    key: CallKey
    op: str
    args: Any
    server: Group
    client: ProcessId
    #: Client incarnation the call belongs to.
    inc: int
    #: Which gating properties have been satisfied for this call.
    hold: Dict[str, bool] = field(default_factory=dict)
    #: Set once the call has been handed to the server procedure, so a
    #: late-satisfied property cannot execute it a second time.
    executing: bool = False
    #: Task handle currently executing the server procedure for this call;
    #: Terminate Orphan kills orphans through it (the paper's
    #: ``kill(thread)``).
    executor: Any = None
    #: Span context the call arrived with (``NetMsg.annotations`` under
    #: :data:`repro.obs.recorder.CTX_KEY`); lets an ordering-gated
    #: execution — which runs in a *different* dispatch chain than the
    #: arrival — still parent its ``server.execute`` span correctly.
    obs_ctx: Any = None

    @property
    def call_id(self) -> int:
        return self.key[2]


class ServerTable:
    """``sRPC``: pending calls at the server, keyed by :data:`CallKey`."""

    def __init__(self) -> None:
        self._records: Dict[CallKey, ServerRecord] = {}

    def __contains__(self, key: CallKey) -> bool:
        return key in self._records

    def __getitem__(self, key: CallKey) -> ServerRecord:
        return self._records[key]

    def get(self, key: CallKey) -> Optional[ServerRecord]:
        return self._records.get(key)

    def add(self, record: ServerRecord) -> None:
        self._records[record.key] = record

    def remove(self, key: CallKey) -> Optional[ServerRecord]:
        return self._records.pop(key, None)

    def keys(self) -> List[CallKey]:
        return list(self._records)

    def records(self) -> List[ServerRecord]:
        return list(self._records.values())

    def __iter__(self) -> Iterator[ServerRecord]:
        return iter(list(self._records.values()))

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()


class HoldRegistry:
    """``HOLD``: which properties gate forwarding a call to the server.

    Micro-protocols that must approve every call before execution (RPC
    Main itself, FIFO Order, Total Order) declare their property here;
    :meth:`satisfied` compares a call's per-record hold array against the
    registry, which is exactly the loop in the paper's ``forward_up``.
    """

    def __init__(self) -> None:
        self._required: Dict[str, bool] = {}

    def declare(self, prop: str) -> None:
        """Set ``HOLD[prop] = true``: calls wait for this property."""
        self._required[prop] = True

    def retract(self, prop: str) -> None:
        """Set ``HOLD[prop] = false``: stop gating calls on it.

        Used when a live adaptation removes the micro-protocol that
        declared the property — without this, every post-swap call would
        wait forever for a signature no handler will ever provide.
        """
        self._required.pop(prop, None)

    def required(self) -> List[str]:
        return [name for name, needed in self._required.items() if needed]

    def satisfied(self, hold: Dict[str, bool]) -> bool:
        """True when every required property is marked in ``hold``."""
        return all(hold.get(name, False) for name in self.required())

    def __contains__(self, prop: str) -> bool:
        return self._required.get(prop, False)
