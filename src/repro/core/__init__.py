"""The paper's primary contribution: the configurable gRPC composite.

Submodules: the event framework (:mod:`repro.core.events`,
:mod:`repro.core.framework`), shared state (:mod:`repro.core.state`),
message types (:mod:`repro.core.messages`), the composite itself
(:mod:`repro.core.grpc`), the micro-protocols
(:mod:`repro.core.microprotocols`), configuration and enumeration
(:mod:`repro.core.config`, :mod:`repro.core.enumerate`), the property
taxonomy (:mod:`repro.core.properties`) and the cluster builder
(:mod:`repro.core.service`).
"""

from repro.core.config import (
    ServiceSpec,
    at_least_once,
    at_most_once,
    exactly_once,
    read_optimized,
    replicated_state_machine,
    validate,
)
from repro.core.events import LOWEST_PRIORITY, TIMEOUT, EventBus
from repro.core.framework import CompositeProtocol, MicroProtocol
from repro.core.grpc import (
    CALL_FROM_USER,
    MEMBERSHIP_CHANGE,
    MSG_FROM_NETWORK,
    NEW_RPC_CALL,
    RECOVERY,
    REPLY_FROM_SERVER,
    GroupRPC,
)
from repro.core.messages import (
    CallResult,
    MemChange,
    NetMsg,
    NetOp,
    Status,
    UserMsg,
    UserOp,
)
from repro.core.deployment import CLIENT_BASE_PID, Deployment, Service
from repro.core.replycache import ReplyCache
from repro.core.service import ServiceCluster

__all__ = [
    "ServiceSpec",
    "validate",
    "at_least_once",
    "exactly_once",
    "at_most_once",
    "read_optimized",
    "replicated_state_machine",
    "EventBus",
    "TIMEOUT",
    "LOWEST_PRIORITY",
    "CompositeProtocol",
    "MicroProtocol",
    "GroupRPC",
    "CALL_FROM_USER",
    "NEW_RPC_CALL",
    "REPLY_FROM_SERVER",
    "MSG_FROM_NETWORK",
    "RECOVERY",
    "MEMBERSHIP_CHANGE",
    "NetMsg",
    "NetOp",
    "UserMsg",
    "UserOp",
    "Status",
    "MemChange",
    "CallResult",
    "ServiceCluster",
    "Deployment",
    "Service",
    "CLIENT_BASE_PID",
    "ReplyCache",
]
