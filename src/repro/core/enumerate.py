"""Counting the buildable RPC services (Section 5 / Figure 4).

The paper fixes the acceptance and collation policies ("for a group of n
servers there are n possible acceptance policies and an infinite number
of possible collation policies"), then counts micro-protocol selections:
2 call semantics x 3 orphan policies x 3 execution disciplines x 11 legal
combinations of {unique execution, reliable communication, bounded
termination, ordering} = **198** possible group RPC services.

:func:`enumerate_services` reproduces that number mechanically by walking
the full product space and applying the dependency rules.  Two counts are
reported because the paper's arithmetic treats its four clusters as
independent, while its own Figure 4 also draws Interference Avoidance ->
Reliable Communication, which (strictly enforced) removes the 12
combinations pairing interference avoidance with unreliable
communication:

* ``paper_count`` — dependencies applied within the
  unique/reliable/termination/ordering cluster only: 198;
* ``strict_count`` — every Figure-4 edge enforced (what
  :func:`repro.core.config.validate` accepts): 186.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.config import (
    CALL_CHOICES,
    EXECUTION_CHOICES,
    PAPER_ORDERING_CHOICES,
    PAPER_ORPHAN_CHOICES,
    ServiceSpec,
    validate,
)
from repro.errors import ConfigurationError

__all__ = ["EnumerationResult", "enumerate_services",
           "iter_cluster_combinations", "figure4_edges",
           "figure4_choice_groups"]


@dataclass(frozen=True)
class EnumerationResult:
    """Counts reproducing the Section-5 arithmetic."""

    call_choices: int
    orphan_choices: int
    execution_choices: int
    cluster_choices: int          # the paper's "11"
    paper_count: int              # 2 * 3 * 3 * 11 = 198
    strict_count: int             # every Figure-4 edge enforced
    strict_specs: Tuple[ServiceSpec, ...]


def iter_cluster_combinations() -> Iterator[Tuple[bool, bool, bool, str]]:
    """Legal (unique, reliable, bounded, ordering) combinations.

    Applies only the intra-cluster dependencies the paper's count uses:
    unique -> reliable; fifo -> reliable; total -> unique & reliable &
    unbounded.  Yields exactly 11 tuples.
    """
    for unique, reliable, bounded, ordering in itertools.product(
            (False, True), (False, True), (False, True),
            PAPER_ORDERING_CHOICES):
        if unique and not reliable:
            continue
        if ordering == "fifo" and not reliable:
            continue
        if ordering == "total" and not (unique and reliable
                                        and not bounded):
            continue
        yield unique, reliable, bounded, ordering


def enumerate_services() -> EnumerationResult:
    """Walk the full product space and count legal services both ways."""
    cluster = list(iter_cluster_combinations())
    paper_count = (len(CALL_CHOICES) * len(PAPER_ORPHAN_CHOICES)
                   * len(EXECUTION_CHOICES) * len(cluster))

    strict: List[ServiceSpec] = []
    for call, orphans, execution in itertools.product(
            CALL_CHOICES, PAPER_ORPHAN_CHOICES, EXECUTION_CHOICES):
        for unique, reliable, bounded, ordering in cluster:
            spec = ServiceSpec(call=call, orphans=orphans,
                               execution=execution, unique=unique,
                               reliable=reliable,
                               bounded=1.0 if bounded else 0.0,
                               ordering=ordering)
            try:
                validate(spec)
            except ConfigurationError:
                continue
            strict.append(spec)

    return EnumerationResult(
        call_choices=len(CALL_CHOICES),
        orphan_choices=len(PAPER_ORPHAN_CHOICES),
        execution_choices=len(EXECUTION_CHOICES),
        cluster_choices=len(cluster),
        paper_count=paper_count,
        strict_count=len(strict),
        strict_specs=tuple(strict),
    )


def figure4_edges() -> List[Tuple[str, str]]:
    """The dependency edges of Figure 4 as (dependent, prerequisite)."""
    return [
        ("Unique_Execution", "Reliable_Communication"),
        ("FIFO_Order", "Reliable_Communication"),
        ("Total_Order", "Unique_Execution"),
        ("Total_Order", "Reliable_Communication"),
        ("Total_Order", "NOT Bounded_Termination"),
        ("Atomic_Execution", "Serial_Execution"),
        ("Interference_Avoidance", "Reliable_Communication"),
        ("ALL_Acceptance", "Membership_Service"),
    ]


def figure4_choice_groups() -> List[Tuple[str, ...]]:
    """Figure 4's bold choice boxes ("any one, but only one")."""
    return [
        ("Synchronous_Call", "Asynchronous_Call"),
        ("Interference_Avoidance", "Terminate_Orphan", "(ignore orphans)"),
        ("Serial_Execution", "Serial+Atomic_Execution", "(no discipline)"),
        ("FIFO_Order", "Total_Order", "(no order)"),
    ]
