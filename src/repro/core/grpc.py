"""The gRPC composite protocol (Section 4).

:class:`GroupRPC` is the composite protocol the paper calls ``gRPC``: the
framework instance holding the shared data structures of Section 4.2
(``pRPC``, ``sRPC``, ``HOLD``, the incarnation number, the live-member
set, the ``serial`` semaphore), the six events of Section 4.3, and the
x-kernel UPI plumbing to the user protocol above and the unreliable
transport below.

A service is built by linking micro-protocols into it::

    grpc = GroupRPC(node)
    grpc.add(RPCMain(), SynchronousCall(), ReliableCommunication(0.05),
             BoundedTermination(1.0), Collation(last_reply), Acceptance(1))

or, preferably, through :mod:`repro.core.config`, which also validates
the Figure-4 dependency graph.

Client API
----------

``await grpc.call(op, args, group)`` issues a call from the current task
(which plays the paper's client thread).  Under Synchronous Call it blocks
until the call completes and returns a
:class:`~repro.core.messages.CallResult`; under Asynchronous Call it
returns immediately with a WAITING result whose ``id`` can later be
redeemed with ``await grpc.request(call_id)``.

Crash/recovery model
--------------------

The composite subscribes to its node's lifecycle: on crash all volatile
state dies with the tasks (tables cleared, pending TIMEOUTs disarmed,
handler wiring dropped); on recovery each micro-protocol is reset and
re-configured — the process being relinked at reboot — and the ``RECOVERY``
event fires with the new incarnation number.
"""

from __future__ import annotations

from typing import Any, Callable, Coroutine, Iterable, Optional, Set

from repro.core.framework import CompositeProtocol, MicroProtocol
from repro.core.messages import (
    CallResult,
    MemChange,
    NetMsg,
    Status,
    UserMsg,
    UserOp,
)
from repro.core.state import ClientTable, HoldRegistry, ServerTable
from repro.errors import ConfigurationError, NodeDown
from repro.obs.recorder import CTX_KEY as OBS_CTX
from repro.net.message import Group, ProcessId
from repro.net.node import Node

__all__ = [
    "GroupRPC",
    "PendingCall",
    "gather_calls",
    "ADAPT_EPOCH_KEY",
    "CALL_FROM_USER",
    "NEW_RPC_CALL",
    "REPLY_FROM_SERVER",
    "MSG_FROM_NETWORK",
    "RECOVERY",
    "MEMBERSHIP_CHANGE",
    "CALL_ABORTED",
]

# The events of Section 4.3.  All are blocking and sequential.
CALL_FROM_USER = "CALL_FROM_USER"
NEW_RPC_CALL = "NEW_RPC_CALL"
REPLY_FROM_SERVER = "REPLY_FROM_SERVER"
MSG_FROM_NETWORK = "MSG_FROM_NETWORK"
RECOVERY = "RECOVERY"
MEMBERSHIP_CHANGE = "MEMBERSHIP_CHANGE"
#: Extension event: a pending server-side call was forcibly abandoned
#: (orphan kill).  Micro-protocols holding per-call bookkeeping (Unique
#: Execution's OldCalls, Causal Order's waiting set) purge the key so a
#: live client's retransmission gets a fresh admission instead of being
#: discarded as a duplicate.
CALL_ABORTED = "CALL_ABORTED"

#: Annotation key carrying the sender's adaptation epoch on every wire
#: message of an adapted composite.  Never stamped (and never checked)
#: while ``adapt_epoch`` is 0, so unadapted deployments stay byte-
#: identical on the wire.
ADAPT_EPOCH_KEY = "adapt.epoch"


class GroupRPC(CompositeProtocol):
    """The gRPC composite protocol bound to one simulated site."""

    def __init__(self, node: Node, *, name: str = "", service: str = ""):
        super().__init__(name or f"gRPC@{node.pid}",
                         node.runtime, spawner=self._node_spawn)
        self.node = node
        self.my_id: ProcessId = node.pid
        #: Name of the deployment service this composite implements.
        #: Stamped into every transmitted wire message (the demux key for
        #: nodes hosting several composites) and onto every span this
        #: composite emits; ``""`` for standalone composites.
        self.service = service

        # ---- shared data (Section 4.2) --------------------------------
        self.pRPC = ClientTable()
        self.pRPC_mutex = self.runtime.lock()
        self.sRPC = ServerTable()
        self.sRPC_mutex = self.runtime.lock()
        self.hold = HoldRegistry()
        self.inc_number: int = node.incarnation
        #: Live members as reported by a membership service; ``None`` means
        #: no membership service is configured, in which case "the set
        #: Members will remain constant" (everyone presumed alive).
        self.members: Optional[Set[ProcessId]] = None
        #: Semaphore enforcing one-at-a-time execution; installed as the
        #: execution gate by the Serial Execution micro-protocol.
        self.serial = self.runtime.semaphore(1)
        #: When set (by Serial Execution), ``forward_up`` acquires this
        #: semaphore around each server-procedure execution.
        self.execution_gate: Optional[Any] = None
        #: Task currently holding the gate (for orphan-kill cleanup).
        self.serial_holder: Any = None

        #: Installed by RPC Main at configure time; other micro-protocols
        #: (FIFO Order, Total Order) call it to release gated calls.
        self.forward_up: Optional[Callable[..., Coroutine]] = None

        #: Live-adaptation epoch: 0 until the first micro-protocol swap,
        #: then bumped in lockstep across the whole group at each commit.
        #: While non-zero, every outgoing message is stamped with it and
        #: the :class:`~repro.adapt.engine.AdaptationFence` drops
        #: arrivals from a different epoch — a message sent under the
        #: old composition can never be dispatched under the new one.
        self.adapt_epoch: int = 0

        #: Trace attribution: the bus's dispatch records carry this pid.
        self.bus.node_id = node.pid

        node.crash_listeners.append(self._on_crash)
        node.recover_listeners.append(self._on_recover)

    # ------------------------------------------------------------------
    # Public client API
    # ------------------------------------------------------------------

    async def call(self, op: str, args: Any, server: Group) -> CallResult:
        """Issue a (group) RPC from the calling task.

        The calling task is the client thread: with Synchronous Call
        configured this blocks until the call terminates; with
        Asynchronous Call it returns a WAITING result immediately.
        """
        umsg = UserMsg(type=UserOp.CALL, op=op, args=args, server=server)
        obs = self.obs
        if obs is None:
            await self.bus.trigger(CALL_FROM_USER, umsg)
        else:
            # Root of this call's span tree; the context is propagated
            # into the wire messages by RPC Main (via the client record's
            # annotations) so every downstream span reconnects here.
            attrs = {"op": op}
            if self.service:
                attrs["service"] = self.service
            span = obs.start_span("rpc.call", node=self.my_id, attrs=attrs)
            obs.push_ctx(span.ctx)
            try:
                await self.bus.trigger(CALL_FROM_USER, umsg)
            finally:
                obs.pop_ctx()
                obs.end_span(span, call_id=umsg.id,
                             status=umsg.status.value)
        return CallResult(id=umsg.id, status=umsg.status, args=umsg.args)

    async def request(self, call_id: int) -> CallResult:
        """Redeem an asynchronous call's result (blocks until available).

        This is the separate "Request" message of the Asynchronous Call
        micro-protocol; calling it without that micro-protocol configured
        blocks forever, so we reject it early instead.
        """
        if not self.has_micro("Asynchronous_Call"):
            raise ConfigurationError(
                "request() needs the Asynchronous_Call micro-protocol")
        umsg = UserMsg(type=UserOp.REQUEST, id=call_id)
        obs = self.obs
        if obs is None:
            await self.bus.trigger(CALL_FROM_USER, umsg)
        else:
            attrs = {"call_id": call_id}
            if self.service:
                attrs["service"] = self.service
            span = obs.start_span("rpc.request", node=self.my_id,
                                  attrs=attrs)
            obs.push_ctx(span.ctx)
            try:
                await self.bus.trigger(CALL_FROM_USER, umsg)
            finally:
                obs.pop_ctx()
                obs.end_span(span, status=umsg.status.value)
        return CallResult(id=umsg.id, status=umsg.status, args=umsg.args)

    async def begin(self, op: str, args: Any,
                    server: Group) -> "PendingCall":
        """Issue a call and get a promise-like handle for its result.

        Sugar over the Asynchronous Call micro-protocol in the style of
        the Promises work the paper cites [LS88]: ``begin`` returns
        immediately; ``await handle.result()`` blocks until the call
        terminates.  Use :func:`gather_calls` to fan out several calls
        and collect every result.
        """
        if not self.has_micro("Asynchronous_Call"):
            raise ConfigurationError(
                "begin() needs the Asynchronous_Call micro-protocol")
        issued = await self.call(op, args, server)
        return PendingCall(self, issued.id, op)

    # ------------------------------------------------------------------
    # UPI plumbing
    # ------------------------------------------------------------------

    async def pop(self, payload: Any, sender: ProcessId) -> None:
        """A message arrived from the transport below.

        Each arrival runs in its own task (spawned by the node's receive
        loop), so a chain blocked on ``serial`` or an ordering gate does
        not stall later arrivals — the paper's execution model.
        """
        if not isinstance(payload, NetMsg):
            return
        obs = self.obs
        if obs is None:
            await self.bus.trigger(MSG_FROM_NETWORK, payload)
            return
        ctx = payload.annotation(OBS_CTX)
        if ctx is None:
            # A message outside any trace (e.g. a bare ACK): dispatch
            # untraced rather than minting a disconnected trace.
            await self.bus.trigger(MSG_FROM_NETWORK, payload)
            return
        attrs = {"sender": payload.sender, "call_id": payload.id}
        if self.service:
            attrs["service"] = self.service
        span = obs.start_span(f"msg.{payload.type.value}", node=self.my_id,
                              parent=(int(ctx[0]), int(ctx[1])),
                              attrs=attrs)
        obs.push_ctx(span.ctx)
        try:
            await self.bus.trigger(MSG_FROM_NETWORK, payload)
        finally:
            obs.pop_ctx()
            obs.end_span(span)

    async def net_push(self, dest: Any, msg: NetMsg) -> None:
        """Send ``msg`` toward ``dest`` via the unreliable transport.

        This is the paper's ``Net.push``; ``dest`` may be a process id, a
        :class:`~repro.net.message.Group`, or an iterable of process ids.
        Every transmission is stamped with this composite's service name
        so the receiving node's service demux can deliver it to the
        composite configured for the same service.
        """
        if self.lower is None:
            raise ConfigurationError(f"{self.name} has no transport below")
        if self.service:
            msg.service = self.service
        if self.adapt_epoch:
            if msg.annotations is None:
                msg.annotations = {ADAPT_EPOCH_KEY: self.adapt_epoch}
            else:
                msg.annotations[ADAPT_EPOCH_KEY] = self.adapt_epoch
        await self.lower.push(dest, msg)

    async def deliver_to_server(self, op: str, args: Any) -> Any:
        """Blocking upcall to the user protocol (the paper's
        ``Server.pop``); returns the procedure's result arguments."""
        if self.upper is None:
            raise ConfigurationError(
                f"{self.name} has no server protocol above")
        return await self.upper.pop(op, args)

    # ------------------------------------------------------------------
    # Membership plumbing
    # ------------------------------------------------------------------

    def set_members(self, members: Iterable[ProcessId]) -> None:
        """Install an initial live-member set (done by the membership
        service when connected)."""
        self.members = set(members)

    def membership_change(self, who: ProcessId, change: MemChange) -> None:
        """Feed one membership change into the composite.

        Updates ``Members`` and triggers the ``MEMBERSHIP_CHANGE`` event in
        a fresh node-scoped task.  Called by whichever membership service
        (heartbeat-based or oracle) is attached to this composite.
        """
        if self.members is None:
            self.members = set()
        if change is MemChange.FAILURE:
            self.members.discard(who)
        else:
            self.members.add(who)
        self._node_spawn(self.bus.trigger(MEMBERSHIP_CHANGE, who, change),
                         name=f"memchange-{who}", daemon=True)

    def is_member_alive(self, pid: ProcessId) -> bool:
        """Liveness according to the configured membership knowledge."""
        return self.members is None or pid in self.members

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def _on_crash(self) -> None:
        """Volatile state dies with the site."""
        self.pRPC.clear()
        self.sRPC.clear()
        self.bus.cancel_pending_timeouts()
        self.bus.clear()
        self.serial = self.runtime.semaphore(1)
        if self.execution_gate is not None:
            self.execution_gate = self.serial
        self.serial_holder = None
        self.pRPC_mutex = self.runtime.lock()
        self.sRPC_mutex = self.runtime.lock()

    def _on_recover(self, incarnation: int) -> None:
        """Relink the composite and announce the new incarnation."""
        self.inc_number = incarnation
        for micro in self.micro_protocols:
            micro.reset()
            micro.configure()
        self._node_spawn(self.bus.trigger(RECOVERY, incarnation),
                         name="recovery-event", daemon=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _node_spawn(self, coro: Coroutine, *, name: str = "",
                    daemon: bool = False) -> Any:
        """Spawn a task owned by this composite's node.

        Tasks spawned here die with the node on a crash.  If the node is
        already down (a timer raced the crash) the work is silently
        discarded, as it would be on real hardware.
        """
        try:
            return self.node.spawn(coro, name=name, daemon=daemon)
        except NodeDown:
            return None

    def spawn(self, coro: Coroutine, *, name: str = "",
              daemon: bool = False) -> Any:
        """Public alias of the node-scoped spawner for client/app code."""
        return self._node_spawn(coro, name=name, daemon=daemon)


class PendingCall:
    """A promise for an asynchronous call's eventual result.

    Obtained from :meth:`GroupRPC.begin`.  ``result()`` may be awaited
    exactly once (redeeming retires the call record, per the paper's
    Asynchronous Call semantics); :meth:`peek` is non-destructive.
    """

    def __init__(self, grpc: GroupRPC, call_id: int, op: str):
        self.grpc = grpc
        self.id = call_id
        self.op = op
        self._redeemed: Optional[CallResult] = None

    def peek(self) -> Optional[Status]:
        """Current status without blocking or redeeming.

        ``None`` means the call record is gone (already redeemed or lost
        to a client crash).
        """
        if self._redeemed is not None:
            return self._redeemed.status
        record = self.grpc.pRPC.get(self.id)
        return record.status if record is not None else None

    async def result(self) -> CallResult:
        """Block until the call terminates; idempotent after the first
        redemption."""
        if self._redeemed is None:
            self._redeemed = await self.grpc.request(self.id)
        return self._redeemed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PendingCall {self.op!r} id={self.id}>"


async def gather_calls(grpc: GroupRPC, calls: Iterable[tuple],
                       server: Group) -> list:
    """Fan out several calls concurrently and collect all results.

    ``calls`` is an iterable of ``(op, args)`` pairs; every call is
    issued before any result is awaited, so the total time is one slow
    round trip rather than their sum.
    """
    handles = [await grpc.begin(op, args, server) for op, args in calls]
    return [await handle.result() for handle in handles]
