"""The semantic property taxonomy of Sections 2.1–2.2 (Figures 1 and 2).

This module is pure data + helpers: it records the property categories of
point-to-point and group RPC, the variants of each, the logical
dependencies between properties (Figure 2's edges), and the mapping from
traditional failure-semantics names to property combinations (Figure 1).
The Figure-1/Figure-2 benchmarks regenerate their tables from here and
the conformance tests check the running system against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "PropertyCategory",
    "CATEGORIES",
    "PROPERTY_DEPENDENCIES",
    "FAILURE_SEMANTICS_MATRIX",
    "failure_semantics_name",
    "figure1_rows",
    "figure2_edges",
]


@dataclass(frozen=True)
class PropertyCategory:
    """One property box of Figure 2 with its variant sub-boxes."""

    name: str
    description: str
    variants: Tuple[str, ...]
    group_only: bool = False


#: The taxonomy of Section 2, in the paper's order of presentation.
CATEGORIES: List[PropertyCategory] = [
    PropertyCategory(
        "failure",
        "guarantees about execution of the server procedure",
        ("unique execution", "non-unique execution",
         "atomic execution", "non-atomic execution")),
    PropertyCategory(
        "call",
        "synchrony of the client call",
        ("synchronous", "asynchronous")),
    PropertyCategory(
        "orphan handling",
        "treatment of computations whose client failed",
        ("ignore orphans", "avoid orphan interference",
         "terminate orphans")),
    PropertyCategory(
        "communication",
        "reliability of client/server communication",
        ("reliable communication", "unreliable communication")),
    PropertyCategory(
        "termination",
        "guarantees about termination of a call",
        ("bounded termination", "unbounded termination")),
    PropertyCategory(
        "ordering",
        "order of concurrent calls at the server group",
        ("no order", "FIFO order", "total order"),
        group_only=True),
    PropertyCategory(
        "collation",
        "how group replies are combined",
        ("one", "all", "user function"),
        group_only=True),
    PropertyCategory(
        "acceptance",
        "how many servers must succeed",
        ("k of n", "all"),
        group_only=True),
    PropertyCategory(
        "membership",
        "treatment of server failure and recovery",
        ("static membership", "dynamic membership"),
        group_only=True),
]

#: Figure 2's logical dependencies: (dependent variant, prerequisite
#: variant) — "a property p1 depends on property p2 if p2 must hold in
#: order for p1 to hold".  The ordering→reliability edge is the example
#: the paper calls out explicitly.
PROPERTY_DEPENDENCIES: List[Tuple[str, str]] = [
    ("FIFO order", "reliable communication"),
    ("total order", "reliable communication"),
    ("total order", "unique execution"),
    ("atomic execution", "unique execution"),
    ("avoid orphan interference", "reliable communication"),
    ("all (acceptance)", "dynamic membership"),
]

#: Figure 1: traditional failure semantics as combinations of the unique
#: and atomic execution properties.
FAILURE_SEMANTICS_MATRIX: Dict[str, Dict[str, bool]] = {
    "at least once": {"unique": False, "atomic": False},
    "exactly once": {"unique": True, "atomic": False},
    "at most once": {"unique": True, "atomic": True},
}


def failure_semantics_name(unique: bool, atomic: bool) -> str:
    """Classify a (unique, atomic) pair per Figure 1.

    The fourth combination — atomic but not unique — is not a traditional
    semantics; the paper's matrix omits it and we label it explicitly.
    """
    for name, props in FAILURE_SEMANTICS_MATRIX.items():
        if props["unique"] == unique and props["atomic"] == atomic:
            return name
    return "atomic, non-unique (unnamed)"


def figure1_rows() -> List[Tuple[str, str, str]]:
    """(semantics, unique?, atomic?) rows exactly as Figure 1 prints."""
    rows = []
    for name, props in FAILURE_SEMANTICS_MATRIX.items():
        rows.append((name,
                     "YES" if props["unique"] else "NO",
                     "YES" if props["atomic"] else "NO"))
    return rows


def figure2_edges() -> List[Tuple[str, str]]:
    """Dependency edges of the property graph."""
    return list(PROPERTY_DEPENDENCIES)
