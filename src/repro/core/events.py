"""Event registration, triggering and handler dispatch (Section 3).

This is the runtime the paper's composite protocols are linked against.
It provides exactly the four framework operations of Section 3:

``register(event, handler, priority)``
    Request that ``handler`` run when ``event`` occurs.  For sequential
    events, handlers execute in ascending priority order; omitting the
    priority registers at the *lowest* priority (runs last).  Registering
    for the special :data:`TIMEOUT` event interprets the priority argument
    as a time interval and arms a **one-shot** timer, exactly as in the
    paper.

``trigger(event, *args)``
    Execute every handler registered for ``event``, passing ``args``.
    Dispatch is *sequential and blocking*: the handlers run one after
    another in the triggering task, and ``trigger`` returns when the last
    one finishes (or the event is cancelled).

``deregister(event, handler)``
    Reverse a registration (including a pending TIMEOUT).

``cancel_event()``
    Abort the remaining handlers of the event currently being dispatched
    in the calling task.  Callable synchronously from inside a handler, as
    the paper's micro-protocols do (``cancel_event(); exit()``).

The paper's model also defines the other dispatch modes: "the invocation
of event handlers ... can be sequential ... or concurrent — performed
concurrently with each event handler given its own thread of control.
The invocation itself can be blocking ... or non-blocking".  All four
combinations are provided (:meth:`EventBus.trigger`,
:meth:`EventBus.trigger_nonblocking`,
:meth:`EventBus.trigger_concurrent`); the micro-protocols of Section 4
use only blocking-sequential dispatch, and concurrency across *messages*
comes from each network arrival being dispatched in its own task.
``cancel_event`` affects only sequential dispatch, as the paper notes
("mostly useful for sequential events").
"""

from __future__ import annotations

from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.errors import KernelError
from repro.runtime.base import Runtime

__all__ = ["EventBus", "TIMEOUT", "LOWEST_PRIORITY", "Registration"]

#: The distinguished one-shot timer event (Section 3).
TIMEOUT = "TIMEOUT"

#: Default priority: runs after every explicitly prioritized handler.
LOWEST_PRIORITY = 1_000_000

#: Handlers are async callables taking the trigger's positional arguments.
Handler = Callable[..., Awaitable[None]]


def _handler_name(handler: Handler) -> str:
    """Qualified name for trace records (stable across bound methods)."""
    return getattr(handler, "__qualname__", repr(handler))


class Registration:
    """One (event, handler, priority) registration record."""

    __slots__ = ("event", "handler", "priority", "seq", "timer", "owner")

    def __init__(self, event: str, handler: Handler, priority: float,
                 seq: int, owner: str = ""):
        self.event = event
        self.handler = handler
        self.priority = priority
        self.seq = seq
        self.timer: Any = None  # only for TIMEOUT registrations
        #: Name of the micro-protocol that registered the handler
        #: ("" for framework/application registrations); the obs layer
        #: attributes dispatch records and handler timings to it.
        self.owner = owner

    def sort_key(self) -> Tuple[float, int]:
        return (self.priority, self.seq)


class _Dispatch:
    """Bookkeeping for one in-progress ``trigger`` call."""

    __slots__ = ("event", "cancelled")

    def __init__(self, event: str):
        self.event = event
        self.cancelled = False


class EventBus:
    """Per-composite-protocol event registry and dispatcher."""

    def __init__(self, runtime: Runtime, spawner: Optional[Callable] = None):
        self.runtime = runtime
        # Expired TIMEOUT handlers run in fresh tasks created through this
        # spawner; composites owned by a node pass a node-scoped spawner so
        # a site crash also kills its in-flight timeout handlers.
        self._spawn = spawner or runtime.spawn
        self._handlers: Dict[str, List[Registration]] = {}
        # Precompiled dispatch tables: event -> priority-ordered tuple of
        # registrations.  Built lazily on first trigger, invalidated by
        # register/deregister/clear; ``trigger`` then dispatches straight
        # off the immutable tuple instead of copying the handler list on
        # every call (the tuple IS the snapshot).
        self._tables: Dict[str, Tuple[Registration, ...]] = {}
        self._seq = 0
        # Stack of active dispatches per task, keyed by id(task handle),
        # so cancel_event() from interleaved tasks cannot cross wires.
        self._active: Dict[int, List[_Dispatch]] = {}
        # Free lists for the untraced trigger fast path: steady-state
        # dispatch pays zero allocations (recycled _Dispatch records and
        # per-task stack lists).  Bounded so a burst cannot pin memory.
        self._dispatch_pool: List[_Dispatch] = []
        self._stack_pool: List[List[_Dispatch]] = []
        # Armed TIMEOUT registrations keyed by registration seq
        # (insertion-ordered).  A dict so :meth:`disarm` — called once
        # per completed bounded call — is O(1) instead of a list scan.
        self._timeout_regs: Dict[int, Registration] = {}
        # Owners whose registrations have been retired by a live
        # adaptation (:meth:`retire_owner`).  Self-rearming handlers of a
        # removed micro-protocol (Reliable Communication's retransmit
        # loop, Probe Orphan's probe rounds) may still be mid-flight when
        # the owner is retired; their re-registration attempts land here
        # and are dropped, so a swapped-out protocol cannot ghost its
        # timers back into the bus.  Empty for never-adapted composites.
        self._retired_owners: set = set()
        # Observability: the recorder and the kernel profiler are
        # resolved ONCE here (attach-time check; see Runtime.attach_obs
        # and Runtime.attach_profiler).  ``None`` keeps every dispatch
        # on the untraced fast path.
        self._obs = getattr(runtime, "obs", None)
        self._prof = getattr(runtime, "profiler", None)
        #: Process id of the owning node, for trace attribution;
        #: composites bound to a node set this (-1 = unowned bus).
        self.node_id = -1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, event: str, handler: Handler,
                 priority: Optional[float] = None, *,
                 owner: str = "") -> Registration:
        """Register ``handler`` for ``event``.

        For ordinary events ``priority`` orders handlers (lower runs
        earlier; ``None`` means lowest).  For :data:`TIMEOUT`, ``priority``
        is the timeout interval in seconds and the handler will run exactly
        once, ``interval`` from now, unless deregistered first.
        ``owner`` names the registering micro-protocol for trace
        attribution (filled in by :meth:`MicroProtocol.register`).
        """
        self._seq += 1
        if owner and owner in self._retired_owners:
            # A retired owner's in-flight handler trying to re-arm
            # itself; hand back an inert registration (never dispatched,
            # no timer armed) so the caller's code path stays unchanged.
            return Registration(event, handler,
                                float(priority or 0.0), self._seq, owner)
        if event == TIMEOUT:
            if priority is None:
                raise KernelError("TIMEOUT registration requires an interval")
            reg = Registration(event, handler, float(priority), self._seq,
                               owner)
            reg.timer = self.runtime.call_later(
                float(priority), lambda: self._fire_timeout(reg))
            self._timeout_regs[reg.seq] = reg
            if self._obs is not None:
                self._obs.record_event(
                    "register", node=self.node_id, event=TIMEOUT,
                    owner=owner, handler=_handler_name(handler),
                    interval=float(priority))
            return reg
        if priority is None:
            priority = LOWEST_PRIORITY
        reg = Registration(event, handler, float(priority), self._seq,
                           owner)
        self._handlers.setdefault(event, []).append(reg)
        self._handlers[event].sort(key=Registration.sort_key)
        self._tables.pop(event, None)
        if self._obs is not None:
            self._obs.record_event(
                "register", node=self.node_id, event=event, owner=owner,
                handler=_handler_name(handler), priority=float(priority))
        return reg

    def deregister(self, event: str, handler: Handler) -> bool:
        """Remove the first registration matching (event, handler).

        Returns True if a registration was removed.  Deregistering a
        pending TIMEOUT cancels its timer.
        """
        if event == TIMEOUT:
            for reg in self._timeout_regs.values():
                if reg.handler == handler:
                    reg.timer.cancel()
                    del self._timeout_regs[reg.seq]
                    self._record_deregister(reg)
                    return True
            return False
        regs = self._handlers.get(event, [])
        for reg in regs:
            if reg.handler == handler:
                regs.remove(reg)
                self._tables.pop(event, None)
                self._record_deregister(reg)
                return True
        return False

    def _record_deregister(self, reg: Registration) -> None:
        if self._obs is not None:
            self._obs.record_event(
                "deregister", node=self.node_id, event=reg.event,
                owner=reg.owner, handler=_handler_name(reg.handler))

    def registrations(self, event: str) -> List[Registration]:
        """The current registrations for ``event`` in dispatch order."""
        return list(self._handlers.get(event, []))

    def registration_table(self) -> Dict[str, List[str]]:
        """Event -> ordered handler names; regenerates Figure 3's wiring."""
        table = {}
        for event, regs in sorted(self._handlers.items()):
            table[event] = [getattr(r.handler, "__qualname__",
                                    repr(r.handler)) for r in regs]
        return table

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------

    async def trigger(self, event: str, *args: Any) -> bool:
        """Run all handlers for ``event`` sequentially, in priority order.

        Returns ``True`` if every handler ran, ``False`` if some handler
        cancelled the event.  The handler list is snapshotted at trigger
        time, so registrations made by handlers take effect from the next
        occurrence of the event (the precompiled table is an immutable
        tuple, so the snapshot is free: a registration mid-dispatch swaps
        in a new table while the in-flight loop keeps the old one).
        """
        if self._obs is not None or self._prof is not None:
            return await self._trigger_traced(event, *args)
        table = self._tables.get(event)
        if table is None:
            table = self._compile(event)
        if not table:
            return True
        # Recycle dispatch records and stack lists: in steady state the
        # untraced path allocates nothing per trigger.
        pool = self._dispatch_pool
        if pool:
            dispatch = pool.pop()
            dispatch.event = event
            dispatch.cancelled = False
        else:
            dispatch = _Dispatch(event)
        task_key = id(self.runtime.current_handle_nowait())
        stack = self._active.get(task_key)
        if stack is None:
            stacks = self._stack_pool
            stack = stacks.pop() if stacks else []
            self._active[task_key] = stack
        stack.append(dispatch)
        try:
            if len(table) == 1:
                # Single-handler case dominates micro-protocol
                # composition; skip the loop (cancelled is always False
                # on entry — cancel_event still works via the stack).
                await table[0].handler(*args)
            else:
                for reg in table:
                    if dispatch.cancelled:
                        break
                    await reg.handler(*args)
        finally:
            self._pop_dispatch(task_key, stack, dispatch)
            cancelled = dispatch.cancelled
            if len(pool) < 16:
                pool.append(dispatch)
        return not cancelled

    def _compile(self, event: str) -> Tuple[Registration, ...]:
        """Build and cache the dispatch table for ``event``."""
        table = tuple(self._handlers.get(event, ()))
        self._tables[event] = table
        return table

    async def _trigger_traced(self, event: str, *args: Any) -> bool:
        """The traced twin of :meth:`trigger`: identical semantics, plus
        one structured record (with virtual-time duration, owner and
        priority) per handler invocation and/or one profiler frame per
        handler site."""
        obs = self._obs
        prof = self._prof
        snapshot = list(self._handlers.get(event, []))
        if not snapshot:
            return True
        dispatch = _Dispatch(event)
        task_key = id(self.runtime.current_handle_nowait())
        stack = self._active.setdefault(task_key, [])
        stack.append(dispatch)
        try:
            for reg in snapshot:
                if dispatch.cancelled:
                    break
                start = self.runtime.now()
                if prof is not None:
                    prof.handler_enter(task_key, reg.owner,
                                       _handler_name(reg.handler))
                    try:
                        await reg.handler(*args)
                    finally:
                        prof.handler_exit(task_key,
                                          self.runtime.now() - start)
                else:
                    await reg.handler(*args)
                if obs is not None:
                    obs.record_handler(
                        event, reg.owner, _handler_name(reg.handler),
                        reg.priority, start, self.runtime.now(),
                        node=self.node_id, cancelled=dispatch.cancelled)
        finally:
            self._pop_dispatch(task_key, stack, dispatch)
        return not dispatch.cancelled

    def _pop_dispatch(self, task_key: int, stack: List[_Dispatch],
                      dispatch: _Dispatch) -> None:
        """Unwind one dispatch record, tolerating crash teardown.

        A node crash clears ``_active`` while cancelled tasks are still
        unwinding their ``trigger`` calls, so the record (or the whole
        stack) may already be gone.
        """
        if dispatch in stack:
            stack.remove(dispatch)
        if not stack and self._active.get(task_key) is stack:
            self._active.pop(task_key, None)
            if len(self._stack_pool) < 16:
                self._stack_pool.append(stack)

    def trigger_nonblocking(self, event: str, *args: Any) -> None:
        """Sequential dispatch in a fresh task; the caller continues.

        The paper's non-blocking invocation: "the invoker continues
        execution without waiting".  Handler order and ``cancel_event``
        semantics are identical to :meth:`trigger`; only the caller's
        synchrony changes.
        """
        self._spawn(self.trigger(event, *args),
                    name=f"nb-{event}", daemon=True)

    async def trigger_concurrent(self, event: str, *args: Any,
                                 blocking: bool = True) -> None:
        """Run every registered handler in its own task.

        The paper's concurrent invocation: "performed concurrently with
        each event handler given its own thread of control".  With
        ``blocking=True`` the caller "waits until all the event handlers
        registered for the event have finished execution"; with
        ``blocking=False`` it continues immediately.  ``cancel_event``
        inside a concurrent handler affects only that handler's own
        chain — there is no shared sequence to abort.
        """
        snapshot = list(self._handlers.get(event, []))
        handles = [
            self._spawn(self._run_concurrent(event, reg, args),
                        name=f"cc-{event}-{reg.seq}", daemon=True)
            for reg in snapshot
        ]
        if blocking:
            for handle in handles:
                if handle is not None:
                    await self.runtime.join(handle)

    async def _run_concurrent(self, event: str, reg: Registration,
                              args: tuple) -> None:
        dispatch = _Dispatch(event)
        task_key = id(self.runtime.current_handle_nowait())
        stack = self._active.setdefault(task_key, [])
        stack.append(dispatch)
        obs = self._obs
        prof = self._prof
        start = (self.runtime.now()
                 if obs is not None or prof is not None else 0.0)
        if prof is not None:
            prof.handler_enter(task_key, reg.owner,
                               _handler_name(reg.handler))
        try:
            await reg.handler(*args)
        finally:
            if prof is not None:
                prof.handler_exit(task_key, self.runtime.now() - start)
            self._pop_dispatch(task_key, stack, dispatch)
            if obs is not None:
                obs.record_handler(
                    event, reg.owner, _handler_name(reg.handler),
                    reg.priority, start, self.runtime.now(),
                    node=self.node_id, cancelled=dispatch.cancelled)

    def cancel_event(self) -> None:
        """Cancel the event currently dispatching in the calling task.

        The remaining handlers registered for this occurrence are skipped.
        Mirrors the paper's ``cancel_event()`` framework operation; a
        handler typically follows it with ``return`` (the paper's
        ``exit()``).
        """
        task_key = id(self.runtime.current_handle_nowait())
        stack = self._active.get(task_key)
        if not stack:
            raise KernelError("cancel_event() outside of event dispatch")
        stack[-1].cancelled = True
        if self._obs is not None:
            self._obs.record_event("cancel_event", node=self.node_id,
                                   event=stack[-1].event)

    def in_dispatch(self) -> Optional[str]:
        """Name of the event the calling task is dispatching, if any."""
        task_key = id(self.runtime.current_handle_nowait())
        stack = self._active.get(task_key)
        return stack[-1].event if stack else None

    # ------------------------------------------------------------------
    # TIMEOUT plumbing
    # ------------------------------------------------------------------

    def disarm(self, reg: Registration) -> bool:
        """Disarm one pending TIMEOUT registration in O(1).

        The handle-based twin of ``deregister(TIMEOUT, handler)`` for
        callers that kept the :class:`Registration` — per-call bounds
        (Bounded Termination) disarm thousands of these on the hot path,
        where the handler-equality scan would be quadratic.  Idempotent;
        returns True if the registration was still armed.
        """
        if self._timeout_regs.pop(reg.seq, None) is None:
            return False
        reg.timer.cancel()
        self._record_deregister(reg)
        return True

    def _fire_timeout(self, reg: Registration) -> None:
        if self._timeout_regs.pop(reg.seq, None) is None:
            return
        self._spawn(self._run_timeout(reg),
                    name=f"timeout-{reg.seq}", daemon=True)

    async def _run_timeout(self, reg: Registration) -> None:
        """Run one expired TIMEOUT handler as its own (cancellable) event."""
        dispatch = _Dispatch(TIMEOUT)
        task_key = id(self.runtime.current_handle_nowait())
        stack = self._active.setdefault(task_key, [])
        stack.append(dispatch)
        obs = self._obs
        prof = self._prof
        start = (self.runtime.now()
                 if obs is not None or prof is not None else 0.0)
        if prof is not None:
            prof.handler_enter(task_key, reg.owner,
                               _handler_name(reg.handler))
        try:
            await reg.handler()
        finally:
            if prof is not None:
                prof.handler_exit(task_key, self.runtime.now() - start)
            self._pop_dispatch(task_key, stack, dispatch)
            if obs is not None:
                obs.record_handler(
                    TIMEOUT, reg.owner, _handler_name(reg.handler),
                    reg.priority, start, self.runtime.now(),
                    node=self.node_id, cancelled=dispatch.cancelled)

    # ------------------------------------------------------------------
    # Owner retirement (live adaptation)
    # ------------------------------------------------------------------

    def retire_owner(self, owner: str) -> int:
        """Remove every registration tagged ``owner`` and bar new ones.

        The bus half of swapping a micro-protocol out of a running
        composite: all its event handlers are deregistered, its pending
        TIMEOUTs disarmed, and — until :meth:`unretire_owner` — any
        re-registration attempt from a still-unwinding handler of that
        owner is silently dropped.  Returns the number of registrations
        removed.  ``owner`` must be non-empty (framework registrations
        carry no owner and are never retired).
        """
        if not owner:
            raise KernelError("retire_owner() requires a non-empty owner")
        removed = 0
        for event, regs in list(self._handlers.items()):
            kept = [reg for reg in regs if reg.owner != owner]
            if len(kept) != len(regs):
                removed += len(regs) - len(kept)
                self._handlers[event] = kept
                self._tables.pop(event, None)
        for seq, reg in list(self._timeout_regs.items()):
            if reg.owner == owner:
                reg.timer.cancel()
                del self._timeout_regs[seq]
                removed += 1
        self._retired_owners.add(owner)
        if self._obs is not None:
            self._obs.record_event("retire_owner", node=self.node_id,
                                   owner=owner, removed=removed)
        return removed

    def unretire_owner(self, owner: str) -> None:
        """Allow ``owner`` to register again (it is being swapped in)."""
        self._retired_owners.discard(owner)

    def pending_timeouts(self) -> int:
        """Number of armed TIMEOUT registrations (test/debug aid)."""
        return len(self._timeout_regs)

    def cancel_pending_timeouts(self) -> None:
        """Disarm every pending TIMEOUT (part of crash teardown)."""
        for reg in self._timeout_regs.values():
            reg.timer.cancel()
        self._timeout_regs.clear()

    def clear(self) -> None:
        """Drop every registration and cancel pending timers.

        Used when a node crashes: the composite protocol's volatile wiring
        is rebuilt from scratch on recovery.
        """
        self._handlers.clear()
        self._tables.clear()
        for reg in self._timeout_regs.values():
            reg.timer.cancel()
        self._timeout_regs.clear()
        self._active.clear()
