"""Bounded Termination (Section 4.4.3): calls terminate within a bound.

"Bounded termination states that a call always terminates and the client
thread returns within a bounded, specified time.  If the server has not
responded by the deadline, the call returns with an indication of
failure."  Implemented, as in the paper, with a per-call one-shot TIMEOUT
of ``timebound`` seconds that marks the call TIMEOUT and releases the
client's semaphore if it is still waiting.

The paper pairs timer expiries with calls through a FIFO queue, which is
correct only because its timers all share one duration; we bind the call
id into the timeout handler instead (deviation #3 in DESIGN.md).
"""

from __future__ import annotations

from repro.core.events import TIMEOUT
from repro.core.grpc import NEW_RPC_CALL
from repro.core.messages import Status
from repro.core.microprotocols.base import GRPCMicroProtocol
from repro.obs import register_protocol

__all__ = ["BoundedTermination"]


class BoundedTermination(GRPCMicroProtocol):
    """Fails calls that have not completed within ``timebound`` seconds."""

    protocol_name = "Bounded_Termination"

    def __init__(self, timebound: float = 1.0):
        super().__init__()
        if timebound <= 0:
            raise ValueError("termination bound must be positive")
        self.timebound = timebound

    def configure(self) -> None:
        self.register(NEW_RPC_CALL, self.handle_new_call)

    async def handle_new_call(self, call_id: int) -> None:
        async def handle_timeout(cid: int = call_id) -> None:
            grpc = self.grpc
            await grpc.pRPC_mutex.acquire()
            try:
                record = grpc.pRPC.get(cid)
                if record is not None and record.status is Status.WAITING:
                    record.status = Status.TIMEOUT
                    record.sem.release()
            finally:
                grpc.pRPC_mutex.release()

        reg = self.register(TIMEOUT, handle_timeout, self.timebound)
        record = self.grpc.pRPC.get(call_id)
        if record is not None:
            # Disarm the bound the moment the call record retires: a
            # completed call must not leave its expiry armed for the rest
            # of ``timebound``.  With long bounds and high call rates the
            # armed-but-moot timers otherwise dominate the kernel's timer
            # heap (one per call, live for the full bound) and every
            # heap push/pop pays for them.
            bus = self.bus
            record.add_disposer(lambda: bus.disarm(reg))


register_protocol(BoundedTermination.protocol_name)
