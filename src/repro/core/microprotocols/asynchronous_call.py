"""Asynchronous Call (Section 4.4.2): non-blocking call semantics.

The caller's ``Call`` returns as soon as RPC Main has transmitted it; the
result is retrieved later with a ``Request`` message
(:meth:`repro.core.grpc.GroupRPC.request`), which returns immediately if
the result is already pending and otherwise blocks until the call
terminates.
"""

from __future__ import annotations

from repro.core.grpc import CALL_FROM_USER
from repro.core.messages import UserMsg, UserOp
from repro.core.microprotocols.base import GRPCMicroProtocol
from repro.errors import UnknownCallError
from repro.obs import register_protocol

__all__ = ["AsynchronousCall"]


class AsynchronousCall(GRPCMicroProtocol):
    """Returns immediately on Call; blocks only on an explicit Request."""

    protocol_name = "Asynchronous_Call"

    def configure(self) -> None:
        self.register(CALL_FROM_USER, self.msg_from_user)

    async def msg_from_user(self, umsg: UserMsg) -> None:
        if umsg.type is not UserOp.REQUEST:
            return
        grpc = self.grpc
        record = grpc.pRPC.get(umsg.id)
        if record is None:
            raise UnknownCallError(
                f"no pending call with id {umsg.id} (already redeemed, "
                f"never issued, or lost in a crash)")
        await record.sem.acquire()
        umsg.args = record.args
        umsg.status = record.status
        await grpc.pRPC_mutex.acquire()
        grpc.pRPC.remove(umsg.id)
        grpc.pRPC_mutex.release()


register_protocol(AsynchronousCall.protocol_name)
