"""Interference Avoidance (Section 4.4.7): orphans finish before new work.

"With interference avoidance, the orphans finish their computation before
the recovered client is allowed to issue new requests."  Client
incarnation numbers partition calls into generations: when a call with a
new incarnation arrives while calls of the old incarnation are still
executing, the new call is "simply dropped ... relying on retransmission
from the client to ensure they will eventually be executed" — hence the
dependency on Reliable Communication.  "To avoid starvation, no more
calls with the old incarnation number are started once the first one with
a new number has been seen" — modelled by freezing ``inc`` at infinity
until the old generation's count drains to zero.

The paper's handler forgets to drop the new-generation call it just
deferred (it falls through to RPC Main and executes); we cancel the event
in that case (deviation #8 in DESIGN.md).
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.core.grpc import MSG_FROM_NETWORK, REPLY_FROM_SERVER
from repro.core.messages import CallKey, NetMsg, NetOp
from repro.core.microprotocols.base import GRPCMicroProtocol, Prio
from repro.net.message import ProcessId
from repro.obs import register_protocol

__all__ = ["InterferenceAvoidance"]

_FROZEN = sys.maxsize  # the paper's MAX_INT sentinel


class _ClientInfo:
    __slots__ = ("inc", "count", "next_inc")

    def __init__(self, inc: int):
        self.inc = inc          # generation currently allowed to start
        self.count = 0          # its calls still executing
        self.next_inc = inc     # generation waiting to take over


class InterferenceAvoidance(GRPCMicroProtocol):
    """Defers a recovered client's calls until its orphans drain."""

    protocol_name = "Interference_Avoidance"

    def __init__(self) -> None:
        super().__init__()
        self.cinfo: Dict[ProcessId, _ClientInfo] = {}

    def reset(self) -> None:
        self.cinfo.clear()

    def configure(self) -> None:
        self.register(MSG_FROM_NETWORK, self.msg_from_net, Prio.ORPHAN)
        self.register(REPLY_FROM_SERVER, self.handle_reply, 1)

    async def msg_from_net(self, msg: NetMsg) -> None:
        if msg.type is not NetOp.CALL:
            return
        client = msg.sender
        info = self.cinfo.get(client)
        if info is None:
            info = _ClientInfo(msg.inc)
            self.cinfo[client] = info
        if info.inc > msg.inc and info.inc != _FROZEN:
            # Older incarnation than the admitted generation: orphan spam.
            self.cancel_event()
            return
        if info.inc != _FROZEN and info.inc < msg.inc:
            # First call of a newer generation: freeze admissions until
            # the current generation's executions drain.
            info.next_inc = msg.inc
            if info.count == 0:
                info.inc = msg.inc
            else:
                info.inc = _FROZEN
        elif info.inc == _FROZEN and msg.inc > info.next_inc:
            # An even newer generation supersedes the one waiting.
            info.next_inc = msg.inc
        if info.inc == msg.inc:
            info.count += 1
        else:
            # Not admitted this round; the client's retransmission will
            # bring it back once the old generation finishes.
            self.cancel_event()

    async def handle_reply(self, key: CallKey) -> None:
        record = self.grpc.sRPC.get(key)
        if record is None:
            return
        info = self.cinfo.get(record.client)
        if info is None:
            return
        info.count -= 1
        if info.count == 0 and info.inc == _FROZEN:
            info.inc = info.next_inc


register_protocol(InterferenceAvoidance.protocol_name)
