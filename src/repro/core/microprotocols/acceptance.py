"""Acceptance (Section 4.4.5): how many servers must respond.

"In order for a call to be accepted, it must be executed successfully by
at least Acceptance_Limit members of the server group ... If the
acceptance limit is greater than the number of group members, the number
of required responses is set to the size of the group."

When a membership service is attached, servers that fail while a call is
pending are counted as done ("the client ... is willing to settle for the
responses from all servers that are still functioning"); without one,
"the set Members will remain constant" and a call completes only when
enough responses arrive or Bounded Termination expires it — both behaviors
straight from the paper.

Acceptance is what releases the client's per-call semaphore with status
OK; it is therefore part of the minimal functional configuration.
"""

from __future__ import annotations

from repro.core.grpc import MEMBERSHIP_CHANGE, MSG_FROM_NETWORK, NEW_RPC_CALL
from repro.core.messages import MemChange, NetMsg, NetOp, Status
from repro.core.microprotocols.base import GRPCMicroProtocol, Prio
from repro.net.message import ProcessId
from repro.obs import register_protocol

__all__ = ["Acceptance", "ALL"]

#: Sentinel acceptance limit meaning "every (live) group member".
ALL = 10 ** 9


class Acceptance(GRPCMicroProtocol):
    """Completes calls once ``acceptance_limit`` members have replied."""

    protocol_name = "Acceptance"

    def __init__(self, acceptance_limit: int = 1):
        super().__init__()
        if acceptance_limit < 1:
            raise ValueError("acceptance limit must be >= 1")
        self.acceptance_limit = acceptance_limit

    def configure(self) -> None:
        self.register(NEW_RPC_CALL, self.handle_new_call)
        self.register(MEMBERSHIP_CHANGE, self.server_failure)
        self.register(MSG_FROM_NETWORK, self.msg_from_net, Prio.ACCEPTANCE)

    async def handle_new_call(self, call_id: int) -> None:
        grpc = self.grpc
        record = grpc.pRPC.get(call_id)
        if record is None:
            return
        alive = 0
        for pid, entry in record.pending.items():
            if grpc.is_member_alive(pid):
                entry.done = False
                alive += 1
            else:
                entry.done = True
        record.nres = min(self.acceptance_limit, alive)

    async def msg_from_net(self, msg: NetMsg) -> None:
        if msg.type is not NetOp.REPLY:
            return
        record = self.client_record_for(msg)
        if record is not None and msg.sender in record.pending \
                and not record.pending[msg.sender].done:
            record.pending[msg.sender].done = True
            record.nres -= 1
            if record.nres == 0:
                record.status = Status.OK
                record.sem.release()
        else:
            # Late, duplicate, or stale reply: stop the chain so Collation
            # does not double-count it.
            self.cancel_event()

    async def server_failure(self, who: ProcessId, change: MemChange) -> None:
        if change is not MemChange.FAILURE:
            return
        for record in self.grpc.pRPC.records():
            entry = record.pending.get(who)
            if entry is not None and not entry.done:
                entry.done = True
                record.nres -= 1
                if record.nres == 0 and record.status is Status.WAITING:
                    # Every still-functioning server has responded; the
                    # paper accepts the call at this point (membership
                    # semantics) even if fewer than acceptance_limit
                    # replies were collected.
                    record.status = Status.OK
                    record.sem.release()


register_protocol(Acceptance.protocol_name)
