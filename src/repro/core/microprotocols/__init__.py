"""The paper's micro-protocols (Section 4.4), one module each."""

from repro.core.microprotocols.acceptance import ALL, Acceptance
from repro.core.microprotocols.asynchronous_call import AsynchronousCall
from repro.core.microprotocols.atomic_execution import AtomicExecution
from repro.core.microprotocols.base import GRPCMicroProtocol, Prio
from repro.core.microprotocols.bounded_termination import BoundedTermination
from repro.core.microprotocols.causal_order import CausalOrder, CausalToken
from repro.core.microprotocols.collation import (
    Collation,
    all_replies,
    average,
    first_reply,
    last_reply,
    majority_vote,
)
from repro.core.microprotocols.fifo_order import FIFOOrder
from repro.core.microprotocols.interference_avoidance import (
    InterferenceAvoidance,
)
from repro.core.microprotocols.observer import (
    CallObserver,
    CallTraceLog,
    TracePoint,
)
from repro.core.microprotocols.probe_orphan import ProbeOrphanTermination
from repro.core.microprotocols.reliable_communication import (
    ReliableCommunication,
)
from repro.core.microprotocols.rpc_main import RPCMain
from repro.core.microprotocols.serial_execution import SerialExecution
from repro.core.microprotocols.synchronous_call import SynchronousCall
from repro.core.microprotocols.terminate_orphan import TerminateOrphan
from repro.core.microprotocols.total_order import TotalOrder
from repro.core.microprotocols.unique_execution import UniqueExecution

__all__ = [
    "GRPCMicroProtocol",
    "Prio",
    "RPCMain",
    "SynchronousCall",
    "AsynchronousCall",
    "ReliableCommunication",
    "BoundedTermination",
    "Collation",
    "last_reply",
    "first_reply",
    "all_replies",
    "average",
    "majority_vote",
    "UniqueExecution",
    "AtomicExecution",
    "SerialExecution",
    "Acceptance",
    "ALL",
    "FIFOOrder",
    "TotalOrder",
    "CausalOrder",
    "CausalToken",
    "InterferenceAvoidance",
    "TerminateOrphan",
    "ProbeOrphanTermination",
    "CallObserver",
    "CallTraceLog",
    "TracePoint",
]
