"""Terminate Orphan (Section 4.4.7): kill orphans on detection.

"The micro-protocol Terminate Orphan implements the second option of
immediately killing orphans as soon as they are detected.  Detection can
be based either on receiving a message from a newer incarnation of the
client ... or by periodically probing the client.  Terminate Orphan uses
the first approach."

The paper's ``my_thread()``/``kill(thread)`` operations map to runtime
task handles and cancellation.  One refinement over the pseudocode: the
paper snapshots the thread at message-arrival time, but under ordering
micro-protocols a gated call executes later in a *different* task (the
predecessor's reply chain), so we kill through ``ServerRecord.executor``
— the handle of whichever task is actually running the procedure — and
drop the not-yet-executing records outright (deviation #9 in DESIGN.md).
The paper's unconditional ``V(serial)`` after each kill is subsumed by
``forward_up`` releasing the execution gate in a ``finally``.

Note the interplay the paper's taxonomy predicts: killing a procedure
mid-flight can leave partial stable state unless Atomic Execution is also
configured — the orphan-policy benchmarks exercise exactly this.
"""

from __future__ import annotations

from typing import Dict

from repro.core.grpc import CALL_ABORTED, MSG_FROM_NETWORK, REPLY_FROM_SERVER
from repro.core.messages import CallKey, NetMsg, NetOp
from repro.core.microprotocols.base import GRPCMicroProtocol, Prio
from repro.net.message import ProcessId
from repro.obs import register_protocol

__all__ = ["TerminateOrphan"]


class TerminateOrphan(GRPCMicroProtocol):
    """Kills a client's in-flight executions when it reincarnates."""

    protocol_name = "Terminate_Orphan"

    def __init__(self) -> None:
        super().__init__()
        self.client_inc: Dict[ProcessId, int] = {}
        #: How many orphan executions have been killed (experiment metric).
        self.kills = 0

    def reset(self) -> None:
        self.client_inc.clear()

    def configure(self) -> None:
        self.register(MSG_FROM_NETWORK, self.msg_from_net, Prio.ORPHAN)
        self.register(REPLY_FROM_SERVER, self.handle_reply, 1)

    async def msg_from_net(self, msg: NetMsg) -> None:
        if msg.type is not NetOp.CALL:
            return
        client = msg.sender
        known = self.client_inc.get(client)
        if known is None:
            self.client_inc[client] = msg.inc
            return
        if known > msg.inc:
            # A message from a dead incarnation: drop it.
            self.cancel_event()
            return
        if known < msg.inc:
            # The client reincarnated: everything still pending from the
            # old incarnation is an orphan.
            self.client_inc[client] = msg.inc
            await self._kill_orphans(client, msg.inc)

    async def _kill_orphans(self, client: ProcessId, new_inc: int) -> None:
        grpc = self.grpc
        for record in grpc.sRPC.records():
            if record.client != client or record.inc >= new_inc:
                continue
            if record.executor is not None:
                grpc.runtime.cancel(record.executor)
                self.kills += 1
            grpc.sRPC.remove(record.key)
            await self.trigger(CALL_ABORTED, record.key)

    async def handle_reply(self, key: CallKey) -> None:
        # Execution finished normally; nothing to track (the executor
        # handle is cleared by forward_up).  Present to mirror the paper's
        # handler structure and keep the registration table comparable.
        return


register_protocol(TerminateOrphan.protocol_name)
