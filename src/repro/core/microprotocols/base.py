"""Common base class and handler priorities for gRPC micro-protocols.

Handler priorities follow the paper's registrations where it gives them
(Reliable Communication at 1, Unique Execution at 2, RPC Main at 3,
Collation at 4, FIFO Order at 10, Total Order's ``assign_order`` at 1 and
``msg_from_net`` at 4).  Two placements the paper leaves implicit or gets
wrong are pinned down here and documented in DESIGN.md:

* orphan handlers run at 2.2, strictly after Unique Execution's duplicate
  filtering so duplicates are never counted as new work;
* RPC Main performs its in-progress-duplicate check at 1.5, before any
  micro-protocol that accumulates per-call state;
* Unique Execution *admits* a call (records it in OldCalls) at 2.5, only
  after the orphan micro-protocols have had their chance to defer or drop
  it — admitting at filter time (as the paper's single handler does)
  makes every retransmission of a deferred call look like a duplicate and
  starves the recovered client.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.framework import MicroProtocol
from repro.core.grpc import GroupRPC
from repro.core.messages import CallKey, NetMsg, NetOp
from repro.core.state import ClientRecord

__all__ = ["GRPCMicroProtocol", "Prio"]


class Prio:
    """Dispatch priorities for ``MSG_FROM_NETWORK`` handlers (low = early)."""

    TOTAL_ASSIGN = 1.0      # Total Order leader assigns/reannounces orders
    RELIABLE = 1.0          # Reliable Communication marks acks
    MAIN_DEDUP = 1.5        # RPC Main drops in-progress duplicates
    UNIQUE = 2.0            # Unique Execution filters executed duplicates
    ORPHAN = 2.2            # Interference Avoidance / Terminate Orphan
    UNIQUE_ADMIT = 2.5      # Unique Execution records the admitted call
    MAIN = 3.0              # RPC Main stores and forwards calls
    ACCEPTANCE = 3.0        # Acceptance counts replies (client side)
    COLLATION = 4.0         # Collation folds replies (client side)
    TOTAL = 4.0             # Total Order gates execution order
    FIFO = 10.0             # FIFO Order gates per-client order


class GRPCMicroProtocol(MicroProtocol):
    """Micro-protocol specialized to the gRPC composite's shared data."""

    @property
    def grpc(self) -> GroupRPC:
        # Hot accessor (several times per handler): trust the add-time
        # wiring instead of re-checking the composite's type on every use.
        return self.composite  # type: ignore[return-value]

    @property
    def my_id(self) -> int:
        return self.grpc.my_id

    # -- shared-state helpers -------------------------------------------

    @staticmethod
    def call_key(msg: NetMsg) -> CallKey:
        """Server-side key of the call a CALL message carries."""
        assert msg.type is NetOp.CALL
        return (msg.sender, msg.inc, msg.id)

    def client_record_for(self, msg: NetMsg) -> Optional[ClientRecord]:
        """The pending client record a REPLY belongs to, if still valid.

        Guards on the incarnation carried in the reply: after a client
        crash and recovery, call ids restart, so a late reply to an
        old-incarnation call must not be matched against a new call with
        the same id.
        """
        record = self.grpc.pRPC.get(msg.id)
        if record is None or record.inc != msg.inc:
            return None
        return record

    def current_task(self) -> Any:
        """The task executing the current handler (``my_thread()``)."""
        return self.runtime.current_handle_nowait()
