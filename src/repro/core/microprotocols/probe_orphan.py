"""Probe Orphan Termination (extension): detect dead clients by probing.

Section 4.4.7: "Detection can be based either on receiving a message from
a newer incarnation of the client, indicating that the previous
incarnation died, or by periodically probing the client.  Terminate
Orphan uses the first approach."  This extension implements the second.

Every ``probe_interval`` seconds the server PINGs each client that has
work pending locally; the client side of the same micro-protocol answers
every PING with a PONG carrying its current incarnation.  A client that
misses ``missed_limit`` consecutive probes is presumed dead and its
pending executions are killed; a PONG whose incarnation is newer than a
pending call's also exposes that call as an orphan (the client rebooted).

Unlike the incarnation-based Terminate Orphan, probing detects orphans of
clients that die and *never come back* — the case the paper's first
approach cannot handle.  The price is the probe traffic and, this being
a timeout in an asynchronous system, the possibility of killing work for
a merely-slow client (which will simply retransmit and re-execute).
"""

from __future__ import annotations

from typing import Dict

from repro.core.events import TIMEOUT
from repro.core.grpc import CALL_ABORTED, MSG_FROM_NETWORK
from repro.core.messages import NetMsg, NetOp
from repro.core.microprotocols.base import Prio
from repro.core.microprotocols.terminate_orphan import TerminateOrphan
from repro.net.message import ProcessId
from repro.obs import register_protocol

__all__ = ["ProbeOrphanTermination"]


class _ProbeState:
    __slots__ = ("outstanding", "missed")

    def __init__(self) -> None:
        self.outstanding = False
        self.missed = 0


class ProbeOrphanTermination(TerminateOrphan):
    """Terminate Orphan with periodic client probing on top."""

    protocol_name = "Probe_Orphan_Termination"

    def __init__(self, probe_interval: float = 0.1,
                 missed_limit: int = 3):
        super().__init__()
        if probe_interval <= 0:
            raise ValueError("probe interval must be positive")
        if missed_limit < 1:
            raise ValueError("missed limit must be >= 1")
        self.probe_interval = probe_interval
        self.missed_limit = missed_limit
        self._probes: Dict[ProcessId, _ProbeState] = {}
        #: Orphans killed due to unanswered probes (vs. reincarnation).
        self.probe_kills = 0

    def reset(self) -> None:
        super().reset()
        self._probes.clear()

    def configure(self) -> None:
        super().configure()
        self.register(MSG_FROM_NETWORK, self.handle_probe_traffic,
                      Prio.RELIABLE)
        self.register(TIMEOUT, self.probe_round, self.probe_interval)

    # ------------------------------------------------------------------

    async def handle_probe_traffic(self, msg: NetMsg) -> None:
        if msg.type is NetOp.PING:
            # Client side: always answer, echoing the probe id and our
            # current incarnation.
            pong = NetMsg(type=NetOp.PONG, id=msg.id,
                          sender=self.my_id,
                          inc=self.grpc.inc_number)
            await self.grpc.net_push(msg.sender, pong)
        elif msg.type is NetOp.PONG:
            state = self._probes.get(msg.sender)
            if state is not None:
                state.outstanding = False
                state.missed = 0
            # A PONG from a newer incarnation exposes older pending
            # calls as orphans, just like a newer-incarnation CALL.
            known = self.client_inc.get(msg.sender)
            if known is not None and msg.inc > known:
                self.client_inc[msg.sender] = msg.inc
                await self._kill_orphans(msg.sender, msg.inc)

    async def probe_round(self) -> None:
        grpc = self.grpc
        pending_clients = {record.client for record in grpc.sRPC.records()}
        for client, state in list(self._probes.items()):
            if client not in pending_clients:
                del self._probes[client]
        for client in pending_clients:
            state = self._probes.setdefault(client, _ProbeState())
            if state.outstanding:
                state.missed += 1
                if state.missed >= self.missed_limit:
                    before = self.kills
                    await self._kill_all_pending(client)
                    self.probe_kills += self.kills - before
                    del self._probes[client]
                    continue
            state.outstanding = True
            ping = NetMsg(type=NetOp.PING, id=0, sender=self.my_id)
            await grpc.net_push(client, ping)
        # One-shot TIMEOUTs re-register for periodic behavior.
        self.register(TIMEOUT, self.probe_round, self.probe_interval)

    async def _kill_all_pending(self, client: ProcessId) -> None:
        """The client is presumed dead: all its pending work is orphaned,
        whatever its incarnation."""
        grpc = self.grpc
        for record in grpc.sRPC.records():
            if record.client != client:
                continue
            if record.executor is not None:
                grpc.runtime.cancel(record.executor)
                self.kills += 1
            grpc.sRPC.remove(record.key)
            await self.trigger(CALL_ABORTED, record.key)


register_protocol(ProbeOrphanTermination.protocol_name)
