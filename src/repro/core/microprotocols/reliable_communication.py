"""Reliable Communication (Section 4.4.3): retransmission + acks.

"The standard approach to making RPC reliable is to retransmit the call to
the server site until the response or some other form of acknowledgment
arrives."  A periodic one-shot TIMEOUT (re-armed by its own handler, as in
the paper) walks ``pRPC`` and retransmits every call to every server that
has not yet acknowledged it, where a REPLY or an explicit ACK both count
as acknowledgment.

Combined with RPC Main this yields *unbounded termination*: the client
keeps trying until it gets a response.
"""

from __future__ import annotations

from repro.core.events import TIMEOUT
from repro.core.grpc import MSG_FROM_NETWORK, NEW_RPC_CALL, RECOVERY
from repro.core.messages import NetMsg, NetOp
from repro.core.microprotocols.base import GRPCMicroProtocol, Prio
from repro.obs import CTX_KEY, register_protocol

__all__ = ["ReliableCommunication"]


class ReliableCommunication(GRPCMicroProtocol):
    """Client-side retransmission until each server acknowledges."""

    protocol_name = "Reliable_Communication"

    def __init__(self, retrans_timeout: float = 0.05):
        super().__init__()
        if retrans_timeout <= 0:
            raise ValueError("retransmission timeout must be positive")
        self.retrans_timeout = retrans_timeout

    def configure(self) -> None:
        self.register(MSG_FROM_NETWORK, self.msg_from_net, Prio.RELIABLE)
        self.register(NEW_RPC_CALL, self.handle_new_call)
        self.register(TIMEOUT, self.handle_timeout, self.retrans_timeout)
        # The paper's recovery story re-links the composite at reboot,
        # which re-runs configure() and thereby re-arms this timer.
        self.register(RECOVERY, self.handle_recovery)

    async def handle_new_call(self, call_id: int) -> None:
        record = self.grpc.pRPC.get(call_id)
        if record is None:
            return
        for entry in record.pending.values():
            entry.acked = False

    async def msg_from_net(self, msg: NetMsg) -> None:
        if msg.type is NetOp.REPLY:
            record = self.client_record_for(msg)
            if record is not None and msg.sender in record.pending:
                record.pending[msg.sender].acked = True
        elif msg.type is NetOp.ACK:
            record = self.grpc.pRPC.get(msg.ackid)
            if record is not None and record.inc == msg.ack_inc \
                    and msg.sender in record.pending:
                record.pending[msg.sender].acked = True

    async def handle_timeout(self) -> None:
        grpc = self.grpc
        obs = grpc.obs
        for record in grpc.pRPC.records():
            for pid, entry in record.pending.items():
                if entry.acked:
                    continue
                if obs is not None:
                    # Attribute the retransmission to this micro-protocol
                    # in the call's span tree (the timer chain has no
                    # task-local context, so parent on the wire context).
                    obs.span_event("rpc.send", node=self.my_id,
                                   parent=record.annotations.get(CTX_KEY),
                                   micro=self.name, call_id=record.id,
                                   dest=pid, retransmit=True)
                msg = NetMsg(type=NetOp.CALL, id=record.id, op=record.op,
                             args=record.request_args,
                             server=record.server,
                             sender=self.my_id, inc=record.inc,
                             annotations=dict(record.annotations) or None)
                await grpc.net_push(pid, msg)
        # One-shot TIMEOUTs are re-registered for periodic behavior,
        # exactly as in the paper's pseudocode.
        self.register(TIMEOUT, self.handle_timeout, self.retrans_timeout)

    async def handle_recovery(self, inc: int) -> None:
        # Nothing to do: pRPC died with the crash and configure() re-armed
        # the retransmission timer.  Present so the recovery path is
        # explicit and testable.
        return


register_protocol(ReliableCommunication.protocol_name)
