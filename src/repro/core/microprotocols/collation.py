"""Collation (Section 4.4.4): combining the replies of a group call.

"Collation semantics specify how responses from the multiple members of
the group are combined before being returned to the client ... any of
these alternatives can be described as a function, so we take the general
approach of having the user provide the desired collation function at
initialization time."

The micro-protocol folds each arriving reply into the call's accumulator:
``acc = func(acc, reply_args)`` starting from ``init``.  The module also
ships the collators the paper names: return-any, return-all, and a
map-all-into-one example (average).

Duplicate replies from the same server are filtered before this handler
runs: Acceptance (priority 3) cancels the event chain for replies whose
sender is already marked done, so Collation (priority 4) folds each
server's reply at most once.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.core.grpc import MSG_FROM_NETWORK, NEW_RPC_CALL
from repro.core.messages import NetMsg, NetOp
from repro.core.microprotocols.base import GRPCMicroProtocol, Prio
from repro.obs import register_protocol

__all__ = ["Collation", "last_reply", "first_reply", "all_replies",
           "average", "majority_vote"]


class Collation(GRPCMicroProtocol):
    """Folds group replies with a user-supplied function."""

    protocol_name = "Collation"

    def __init__(self, cum_func: Callable[[Any, Any], Any],
                 init: Any = None):
        """``cum_func(accumulator, reply_args)`` -> new accumulator.

        ``init`` seeds the accumulator; pass a zero-argument callable to
        get a fresh (e.g. mutable) seed per call.
        """
        super().__init__()
        self.cum_func = cum_func
        self.init = init

    def _initial(self) -> Any:
        return self.init() if callable(self.init) else self.init

    def configure(self) -> None:
        self.register(MSG_FROM_NETWORK, self.msg_from_net, Prio.COLLATION)
        self.register(NEW_RPC_CALL, self.handle_new_call)

    async def handle_new_call(self, call_id: int) -> None:
        record = self.grpc.pRPC.get(call_id)
        if record is not None:
            record.args = self._initial()

    async def msg_from_net(self, msg: NetMsg) -> None:
        if msg.type is not NetOp.REPLY:
            return
        record = self.client_record_for(msg)
        if record is None:
            return
        grpc = self.grpc
        await grpc.pRPC_mutex.acquire()
        try:
            record.args = self.cum_func(record.args, msg.args)
            record.replies_seen += 1
        finally:
            grpc.pRPC_mutex.release()


# ----------------------------------------------------------------------
# Stock collation functions (Section 2.2's examples)
# ----------------------------------------------------------------------

def last_reply(acc: Any, reply: Any) -> Any:
    """Return-any-reply collation: keep whichever reply came last."""
    return reply


def first_reply(acc: Any, reply: Any) -> Any:
    """Return-any-reply collation: keep the first reply that arrived."""
    return reply if acc is None else acc


def all_replies(acc: List[Any], reply: Any) -> List[Any]:
    """Return-all-replies collation; seed with ``init=list``."""
    acc.append(reply)
    return acc


def average(acc: Any, reply: float) -> tuple:
    """Running average; seed with ``init=None``; read ``acc[0]``.

    The accumulator is ``(mean, count)``; the paper's example of a
    function that "maps all replies into one result (e.g., average)".
    """
    if acc is None:
        return (float(reply), 1)
    mean, count = acc
    return ((mean * count + reply) / (count + 1), count + 1)


def majority_vote(acc: Any, reply: Any) -> Any:
    """Tally collation for replicated reads.

    Accumulates a dict of ``result -> votes``; seed with ``init=dict``
    and read the winner with ``max(result.args, key=result.args.get)``.
    Useful when replicas may diverge and the client wants the majority
    answer.  Results must be hashable.
    """
    acc[reply] = acc.get(reply, 0) + 1
    return acc


register_protocol(Collation.protocol_name)
