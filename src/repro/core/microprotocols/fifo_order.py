"""FIFO Order (Section 4.4.6): per-client call order at every server.

"FIFO ordering guarantees that all calls issued by any one client are
executed in the same order by all group members."  Call ids are assigned
sequentially by each client per incarnation, so FIFO order at a server
means executing each client's calls in id order within the newest
incarnation seen.

The ``In_Progress`` table tracks, per client, the incarnation and the next
id allowed to execute; arrivals ahead of their turn wait (their HOLD slot
stays unset) and are released by ``handle_reply`` when their predecessor
finishes.  Stale arrivals — older incarnation, or an id below ``next`` —
are dropped, which (as the paper notes) deliberately tolerates duplicate
execution rather than tracking history; pair with Unique Execution when
replies can be lost, so retransmits of already-answered calls are served
from the reply store instead of starving.

Requires Reliable Communication (Figure 2/4): order gating means a lost
call would block all its successors forever without retransmission.
"""

from __future__ import annotations

from typing import Dict

from repro.core.grpc import MSG_FROM_NETWORK, REPLY_FROM_SERVER
from repro.core.messages import CallKey, NetMsg, NetOp
from repro.core.microprotocols.base import GRPCMicroProtocol, Prio
from repro.net.message import ProcessId
from repro.obs import register_protocol

__all__ = ["FIFOOrder"]

#: FIFO Order's slot in the HOLD arrays.
FIFO = "FIFO"


class _ClientProgress:
    __slots__ = ("inc", "next")

    def __init__(self, inc: int, next_id: int):
        self.inc = inc
        self.next = next_id


class FIFOOrder(GRPCMicroProtocol):
    """Executes each client's calls in issue order (per incarnation)."""

    protocol_name = "FIFO_Order"

    def __init__(self) -> None:
        super().__init__()
        self.in_progress: Dict[ProcessId, _ClientProgress] = {}

    def reset(self) -> None:
        self.in_progress.clear()

    def configure(self) -> None:
        self.grpc.hold.declare(FIFO)
        self.register(MSG_FROM_NETWORK, self.msg_from_net, Prio.FIFO)
        self.register(REPLY_FROM_SERVER, self.handle_reply, 1)

    def unconfigure(self) -> None:
        self.grpc.hold.retract(FIFO)

    def seed_progress(self, client: ProcessId, inc: int,
                      next_id: int) -> None:
        """Start ``client``'s order gating at ``next_id`` (adaptation).

        A FIFO gate swapped into a *running* group must not seed from 1:
        the clients' id cursors are already past it, so every arrival
        would wait for predecessors that completed under the previous
        composition.  The adaptation engine seeds each client's cursor
        here during the switch.  Only moves forward — an already-known
        client that is further along keeps its progress.
        """
        info = self.in_progress.get(client)
        if info is None or info.inc < inc \
                or (info.inc == inc and next_id > info.next):
            self.in_progress[client] = _ClientProgress(inc, next_id)

    async def msg_from_net(self, msg: NetMsg) -> None:
        if msg.type is not NetOp.CALL:
            return
        grpc = self.grpc
        key = self.call_key(msg)
        client = msg.sender
        info = self.in_progress.get(client)
        if info is None:
            # Client ids start at 1 per incarnation (RPC Main), so order
            # gating starts there.  The paper seeds `next` from the first
            # *arrived* id instead, which livelocks when the network
            # reorders the client's opening burst (deviation #10).
            info = _ClientProgress(msg.inc, 1)
            self.in_progress[client] = info
        if info.inc > msg.inc or (info.inc == msg.inc
                                  and msg.id < info.next):
            # Stale: an old incarnation, or an already-passed id.
            self.cancel_event()
            grpc.sRPC.remove(key)
            return
        if info.inc < msg.inc:
            # New client incarnation: its id sequence starts over at 1.
            info.inc = msg.inc
            info.next = 1
        if msg.id == info.next:
            await grpc.forward_up(key, FIFO)

    async def handle_reply(self, key: CallKey) -> None:
        grpc = self.grpc
        record = grpc.sRPC.get(key)
        if record is None:
            return
        info = self.in_progress.get(record.client)
        if info is None or info.inc != record.inc \
                or record.call_id != info.next:
            return
        info.next = record.call_id + 1
        successor = (record.client, record.inc, info.next)
        if successor in grpc.sRPC:
            await grpc.forward_up(successor, FIFO)


register_protocol(FIFOOrder.protocol_name)
