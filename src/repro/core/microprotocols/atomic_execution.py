"""Atomic Execution (Section 4.4.5): all-or-nothing server procedures.

"To provide 'at most once' semantics, gRPC also has to guarantee that
execution of the server procedure is atomic ... if the server does have
stable state, transactional techniques must be used."  This micro-protocol
takes the paper's second option — atomicity inside the RPC layer — using
whole-state checkpoints:

* after every completed execution, ``checkpoint()`` writes the server's
  full (volatile + stable) state to stable storage and atomically swaps
  the ``old`` checkpoint address (a ``stable`` variable);
* on ``RECOVERY``, ``load(old)`` restores the last checkpoint, erasing any
  partial effects of the execution in progress when the site crashed.

The server protocol above gRPC must implement ``checkpoint_state()`` /
``restore_state(state)`` (see :class:`repro.apps.dispatcher.ServerDispatcher`).
An initial checkpoint is taken lazily before the first call executes, so
a crash during the very first procedure is also rolled back — the paper
leaves this bootstrap implicit.

Delta mode (extension) implements the optimization the paper proposes in
the very next sentence: "this implementation is inefficient when the
state of the user protocol is large.  This can be optimized by just
storing the changes ('deltas') from one checkpoint to the next."  With
``delta=True`` and dict-shaped application state, each post-execution
checkpoint persists only the changed/removed keys; recovery replays the
delta chain over the last full snapshot, and every ``compact_every``
deltas the chain is collapsed into a fresh full snapshot.

Requires Serial Execution (Figure 4): whole-state checkpoints are only
meaningful when calls do not interleave.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.grpc import MSG_FROM_NETWORK, RECOVERY, REPLY_FROM_SERVER
from repro.core.messages import CallKey, NetMsg, NetOp
from repro.core.microprotocols.base import GRPCMicroProtocol
from repro.errors import ConfigurationError
from repro.obs import register_protocol

__all__ = ["AtomicExecution", "state_delta", "apply_delta"]

#: Sentinel marking a key deleted since the previous checkpoint.
_DELETED = "__repro_deleted__"


def state_delta(old: Dict[str, Any], new: Dict[str, Any]) -> Dict[str, Any]:
    """Shallow structural diff of two dict-shaped states.

    Nested dict values are diffed recursively one level at a time;
    everything else is compared by equality and stored whole.
    """
    delta: Dict[str, Any] = {}
    for key, value in new.items():
        if key not in old:
            delta[key] = value
        elif isinstance(value, dict) and isinstance(old[key], dict):
            inner = state_delta(old[key], value)
            if inner:
                delta[key] = {"__nested__": inner}
        elif old[key] != value:
            delta[key] = value
    for key in old:
        if key not in new:
            delta[key] = _DELETED
    return delta


def apply_delta(state: Dict[str, Any], delta: Dict[str, Any]) -> None:
    """Apply a :func:`state_delta` in place."""
    for key, value in delta.items():
        if value == _DELETED:
            state.pop(key, None)
        elif isinstance(value, dict) and "__nested__" in value:
            nested = state.setdefault(key, {})
            apply_delta(nested, value["__nested__"])
        else:
            state[key] = value


class AtomicExecution(GRPCMicroProtocol):
    """Checkpoint/rollback atomicity for the server procedure."""

    protocol_name = "Atomic_Execution"

    def __init__(self, *, delta: bool = False,
                 compact_every: int = 16) -> None:
        super().__init__()
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.delta = delta
        self.compact_every = compact_every
        # `old` is a *stable* variable in the paper; it survives reset()
        # because instance attributes persist while the addressed snapshot
        # lives in the node's StableStore ("disk").
        self._old: Optional[int] = None
        #: Stable addresses of the delta chain on top of ``_old``.
        self._deltas: List[int] = []
        # Volatile cache of the state as of the last checkpoint, used to
        # compute the next delta without re-reading stable storage.
        self._last_state: Optional[Dict[str, Any]] = None

    def reset(self) -> None:
        # The delta-computation cache is volatile; the chain itself
        # (addresses + snapshots) is stable.
        self._last_state = None

    def configure(self) -> None:
        # Runs before any handler that could start an execution, so the
        # initial checkpoint exists before the first call runs.
        self.register(MSG_FROM_NETWORK, self.ensure_initial_checkpoint, 0)
        self.register(REPLY_FROM_SERVER, self.handle_reply, 2)
        self.register(RECOVERY, self.handle_recovery)

    # -- checkpoint()/load() (the paper's assumed operations) -----------

    def _server_state_holder(self):
        holder = self.grpc.upper
        if holder is None or not hasattr(holder, "checkpoint_state"):
            raise ConfigurationError(
                "Atomic_Execution needs a server protocol above gRPC that "
                "implements checkpoint_state()/restore_state()")
        return holder

    def checkpoint(self) -> int:
        """Write the server's full state to stable storage."""
        state = self._server_state_holder().checkpoint_state()
        return self.grpc.node.stable.write(state)

    def load(self, address: int) -> None:
        """Restart the server from the checkpoint at ``address``."""
        state = self.grpc.node.stable.read(address)
        self._server_state_holder().restore_state(state)

    # -- handlers --------------------------------------------------------

    async def ensure_initial_checkpoint(self, msg: NetMsg) -> None:
        if self._old is None and msg.type is NetOp.CALL:
            self._old = self.checkpoint()
            if self.delta:
                self._last_state = \
                    self._server_state_holder().checkpoint_state()
                # Changes predating the base snapshot are inside it;
                # drop any accumulated app-tracked delta.
                self._discard_app_delta()

    async def handle_reply(self, key: CallKey) -> None:
        if self.delta:
            self._checkpoint_delta()
            return
        new = self.checkpoint()
        previous, self._old = self._old, new  # atomic stable assignment
        if previous is not None:
            self.grpc.node.stable.free(previous)

    async def handle_recovery(self, inc: int) -> None:
        if self._old is None:
            return
        if not self.delta or not self._deltas:
            self.load(self._old)
            if self.delta:
                self._last_state = \
                    self._server_state_holder().checkpoint_state()
            return
        stable = self.grpc.node.stable
        state = stable.read(self._old)
        for address in self._deltas:
            apply_delta(state, stable.read(address))
        self._server_state_holder().restore_state(state)
        self._last_state = state

    # -- delta mode internals --------------------------------------------

    def _app_delta(self) -> Optional[Dict[str, Any]]:
        """Changes since the last checkpoint, from the app if it tracks
        them (``pop_delta``), else ``None`` to request the diff fallback.

        App-tracked deltas are the optimization's full form: no per-call
        whole-state copy at all.  The diff fallback still snapshots the
        state each call but writes only the difference to stable storage.
        """
        holder = self._server_state_holder()
        pop = getattr(holder, "pop_delta", None)
        return pop() if callable(pop) else None

    def _discard_app_delta(self) -> None:
        holder = self._server_state_holder()
        pop = getattr(holder, "pop_delta", None)
        if callable(pop):
            pop()

    def _checkpoint_delta(self) -> None:
        stable = self.grpc.node.stable
        delta = self._app_delta()
        if delta is not None:
            self._deltas.append(stable.write(delta))
            if len(self._deltas) >= self.compact_every:
                self._compact(
                    self._server_state_holder().checkpoint_state())
            return
        current = self._server_state_holder().checkpoint_state()
        if self._last_state is None:
            # Cache lost (e.g. first checkpoint after a recovery that had
            # no pending calls); fall back to a full snapshot.
            self._compact(current)
            return
        self._deltas.append(stable.write(state_delta(self._last_state,
                                                     current)))
        self._last_state = current
        if len(self._deltas) >= self.compact_every:
            self._compact(current)

    def _compact(self, current: Dict[str, Any]) -> None:
        """Collapse base + deltas into a fresh full snapshot."""
        stable = self.grpc.node.stable
        new_base = stable.write(current)
        old_base, self._old = self._old, new_base
        if old_base is not None:
            stable.free(old_base)
        for address in self._deltas:
            stable.free(address)
        self._deltas.clear()
        self._last_state = current
        self._discard_app_delta()

    @property
    def delta_chain_length(self) -> int:
        """Pending deltas since the last full snapshot (metrics)."""
        return len(self._deltas)


register_protocol(AtomicExecution.protocol_name)
