"""Serial Execution (Section 4.4.5): one call at a time at the server.

Needed because the checkpoint-based Atomic Execution technique "only works
if calls are processed one at a time by the server"; also useful on its
own for servers with non-reentrant procedures.

The paper's pseudocode does ``P(serial)`` in a default-priority
``msg_from_net`` handler and ``V(serial)`` on ``REPLY_FROM_SERVER``.
Registered at the default (lowest) priority that P would run *after* RPC
Main has already executed the call, and with ordering micro-protocols or
duplicate drops the P/V pairing leaks the semaphore.  We therefore
implement the property at its semantic site: this micro-protocol installs
the composite's ``serial`` semaphore as the *execution gate* that
``forward_up`` acquires around every server-procedure execution
(deviation #6 in DESIGN.md).  Mutual exclusion is released in a
``finally``, so orphan kills and crashes cannot wedge the server.
"""

from __future__ import annotations

from repro.core.microprotocols.base import GRPCMicroProtocol
from repro.obs import register_protocol

__all__ = ["SerialExecution"]


class SerialExecution(GRPCMicroProtocol):
    """Serializes server-procedure executions via the execution gate."""

    protocol_name = "Serial_Execution"

    def configure(self) -> None:
        grpc = self.grpc
        grpc.execution_gate = grpc.serial

    def reset(self) -> None:
        # The composite rebuilt `serial` fresh during crash teardown;
        # configure() re-installs it as the gate.
        return

    def unconfigure(self) -> None:
        # Swapped out mid-run: clear the gate so executions stop
        # serializing.  The composite is drained at this point, so no
        # task is holding (or waiting on) the semaphore.
        grpc = self.grpc
        if grpc.execution_gate is grpc.serial:
            grpc.execution_gate = None


register_protocol(SerialExecution.protocol_name)
