"""Unique Execution (Section 4.4.5): the server procedure runs at most
once per call.

"The basic strategy is to keep track of requests that have already been
executed.  In our solution, the server stores its response to the original
request until the client acknowledges the response.  If a duplicate
request is received after the acknowledgement has been received, the
message is assumed to be old and simply discarded."

Server side: ``OldCalls`` remembers every call ever admitted (so
in-progress and post-ack duplicates are discarded) and ``OldResults``
stores replies awaiting client ACK (so pre-ack duplicates are answered
from the store without re-execution).  Client side: every REPLY is ACKed.

Both tables key calls by (client, incarnation, id) — the paper's bare-id
indexing collides across clients (deviation #2) — and both are volatile:
a server crash forgets them, which is precisely why "exactly once" gives
no guarantee when the invocation terminates abnormally (Section 2.1).
RPC Main + Reliable Communication alone give at-least-once; adding this
micro-protocol upgrades the pair to exactly-once (Figure 1).
"""

from __future__ import annotations

from typing import Any, Dict, Set

from repro.core.grpc import CALL_ABORTED, MSG_FROM_NETWORK, REPLY_FROM_SERVER
from repro.core.messages import CallKey, NetMsg, NetOp
from repro.core.microprotocols.base import GRPCMicroProtocol, Prio
from repro.obs import register_protocol

__all__ = ["UniqueExecution"]


class UniqueExecution(GRPCMicroProtocol):
    """Filters duplicate calls; replays stored replies; ACKs replies."""

    protocol_name = "Unique_Execution"

    def __init__(self) -> None:
        super().__init__()
        self.old_calls: Set[CallKey] = set()
        self.old_results: Dict[CallKey, Any] = {}

    def reset(self) -> None:
        self.old_calls.clear()
        self.old_results.clear()

    def configure(self) -> None:
        self.register(MSG_FROM_NETWORK, self.msg_from_net, Prio.UNIQUE)
        self.register(MSG_FROM_NETWORK, self.admit_call, Prio.UNIQUE_ADMIT)
        self.register(REPLY_FROM_SERVER, self.handle_reply, 1)
        self.register(CALL_ABORTED, self.handle_abort)

    async def handle_abort(self, key: CallKey) -> None:
        """An orphan kill abandoned this call: forget it ever arrived.

        Without this, a *live* client's retransmission of a falsely
        killed call would be discarded as a duplicate forever.
        """
        self.old_calls.discard(key)
        self.old_results.pop(key, None)

    async def handle_reply(self, key: CallKey) -> None:
        record = self.grpc.sRPC.get(key)
        if record is not None:
            self.old_results[key] = record.args

    async def msg_from_net(self, msg: NetMsg) -> None:
        grpc = self.grpc
        if msg.type is NetOp.CALL:
            key = self.call_key(msg)
            if key in self.old_results:
                # Executed but not yet ACKed: replay the stored reply.
                reply = NetMsg(type=NetOp.REPLY, id=msg.id, op=msg.op,
                               args=self.old_results[key],
                               server=msg.server, sender=self.my_id,
                               inc=msg.inc)
                await grpc.net_push(msg.sender, reply)
                self.cancel_event()
            elif key in self.old_calls:
                # In progress, or executed and already ACKed: discard.
                self.cancel_event()
        elif msg.type is NetOp.REPLY:
            # Client side: acknowledge so the server can retire the result.
            ack = NetMsg(type=NetOp.ACK, server=msg.server,
                         sender=self.my_id, inc=grpc.inc_number,
                         ackid=msg.id, ack_inc=msg.inc)
            await grpc.net_push(msg.sender, ack)
        elif msg.type is NetOp.ACK:
            self.old_results.pop((msg.sender, msg.ack_inc, msg.ackid), None)

    async def admit_call(self, msg: NetMsg) -> None:
        """Record a call as seen — *after* the orphan filters ran.

        Runs at priority 2.5 so a call deferred by Interference Avoidance
        (which cancels the chain at 2.2) is never admitted; its
        retransmissions get a fresh decision instead of being discarded
        as duplicates.
        """
        if msg.type is NetOp.CALL:
            self.old_calls.add(self.call_key(msg))


register_protocol(UniqueExecution.protocol_name)
