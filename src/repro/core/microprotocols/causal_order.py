"""Causal Order (extension): execute calls respecting happened-before.

Section 2.2 notes that beyond FIFO and total order, "other variants such
as partial or causal order have also been defined"; the paper implements
only FIFO and Total.  This extension micro-protocol adds causal order:

* the client side maintains a *causal context* — the set of call keys
  whose completion this client has observed — and piggybacks it on every
  outgoing call (via the record's annotation channel);
* the server side gates execution (HOLD slot ``CAUSAL``) until every
  dependency of a call has executed locally, so an effect can never be
  applied before its causes.

Causality within one client is automatic (each call depends on the
client's previously completed calls — subsuming FIFO for that client).
Causality *across* clients flows through application-level tokens:
``token()`` captures a client's context, ``join(token)`` merges it into
another client's — modelling "B read a value A wrote, so B's next write
causally follows A's".

Requires Reliable Communication: a parked call waits for its
dependencies, which must eventually arrive.  Like the paper's ordering
micro-protocols, the executed-set is volatile; a recovering server
rejoining mid-history is out of scope (as it is for Total Order's
omitted agreement phase).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.core.grpc import (
    CALL_ABORTED,
    MSG_FROM_NETWORK,
    NEW_RPC_CALL,
    REPLY_FROM_SERVER,
)
from repro.core.messages import CallKey, NetMsg, NetOp
from repro.core.microprotocols.base import GRPCMicroProtocol
from repro.net.message import ProcessId
from repro.obs import register_protocol

__all__ = ["CausalOrder", "CausalToken"]

#: Causal Order's slot in the HOLD arrays.
CAUSAL = "CAUSAL"

#: A transferable causal context: a frozen set of call keys.
CausalToken = FrozenSet[CallKey]

#: Dispatch priority: after RPC Main stored the record (3.0), alongside
#: the other ordering gates.
_PRIO_CAUSAL = 4.5


class CausalOrder(GRPCMicroProtocol):
    """Gates execution on piggybacked happened-before dependencies."""

    protocol_name = "Causal_Order"

    def __init__(self) -> None:
        super().__init__()
        # client side
        self._context: Set[CallKey] = set()
        # server side
        self._executed: Set[CallKey] = set()
        self._waiting: Dict[CallKey, Tuple[CallKey, ...]] = {}

    def reset(self) -> None:
        self._context.clear()
        self._executed.clear()
        self._waiting.clear()

    def configure(self) -> None:
        self.grpc.hold.declare(CAUSAL)
        self.register(NEW_RPC_CALL, self.handle_new_call, 1)
        self.register(MSG_FROM_NETWORK, self.msg_from_net, _PRIO_CAUSAL)
        self.register(REPLY_FROM_SERVER, self.handle_reply, 1)
        self.register(CALL_ABORTED, self.handle_abort)

    def unconfigure(self) -> None:
        self.grpc.hold.retract(CAUSAL)

    async def handle_abort(self, key: CallKey) -> None:
        """Forget a killed call so its retransmission re-parks cleanly."""
        self._waiting.pop(key, None)

    # ------------------------------------------------------------------
    # Client side: context maintenance and token API
    # ------------------------------------------------------------------

    def token(self) -> CausalToken:
        """This client's current causal context, for handing to others."""
        return frozenset(self._context)

    def join(self, token: CausalToken) -> None:
        """Merge another client's context into this one.

        After joining, every subsequent call from this client causally
        follows everything the token captured.
        """
        self._context.update(token)

    async def handle_new_call(self, call_id: int) -> None:
        record = self.grpc.pRPC.get(call_id)
        if record is None:
            return
        record.annotations["deps"] = tuple(sorted(self._context))

    # ------------------------------------------------------------------
    # Both sides
    # ------------------------------------------------------------------

    async def msg_from_net(self, msg: NetMsg) -> None:
        if msg.type is NetOp.REPLY:
            # Client side: observing a completion makes it a cause of
            # everything this client does next.
            record = self.client_record_for(msg)
            if record is not None:
                self._context.add((self.my_id, record.inc, record.id))
            return
        if msg.type is not NetOp.CALL:
            return
        key = self.call_key(msg)
        if self.grpc.sRPC.get(key) is None:
            return   # dropped upstream (duplicate, orphan, ...)
        deps = tuple(msg.annotation("deps", ()))
        missing = [d for d in deps if tuple(d) not in self._executed]
        if missing:
            self._waiting[key] = deps
        else:
            await self.grpc.forward_up(key, CAUSAL)

    async def handle_reply(self, key: CallKey) -> None:
        """An execution finished here: release now-satisfied waiters."""
        self._executed.add(key)
        ready = [waiter for waiter, deps in self._waiting.items()
                 if all(tuple(d) in self._executed for d in deps)]
        for waiter in ready:
            del self._waiting[waiter]
        for waiter in ready:
            await self.grpc.forward_up(waiter, CAUSAL)

    # -- introspection (tests/benchmarks) --------------------------------

    @property
    def parked(self) -> int:
        """Calls currently gated on unexecuted dependencies."""
        return len(self._waiting)

    @property
    def executed_count(self) -> int:
        return len(self._executed)


register_protocol(CausalOrder.protocol_name)
