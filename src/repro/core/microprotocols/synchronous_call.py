"""Synchronous Call (Section 4.4.2): blocking call semantics.

Registers at the *lowest* priority on ``CALL_FROM_USER`` so it runs after
RPC Main has recorded and transmitted the call; it then blocks the client
thread on the per-call semaphore until Acceptance (or Bounded Termination)
releases it, copies the collated results and status back into the user
message, and retires the call record.
"""

from __future__ import annotations

from repro.core.grpc import CALL_FROM_USER
from repro.core.messages import UserMsg, UserOp
from repro.core.microprotocols.base import GRPCMicroProtocol
from repro.obs import register_protocol

__all__ = ["SynchronousCall"]


class SynchronousCall(GRPCMicroProtocol):
    """Blocks the caller until the call terminates."""

    protocol_name = "Synchronous_Call"

    def configure(self) -> None:
        self.register(CALL_FROM_USER, self.msg_from_user)

    async def msg_from_user(self, umsg: UserMsg) -> None:
        if umsg.type is not UserOp.CALL:
            return
        grpc = self.grpc
        record = grpc.pRPC.get(umsg.id)
        if record is None:
            return
        await record.sem.acquire()
        umsg.args = record.args
        umsg.status = record.status
        await grpc.pRPC_mutex.acquire()
        grpc.pRPC.remove(umsg.id)
        grpc.pRPC_mutex.release()


register_protocol(SynchronousCall.protocol_name)
