"""Call Observer (extension): protocol-level tracing as a micro-protocol.

The framework's composition model makes *observation* just another
micro-protocol: this one registers read-only handlers at the extreme
priorities of every event and records a per-call timeline — when the
call entered gRPC, every network message it generated, when each server
executed it, and when the client thread resumed.  Linking it into a
composite changes no behavior (it never writes shared state, never
cancels events), which the test suite verifies.

All observers in one deployment share a :class:`CallTraceLog`; query it
by call identity for a timeline or ask for summary statistics (e.g.
execution fan-out per call), as the quickstart example does.

When the deployment has the observability layer enabled, the log also
mirrors every observation into the shared
:class:`~repro.obs.recorder.Recorder` as ``call.point`` event records, so
the exported JSONL trace carries the protocol-level timeline alongside
the span tree.  The query API (:meth:`~CallTraceLog.timeline` &c.) is
unchanged either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.grpc import (
    CALL_FROM_USER,
    MSG_FROM_NETWORK,
    NEW_RPC_CALL,
    REPLY_FROM_SERVER,
)
from repro.core.messages import CallKey, NetMsg, NetOp, UserMsg, UserOp
from repro.core.microprotocols.base import GRPCMicroProtocol
from repro.obs import register_protocol

__all__ = ["TracePoint", "CallTraceLog", "CallObserver"]

#: Observation priorities bracketing every real handler.
_FIRST = -1_000.0
_LAST = 2_000_000.0


@dataclass(frozen=True)
class TracePoint:
    """One timestamped observation, attributed to the observing node."""

    time: float
    node: int
    kind: str
    detail: Any = None


class CallTraceLog:
    """Shared sink for every observer in a deployment.

    Optionally mirrors into an enabled
    :class:`~repro.obs.recorder.Recorder` (as ``call.point`` event
    records); pass ``recorder=None`` for the standalone behavior.
    """

    def __init__(self, recorder: Any = None) -> None:
        self._points: Dict[CallKey, List[TracePoint]] = {}
        self.recorder = (recorder if recorder is not None
                         and getattr(recorder, "enabled", False) else None)

    def record(self, key: CallKey, point: TracePoint) -> None:
        self._points.setdefault(key, []).append(point)
        if self.recorder is not None:
            self.recorder.record_event(
                "call.point", node=point.node, time=point.time,
                key=tuple(key), kind=point.kind, detail=point.detail)

    def timeline(self, key: CallKey) -> List[TracePoint]:
        """All observations of one call, in time order."""
        return sorted(self._points.get(key, []),
                      key=lambda p: (p.time, p.node))

    def calls(self) -> List[CallKey]:
        return list(self._points)

    def executions(self, key: CallKey) -> List[TracePoint]:
        return [p for p in self.timeline(key) if p.kind == "executed"]

    def first_execution_latency(self, key: CallKey) -> Optional[float]:
        """Seconds from issue to the first server execution."""
        issued = next((p.time for p in self.timeline(key)
                       if p.kind == "issued"), None)
        executed = next((p.time for p in self.timeline(key)
                         if p.kind == "executed"), None)
        if issued is None or executed is None:
            return None
        return executed - issued

    def format_timeline(self, key: CallKey) -> str:
        """A human-readable per-call timeline (used by examples)."""
        lines = [f"call {key}:"]
        for p in self.timeline(key):
            lines.append(f"  {p.time * 1000:9.2f} ms  node {p.node:<4} "
                         f"{p.kind}"
                         + (f"  {p.detail}" if p.detail is not None
                            else ""))
        return "\n".join(lines)


class CallObserver(GRPCMicroProtocol):
    """Read-only tracer; link one instance per composite."""

    protocol_name = "Call_Observer"

    def __init__(self, log: CallTraceLog):
        super().__init__()
        self.log = log
        # Issue points waiting for their call id (FIFO: ids are assigned
        # under the pRPC mutex in the same order the chains entered).
        self._pending_issues: List[TracePoint] = []

    def configure(self) -> None:
        self.register(CALL_FROM_USER, self.on_issue, _FIRST)
        self.register(CALL_FROM_USER, self.on_return, _LAST)
        self.register(NEW_RPC_CALL, self.on_recorded, _LAST)
        self.register(MSG_FROM_NETWORK, self.on_message, _FIRST)
        self.register(REPLY_FROM_SERVER, self.on_executed, _FIRST)

    # -- helpers ---------------------------------------------------------

    def _point(self, kind: str, detail: Any = None) -> TracePoint:
        return TracePoint(self.runtime.now(), self.my_id, kind, detail)

    def _client_key(self, call_id: int) -> CallKey:
        return (self.my_id, self.grpc.inc_number, call_id)

    # -- handlers (all read-only) -----------------------------------------

    async def on_issue(self, umsg: UserMsg) -> None:
        if umsg.type is UserOp.CALL:
            # The id is not assigned yet; on_recorded matches it up.
            self._pending_issues.append(self._point("issued", umsg.op))

    async def on_recorded(self, call_id: int) -> None:
        if self._pending_issues:
            self.log.record(self._client_key(call_id),
                            self._pending_issues.pop(0))

    async def on_return(self, umsg: UserMsg) -> None:
        if umsg.type in (UserOp.CALL, UserOp.REQUEST) and umsg.id:
            self.log.record(self._client_key(umsg.id),
                            self._point("client-resumed",
                                        umsg.status.value))

    async def on_message(self, msg: NetMsg) -> None:
        if msg.type in (NetOp.CALL, NetOp.REPLY, NetOp.ORDER):
            if msg.type is NetOp.CALL:
                key = self.call_key(msg)
            else:
                key = (msg.client if msg.type is NetOp.ORDER
                       else self.my_id, msg.inc, msg.id)
            self.log.record(key,
                            self._point(f"received-{msg.type.value}",
                                        f"from {msg.sender}"))

    async def on_executed(self, key: CallKey) -> None:
        record = self.grpc.sRPC.get(key)
        detail = record.op if record is not None else None
        self.log.record(key, self._point("executed", detail))


register_protocol(CallObserver.protocol_name)
