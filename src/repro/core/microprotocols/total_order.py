"""Total Order (Section 4.4.6): all servers execute all calls in one order.

"Total Order ... uses one group member, the leader, to assign the total
order in which calls will be executed and then disseminate it to the
group.  The leader at any point is defined to be the server with the
largest unique identifier of all non-failed servers."

Protocol sketch (faithful to the paper's two-handler structure):

* ``assign_order`` (priority 1): the leader assigns the next rank to each
  new call — idempotently, re-announcing the same rank for retransmitted
  calls — and multicasts an ORDER message to the group.  A non-leader that
  sees a retransmitted call it is still waiting on forwards it to the
  leader, covering the case where the original never reached the leader.
* ``msg_from_net`` (priority 4, after RPC Main stored the record): gates
  execution.  A call executes when its rank equals ``next_entry``;
  later-ranked calls park in ``Ready_list``; unranked calls park in
  ``Waiting_set`` until their ORDER message arrives.  ``handle_reply``
  advances ``next_entry`` and releases the next ready call.

Followers track the leader's counter from observed ORDER messages, so on
a leader failure (reported via membership) the next-largest member
continues the sequence — a practical stand-in for the agreement phase the
paper explicitly omits "for brevity".  The paper's stale-duplicate cancel
inside ``assign_order`` is dropped: it ran *before* Unique Execution could
replay the stored reply, starving clients whose reply was lost
(deviation #7 in DESIGN.md); the priority-4 handler still discards stale
calls.

**The agreement phase (extension, ``resync=True``).**  The simplified
protocol is unsafe when the leader crashes with ORDER messages in
flight: an assignment seen by some survivors but not the new leader lets
the new leader reuse the rank.  With resync enabled, a member that
becomes leader (membership event) first multicasts ORDER_QUERY; members
answer ORDER_INFO with their known assignments; the leader merges (all
ranks came from one failed leader, so the union is conflict-free),
adopts ``max(rank) + 1`` as its counter, and multicasts the merged map
before assigning anything new.  Assignments the old leader made that
*no* survivor saw are reassigned fresh — safe, because no survivor can
have executed them.

Dependencies (stated in the paper): Reliable Communication and Unique
Execution configured, Bounded Termination absent.  Resync additionally
needs a membership service (to learn of the leader's death).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.events import TIMEOUT
from repro.core.grpc import MSG_FROM_NETWORK, REPLY_FROM_SERVER
from repro.core.messages import CallKey, MemChange, NetMsg, NetOp
from repro.core.microprotocols.base import GRPCMicroProtocol, Prio
from repro.net.message import Group, ProcessId
from repro.obs import register_protocol

__all__ = ["TotalOrder"]

#: Total Order's slot in the HOLD arrays.
TOTAL = "TOTAL"


class TotalOrder(GRPCMicroProtocol):
    """Leader-assigned total execution order across the server group."""

    protocol_name = "Total_Order"

    def __init__(self, *, resync: bool = False,
                 resync_grace: float = 0.5) -> None:
        super().__init__()
        self.old_orders: Dict[CallKey, int] = {}
        self.ready_list: Dict[int, CallKey] = {}
        self.waiting_set: Set[CallKey] = set()
        self.next_order = 1    # next rank the leader will assign
        self.next_entry = 1    # next rank allowed to execute
        # -- agreement-phase extension --
        self.resync = resync
        self.resync_grace = resync_grace
        self._group: Group | None = None
        self._was_leader = False
        self._resyncing = False
        self._awaiting_info: Set[ProcessId] = set()
        #: How many resync rounds this member led (experiment metric).
        self.resyncs_led = 0

    def reset(self) -> None:
        self.old_orders.clear()
        self.ready_list.clear()
        self.waiting_set.clear()
        self.next_order = 1
        self.next_entry = 1
        self._group = None
        self._was_leader = False
        self._resyncing = False
        self._awaiting_info.clear()

    def configure(self) -> None:
        self.grpc.hold.declare(TOTAL)
        self.register(MSG_FROM_NETWORK, self.assign_order,
                      Prio.TOTAL_ASSIGN)
        self.register(MSG_FROM_NETWORK, self.msg_from_net, Prio.TOTAL)
        self.register(REPLY_FROM_SERVER, self.handle_reply, 1)
        if self.resync:
            from repro.core.grpc import MEMBERSHIP_CHANGE
            self.register(MSG_FROM_NETWORK, self.handle_resync_traffic,
                          0.5)
            self.register(MEMBERSHIP_CHANGE, self.handle_membership)

    def unconfigure(self) -> None:
        self.grpc.hold.retract(TOTAL)

    # ------------------------------------------------------------------

    def leader(self, server: Group) -> ProcessId:
        """Largest-id member the membership service believes is alive."""
        grpc = self.grpc
        alive = None if grpc.members is None else grpc.members
        return server.leader(alive)

    def i_am_leader(self, server: Group) -> bool:
        try:
            return self.my_id == self.leader(server)
        except ValueError:  # no live members known — cannot lead
            return False

    # ------------------------------------------------------------------

    async def assign_order(self, msg: NetMsg) -> None:
        if msg.type is not NetOp.CALL:
            return
        grpc = self.grpc
        key = self.call_key(msg)
        self._note_group(msg.server)
        if self.i_am_leader(msg.server):
            rank = self.old_orders.get(key)
            if rank is None:
                if self._resyncing:
                    # Agreement phase in progress: assigning now could
                    # reuse a rank the failed leader already handed out.
                    # The client's retransmission will retry.
                    return
                rank = self.next_order
                self.old_orders[key] = rank
                self.next_order += 1
            order_msg = NetMsg(type=NetOp.ORDER, id=msg.id,
                               server=msg.server, sender=self.my_id,
                               inc=msg.inc, order=rank, client=msg.sender)
            await grpc.net_push(msg.server, order_msg)
        elif key in self.waiting_set:
            # Retransmitted but still unordered here: nudge the leader in
            # case the original call never reached it.
            await grpc.net_push(self.leader(msg.server), msg)

    async def msg_from_net(self, msg: NetMsg) -> None:
        grpc = self.grpc
        if msg.type is NetOp.CALL:
            key = self.call_key(msg)
            rank = self.old_orders.get(key)
            if rank is None:
                self.waiting_set.add(key)
            elif rank < self.next_entry:
                # Already executed in an earlier arrival: stale duplicate.
                self.cancel_event()
                grpc.sRPC.remove(key)
            elif rank == self.next_entry:
                await grpc.forward_up(key, TOTAL)
            else:
                self.ready_list[rank] = key
        elif msg.type is NetOp.ORDER:
            self._note_group(msg.server)
            await self._learn((msg.client, msg.inc, msg.id), msg.order)

    async def _learn(self, key: CallKey, rank: int) -> None:
        """Adopt one order assignment (from an ORDER message or a resync
        merge) and release the call if it is now executable."""
        # Track the leader's counter for failover continuity.
        if self.next_order < rank + 1:
            self.next_order = rank + 1
        if key not in self.old_orders:
            self.old_orders[key] = rank
        if key in self.waiting_set:
            self.waiting_set.discard(key)
            if rank == self.next_entry:
                await self.grpc.forward_up(key, TOTAL)
            elif rank > self.next_entry:
                self.ready_list[rank] = key
            else:
                self.grpc.sRPC.remove(key)

    async def handle_reply(self, key: CallKey) -> None:
        record = self.grpc.sRPC.get(key)
        if record is None or self.old_orders.get(key) != self.next_entry:
            return
        self.next_entry += 1
        successor = self.ready_list.pop(self.next_entry, None)
        if successor is not None:
            await self.grpc.forward_up(successor, TOTAL)

    # ------------------------------------------------------------------
    # The agreement phase (extension; paper omits it "for brevity")
    # ------------------------------------------------------------------

    def _note_group(self, server: Group) -> None:
        if self._group is None:
            self._group = server
            self._was_leader = self.i_am_leader(server)

    async def handle_membership(self, who: ProcessId,
                                change: MemChange) -> None:
        if change is not MemChange.FAILURE or self._group is None:
            return
        try:
            leader_now = self.i_am_leader(self._group)
        except ValueError:
            return
        if leader_now and not self._was_leader:
            await self._start_resync()
        self._was_leader = leader_now

    async def _start_resync(self) -> None:
        grpc = self.grpc
        self.resyncs_led += 1
        self._resyncing = True
        self._awaiting_info = {
            pid for pid in self._group
            if pid != self.my_id and grpc.is_member_alive(pid)}
        if not self._awaiting_info:
            await self._finish_resync()
            return
        self._resync_attempts = 0
        await self._send_queries()

    async def _send_queries(self) -> None:
        query = NetMsg(type=NetOp.ORDER_QUERY, sender=self.my_id,
                       server=self._group)
        await self.grpc.net_push(self._awaiting_info, query)
        self.register(TIMEOUT, self._resync_timeout, self.resync_grace)

    async def _resync_timeout(self) -> None:
        if not self._resyncing:
            return
        self._resync_attempts += 1
        if self._resync_attempts < 3 and self._awaiting_info:
            # ORDER_QUERY/INFO travel over the unreliable transport;
            # retry the holdouts before declaring them unreachable.
            await self._send_queries()
        else:
            await self._finish_resync()

    async def _finish_resync(self) -> None:
        self._resyncing = False
        self._awaiting_info.clear()
        entries = [(c, i, cid, rank)
                   for (c, i, cid), rank in self.old_orders.items()]
        info = NetMsg(type=NetOp.ORDER_INFO, sender=self.my_id,
                      server=self._group, args=entries)
        await self.grpc.net_push(self._group, info)

    async def handle_resync_traffic(self, msg: NetMsg) -> None:
        if msg.type is NetOp.ORDER_QUERY:
            entries = [(c, i, cid, rank)
                       for (c, i, cid), rank in self.old_orders.items()]
            info = NetMsg(type=NetOp.ORDER_INFO, sender=self.my_id,
                          server=msg.server, args=entries)
            await self.grpc.net_push(msg.sender, info)
        elif msg.type is NetOp.ORDER_INFO:
            for c, i, cid, rank in (msg.args or []):
                await self._learn((c, i, cid), rank)
            if self._resyncing:
                self._awaiting_info.discard(msg.sender)
                if not self._awaiting_info:
                    await self._finish_resync()


register_protocol(TotalOrder.protocol_name)
