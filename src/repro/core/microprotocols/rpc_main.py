"""RPC Main (Section 4.4.1): the main control flow of every RPC.

On the client side it stores the call in ``pRPC``, announces it with
``NEW_RPC_CALL`` and transmits it; on the server side it stores arriving
calls in ``sRPC`` and owns ``forward_up``, the HOLD-array gate that hands
a call to the server procedure once every configured property has signed
off, then ships the reply back.  It deliberately does *not* block user
threads — that is Synchronous/Asynchronous Call's job.
"""

from __future__ import annotations

from typing import Any

from repro.core.grpc import (
    CALL_FROM_USER,
    MSG_FROM_NETWORK,
    NEW_RPC_CALL,
    RECOVERY,
    REPLY_FROM_SERVER,
)
from repro.core.messages import CallKey, NetMsg, NetOp, UserMsg, UserOp
from repro.core.microprotocols.base import GRPCMicroProtocol, Prio
from repro.core.state import ClientRecord, ServerRecord
from repro.obs import CTX_KEY, register_protocol

__all__ = ["RPCMain"]

#: RPC Main's slot in the HOLD arrays.
MAIN = "MAIN"


class RPCMain(GRPCMicroProtocol):
    """The mandatory core micro-protocol (every configuration needs it)."""

    protocol_name = "RPC_Main"

    def __init__(self) -> None:
        super().__init__()
        self._next_id = 1

    def reset(self) -> None:
        # Call ids restart after a crash; the bumped incarnation number
        # disambiguates them at the servers.
        self._next_id = 1

    @property
    def next_call_id(self) -> int:
        """The id the next call from this composite will carry.

        The adaptation engine reads every client's cursor during a
        switch to seed freshly installed ordering gates
        (:meth:`~repro.core.microprotocols.fifo_order.FIFOOrder.
        seed_progress`).
        """
        return self._next_id

    def configure(self) -> None:
        grpc = self.grpc
        grpc.hold.declare(MAIN)
        grpc.forward_up = self.forward_up
        self.register(MSG_FROM_NETWORK, self.drop_in_progress_duplicates,
                      Prio.MAIN_DEDUP)
        self.register(MSG_FROM_NETWORK, self.msg_from_net, Prio.MAIN)
        self.register(CALL_FROM_USER, self.msg_from_user, 1)
        self.register(RECOVERY, self.handle_recovery)

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------

    async def drop_in_progress_duplicates(self, msg: NetMsg) -> None:
        """Drop a retransmitted CALL whose original is still pending.

        Re-execution of a *finished* call is legitimate under at-least-once
        semantics, but overlapping executions of the same call triggered by
        a retransmission racing the original are not; the retransmission is
        simply discarded (the client keeps retrying until a reply lands).
        """
        if msg.type is NetOp.CALL and self.call_key(msg) in self.grpc.sRPC:
            self.cancel_event()

    async def msg_from_net(self, msg: NetMsg) -> None:
        if msg.type is not NetOp.CALL:
            return
        key = self.call_key(msg)
        record = ServerRecord(key=key, op=msg.op, args=msg.args,
                              server=msg.server, client=msg.sender,
                              inc=msg.inc,
                              obs_ctx=msg.annotation(CTX_KEY))
        self.grpc.sRPC.add(record)
        await self.forward_up(key, MAIN)

    async def forward_up(self, key: CallKey, index: str) -> None:
        """Mark property ``index`` satisfied; execute when all are.

        This is the procedure RPC Main exports to the other
        micro-protocols.  Execution happens in the calling task, which may
        be the arrival's dispatch chain or (for ordering-gated calls) the
        chain of a previous call's reply.  The paper's version reads the
        record after removing it from ``sRPC``; we capture it first
        (deviation #1 in DESIGN.md).
        """
        grpc = self.grpc
        record = grpc.sRPC.get(key)
        if record is None or record.executing:
            return
        record.hold[index] = True
        if not grpc.hold.satisfied(record.hold):
            return
        record.executing = True
        gate = grpc.execution_gate
        if gate is not None:
            await gate.acquire()
            grpc.serial_holder = self.current_task()
        record.executor = self.current_task()
        obs = grpc.obs
        span = None
        if obs is not None:
            # Parent on the dispatch chain's context when execution runs
            # inline with the arrival; fall back to the context the call
            # arrived with for ordering-gated executions released from a
            # different chain.
            attrs = {"op": record.op, "call_id": record.call_id,
                     "client": record.client}
            if grpc.service:
                attrs["service"] = grpc.service
            span = obs.start_span(
                "server.execute", node=self.my_id,
                parent=obs.current() or record.obs_ctx,
                attrs=attrs)
        try:
            record.args = await grpc.deliver_to_server(record.op,
                                                       record.args)
            await self.trigger(REPLY_FROM_SERVER, key)
        finally:
            record.executor = None
            if gate is not None:
                grpc.serial_holder = None
                gate.release()
            if obs is not None:
                obs.end_span(span)
        # The reply carries the execute span's context so the client-side
        # msg.REPLY dispatch nests under this server's subtree.
        reply_ann = {CTX_KEY: span.ctx} if span is not None else None
        reply = NetMsg(type=NetOp.REPLY, id=record.call_id, op=record.op,
                       args=record.args, server=record.server,
                       sender=self.my_id, inc=record.inc,
                       annotations=reply_ann)
        grpc.sRPC.remove(key)
        await grpc.net_push(record.client, reply)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    async def msg_from_user(self, umsg: UserMsg) -> None:
        if umsg.type is not UserOp.CALL:
            return
        grpc = self.grpc
        await grpc.pRPC_mutex.acquire()
        record = ClientRecord.fresh(
            self._next_id, umsg.op, umsg.args, umsg.server,
            grpc.runtime.semaphore(0), grpc.inc_number,
            grpc.runtime.now())
        self._next_id += 1
        grpc.pRPC.add(record)
        grpc.pRPC_mutex.release()
        await self.trigger(NEW_RPC_CALL, record.id)
        umsg.id = record.id
        obs = grpc.obs
        if obs is not None:
            # Stamp the client's span context into the record's
            # annotations: every transmission of this call — including
            # Reliable Communication's retransmissions — copies them onto
            # the wire, reconnecting the server subtrees to the root.
            ctx = obs.current()
            if ctx is not None:
                record.annotations[CTX_KEY] = ctx
            obs.span_event("rpc.send", node=self.my_id, parent=ctx,
                           micro=self.name, call_id=record.id,
                           dests=list(record.server))
        # The wire message carries the *request* args; NEW_RPC_CALL may
        # already have repurposed record.args as the collation accumulator
        # (deviation #5 in DESIGN.md).
        msg = NetMsg(type=NetOp.CALL, id=record.id, op=record.op,
                     args=record.request_args, server=record.server,
                     sender=self.my_id, inc=grpc.inc_number,
                     annotations=dict(record.annotations) or None)
        await grpc.net_push(record.server, msg)

    async def handle_recovery(self, inc: int) -> None:
        self.grpc.inc_number = inc


register_protocol(RPCMain.protocol_name)
