"""The deployment plane: many named services, one simulated fabric.

The paper's point is that one framework hosts *many* RPC variants; a
:class:`Deployment` is where they coexist at runtime.  It owns everything
that is shared — the runtime, the network fabric, the nodes, the
observability layer, the membership substrate, the
:class:`~repro.stubs.BindingRegistry` — while each call to
:meth:`Deployment.add_service` wires one *named service*: a
:class:`~repro.core.config.ServiceSpec`, the
:class:`~repro.net.message.Group` of its servers, and one gRPC composite
per participating node (servers additionally carry the application
dispatcher).  A node may participate in any number of services, each
with a *different* micro-protocol stack; arrivals are demultiplexed to
the right composite by the service key every transmission carries
(:class:`~repro.xkernel.demux.ServiceDemux`).

Layout conventions are inherited from the single-service days: server
process ids live below :data:`CLIENT_BASE_PID` (so the Total Order
leader rule keeps working), client ids at or above it.  Passing an ``int``
for ``servers``/``clients`` auto-allocates the lowest free pids in the
respective range.

Clients address services *by name*: ``await deployment.call(pid, "svc",
op, args)`` resolves the name through the binding registry at call time,
so a :meth:`rebind` after a reconfiguration redirects subsequent calls
atomically.  Per-service traffic is labelled in the shared
:class:`~repro.obs.metrics.MetricsRegistry` (``service.<name>.calls``,
``.status.<S>``, ``.latency``, ``.executions``) and on every RPC span
(``service`` attribute).

:class:`~repro.core.service.ServiceCluster` is a thin back-compat
wrapper over a one-service deployment.
"""

from __future__ import annotations

import inspect
from typing import (
    Any,
    Callable,
    Coroutine,
    Dict,
    Iterable,
    List,
    Optional,
    Union,
)

from repro.apps.dispatcher import ServerApp, ServerDispatcher
from repro.core.config import ServiceSpec
from repro.core.grpc import GroupRPC
from repro.core.messages import CallResult, NetMsg
from repro.core.microprotocols import CallObserver, CallTraceLog
from repro.errors import (
    BindingError,
    ConfigurationError,
    ReproError,
    TaskCancelled,
)
from repro.core.replycache import ReplyCache
from repro.membership import HeartbeatMembership, OracleMembership
from repro.obs import MetricsRegistry, Recorder, format_flame, to_jsonl
from repro.obs.observatory import Observatory, ObservatoryConfig
from repro.net import (
    Group,
    LinkSpec,
    NetworkFabric,
    Node,
    UnreliableTransport,
    WireConfig,
)
from repro.runtime import SimRuntime
from repro.sim import RandomSource
from repro.stubs.binding import BindingRegistry
from repro.xkernel import ServiceDemux, TypeDemux, compose_stack

__all__ = ["Deployment", "Service", "CLIENT_BASE_PID"]

#: Client process ids start here; server pids must stay below it so the
#: two ranges can never collide (checked, not assumed).
CLIENT_BASE_PID = 101


def _instantiate_app(factory: Callable[..., ServerApp],
                     pid: int) -> ServerApp:
    """Build one server app, passing the pid if the factory accepts one.

    Lets callers pass a zero-argument class (``KVStore``) or a
    pid-consuming factory (``lambda pid: ComputeApp(pid * 10.0)``).
    """
    try:
        signature = inspect.signature(factory)
        takes_pid = any(
            p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD,
                       p.VAR_POSITIONAL)
            for p in signature.parameters.values())
    except (TypeError, ValueError):  # builtins without signatures
        takes_pid = True
    return factory(pid) if takes_pid else factory()


class Service:
    """One named service of a deployment: spec + group + composites.

    Handles returned by :meth:`Deployment.add_service`.  ``grpcs`` maps
    every participating pid (servers and clients) to that node's
    composite for *this* service; ``dispatchers``/``apps`` cover the
    server side only.
    """

    def __init__(self, deployment: "Deployment", name: str,
                 spec: ServiceSpec, group: Group,
                 server_pids: List[int], client_pids: List[int],
                 call_log: Optional[CallTraceLog]):
        self.deployment = deployment
        self.name = name
        self.spec = spec
        #: Current target group (replaced by :meth:`Deployment.rebind`).
        self.group = group
        self.server_pids = server_pids
        self.client_pids = client_pids
        self.grpcs: Dict[int, GroupRPC] = {}
        self.dispatchers: Dict[int, ServerDispatcher] = {}
        self.apps: Dict[int, ServerApp] = {}
        #: Shared per-call timeline when built with ``observe=True``.
        self.call_log = call_log

    # -- accessors -------------------------------------------------------

    @property
    def client(self) -> int:
        """The first client's pid (single-client shorthand)."""
        return self.client_pids[0]

    def grpc(self, pid: int) -> GroupRPC:
        return self.grpcs[pid]

    def app(self, pid: int) -> ServerApp:
        return self.apps[pid]

    def dispatcher(self, pid: int) -> ServerDispatcher:
        return self.dispatchers[pid]

    # -- calling ---------------------------------------------------------

    async def call(self, client_pid: int, op: str, args: Any) -> CallResult:
        return await self.deployment.call(client_pid, self.name, op, args)

    def call_and_run(self, op: str, args: Any, *,
                     client_pid: Optional[int] = None,
                     extra_time: float = 0.0) -> CallResult:
        return self.deployment.call_and_run(
            self.name, op, args,
            client_pid=client_pid if client_pid is not None else self.client,
            extra_time=extra_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Service {self.name!r} servers={self.server_pids} "
                f"clients={self.client_pids}>")


class Deployment:
    """A simulated fabric hosting any number of named gRPC services."""

    def __init__(self, *, seed: int = 0,
                 default_link: LinkSpec = LinkSpec(),
                 membership: Optional[str] = None,
                 membership_delay: float = 0.0,
                 heartbeat_interval: float = 0.05,
                 suspect_after: int = 3,
                 keep_trace: bool = True,
                 obs: Union[bool, Recorder] = False,
                 observatory: Union[bool, ObservatoryConfig] = False,
                 reply_cache: int = 128,
                 runtime: Optional[SimRuntime] = None,
                 wire: Optional[WireConfig] = None):
        """``membership`` is ``None``, ``"oracle"`` or ``"heartbeat"``,
        shared by every service: site liveness is service-independent, so
        one detector per node feeds every composite the node hosts.

        ``obs`` turns on the observability layer exactly as on
        :class:`~repro.core.service.ServiceCluster`: ``True`` creates an
        enabled :class:`~repro.obs.Recorder` sharing the deployment's
        metrics registry; pass a pre-built recorder to control it
        yourself.  ``deployment.metrics`` always exists.

        ``wire`` configures the fabric's
        :class:`~repro.net.wire.WirePipeline` (link-level coalescing,
        per-link backpressure, the control fast lane); the default keeps
        every stage pass-through, i.e. the exact per-message path.

        ``observatory`` turns on the measurement plane
        (:class:`~repro.obs.observatory.Observatory`): the kernel
        profiler, per-key load accounting, SLO windows and the flight
        recorder.  ``True`` uses the default
        :class:`~repro.obs.observatory.ObservatoryConfig`; pass a
        config to tune it.  Disabled (the default) costs nothing: every
        hook stays ``None``.
        """
        self.runtime = runtime or SimRuntime()
        if obs is True:
            recorder: Optional[Recorder] = Recorder()
        elif isinstance(obs, Recorder):
            recorder = obs
        else:
            recorder = None
        #: Deployment-wide instrument table (``net.*``, ``handler.*``,
        #: ``kernel.*``, ``service.<name>.*`` ...).
        self.metrics = (recorder.metrics
                        if recorder is not None and recorder.enabled
                        else MetricsRegistry())
        # Must precede node construction: composites and buses capture
        # runtime.obs once, at attach time.
        self.runtime.attach_obs(recorder)
        #: The installed recorder (None when disabled).
        self.obs = self.runtime.obs
        self.fabric = NetworkFabric(
            self.runtime, rand=RandomSource(seed),
            default_link=default_link, metrics=self.metrics, wire=wire)
        self.fabric.trace.keep_events = keep_trace

        #: Name -> group directory; the client call path resolves through
        #: it on every call, so rebinds take effect atomically.
        self.registry = BindingRegistry()
        self.services: Dict[str, Service] = {}
        #: Per-service LRU of ``(client, call_id) -> CallResult``:
        #: retried calls after a rebind are answered here without
        #: re-execution (``reply_cache=0`` disables).
        self.reply_caches: Dict[str, ReplyCache] = {}
        # Per-service call instruments, resolved once per service name:
        # (calls Counter, latency histogram name, status-value -> Counter).
        # Counters are zeroed in place by ``metrics.reset`` so the cached
        # objects stay valid; histograms are dropped on reset, so only
        # the prebuilt *name* is cached and the object re-resolved.
        self._call_instruments: Dict[str, tuple] = {}
        self._reply_cache_capacity = reply_cache
        self.nodes: Dict[int, Node] = {}
        self.demuxes: Dict[int, TypeDemux] = {}
        #: Per-node service router (NetMsg service key -> composite).
        self.routers: Dict[int, ServiceDemux] = {}

        if membership not in (None, "oracle", "heartbeat"):
            raise ReproError(f"unknown membership mode {membership!r}")
        self._membership_mode = membership
        self._membership: Any = None
        if membership == "oracle":
            self._membership = OracleMembership(self.fabric,
                                                delay=membership_delay)
        elif membership == "heartbeat":
            self._membership = HeartbeatMembership(
                interval=heartbeat_interval, suspect_after=suspect_after)

        #: The replication directory (:class:`~repro.replication.manager.
        #: ReplicationManager`), installed by its constructor when the
        #: first replica group is registered; None keeps the call path's
        #: replication check to a single is-None test.
        self.replication: Any = None

        #: The live-adaptation engine (:class:`~repro.adapt.engine.
        #: AdaptationManager`), installed by its constructor on first
        #: use (:meth:`adapt`/:meth:`auto_adapt`); None keeps the call
        #: path's adaptation check to a single is-None test.
        self.adaptation: Any = None

        #: The replicated placement-metadata plane (:class:`~repro.
        #: placement.view.ViewManager`), installed by its constructor
        #: when a placement plane is built; None keeps the call path's
        #: epoch check to a single is-None test.
        self.views: Any = None

        # Reconfiguration drivers installed by auto_rebind/auto_adapt;
        # shutdown() detaches them from the membership stream.
        self._rebind_driver: Any = None
        self._adapt_driver: Any = None

        #: Every installed reconfiguration driver (rebind, adaptation,
        #: replication, view manager...), in install order.  Drivers
        #: self-register via :meth:`register_driver`; :meth:`shutdown`
        #: detaches them all through this one registry, newest first,
        #: instead of each subsystem hand-rolling its own teardown hook.
        self.drivers: List[Any] = []

        #: The measurement plane and its two call-path hooks (all None
        #: when disabled, keeping the hot paths on a single is-None
        #: test).  Built last: it subscribes to membership and hooks the
        #: fabric's pipeline, both of which must exist — and before any
        #: ``add_service``, so every event bus captures the profiler.
        self.observatory: Optional[Observatory] = None
        self.flight: Any = None
        self._slo: Any = None
        if observatory:
            config = (observatory
                      if isinstance(observatory, ObservatoryConfig)
                      else None)
            self.observatory = Observatory(self, config)
            self.flight = self.observatory.flight
            self._slo = self.observatory.slo

    # ------------------------------------------------------------------
    # Service construction
    # ------------------------------------------------------------------

    def add_service(self, name: str, spec: ServiceSpec,
                    app_factory: Callable[..., ServerApp], *,
                    servers: Union[int, Iterable[int]] = 3,
                    clients: Union[int, Iterable[int]] = 1,
                    observe: bool = False) -> Service:
        """Wire one named service into the deployment.

        ``servers``/``clients`` are either explicit pid iterables (pids
        may be shared with other services — that node then hosts several
        composites) or counts, in which case the lowest free pids in the
        server (< :data:`CLIENT_BASE_PID`) or client (>=) range are
        allocated.  The service's group is bound under ``name`` in the
        binding registry; duplicate names are rejected.
        """
        server_pids = self._resolve_pids(servers, base=1,
                                         limit=CLIENT_BASE_PID)
        client_pids = self._resolve_pids(clients, base=CLIENT_BASE_PID,
                                         limit=None)
        if not server_pids:
            raise ReproError("need at least one server")
        for pid in server_pids:
            if pid >= CLIENT_BASE_PID:
                raise ConfigurationError(
                    f"server pid {pid} collides with the client pid range "
                    f"(client pids start at CLIENT_BASE_PID="
                    f"{CLIENT_BASE_PID}); keep server groups smaller than "
                    f"{CLIENT_BASE_PID} processes or raise CLIENT_BASE_PID")
        overlap = set(server_pids) & set(client_pids)
        if overlap:
            raise ConfigurationError(
                f"pids {sorted(overlap)} listed as both server and client "
                f"of service {name!r}")
        if name in self.services:
            raise BindingError(f"service {name!r} already deployed")

        group = Group(name, server_pids)
        self.registry.bind(name, group)
        svc = Service(self, name, spec, group, server_pids, client_pids,
                      CallTraceLog(self.obs) if observe else None)
        for pid in server_pids:
            self._build_composite(svc, pid,
                                  _instantiate_app(app_factory, pid))
        for pid in client_pids:
            self._build_composite(svc, pid, None)
        self.services[name] = svc
        self.reply_caches[name] = ReplyCache(self._reply_cache_capacity)
        self._connect_membership(svc)
        return svc

    def service(self, name: str) -> Service:
        svc = self.services.get(name)
        if svc is None:
            raise BindingError(f"no service {name!r} in this deployment; "
                               f"known: {sorted(self.services)}")
        return svc

    def _resolve_pids(self, spec: Union[int, Iterable[int]], *,
                      base: int, limit: Optional[int]) -> List[int]:
        """Explicit pid list, or auto-allocate ``spec`` free pids."""
        if not isinstance(spec, int):
            return list(spec)
        pids: List[int] = []
        candidate = base
        while len(pids) < spec:
            if limit is not None and candidate >= limit:
                raise ConfigurationError(
                    f"cannot allocate {spec} server pids below "
                    f"CLIENT_BASE_PID={CLIENT_BASE_PID}")
            if candidate not in self.nodes:
                pids.append(candidate)
            candidate += 1
        return pids

    def _ensure_node(self, pid: int) -> Node:
        """The node for ``pid``, building its shared substrate once:
        transport at the bottom, type demux above it, service router for
        the gRPC traffic."""
        node = self.nodes.get(pid)
        if node is not None:
            return node
        node = Node(pid, self.runtime, self.fabric)
        demux = TypeDemux(f"demux@{pid}")
        router = ServiceDemux(f"services@{pid}")
        transport = UnreliableTransport(node)
        compose_stack(demux, transport)
        demux.attach(NetMsg, router)
        node.start()
        self.nodes[pid] = node
        self.demuxes[pid] = demux
        self.routers[pid] = router
        return node

    def _build_composite(self, svc: Service, pid: int,
                         app: Optional[ServerApp]) -> None:
        node = self._ensure_node(pid)
        grpc = GroupRPC(node, name=f"gRPC:{svc.name}@{pid}",
                        service=svc.name)
        grpc.add(*svc.spec.build())
        if svc.call_log is not None:
            grpc.add(CallObserver(svc.call_log))
        self.routers[pid].attach(svc.name, grpc)
        if app is not None:
            dispatcher = ServerDispatcher(
                node, app, service=svc.name, metrics=self.metrics,
                # keep_trace=False marks a long/perf run: don't retain
                # per-request history anywhere, the execution log included.
                keep_log=self.fabric.trace.keep_events)
            compose_stack(dispatcher, grpc)  # only links this pair;
            # grpc.lower stays routed through the service demux.
            svc.dispatchers[pid] = dispatcher
            svc.apps[pid] = app
        svc.grpcs[pid] = grpc

    def _connect_membership(self, svc: Service) -> None:
        """Give the new service's composites membership knowledge.

        Heartbeat detectors are per node and shared across services;
        detectors created by earlier services start monitoring any nodes
        this service introduced (:meth:`HeartbeatDetector.add_peers`).
        """
        if self._membership_mode == "oracle":
            for grpc in svc.grpcs.values():
                self._membership.connect(grpc)
        elif self._membership_mode == "heartbeat":
            everyone = sorted(self.nodes)
            for detector in self._membership.detectors.values():
                detector.add_peers(everyone)
            for pid, grpc in svc.grpcs.items():
                self._membership.attach(grpc, self.demuxes[pid], everyone)
            self._membership.start_all()

    # ------------------------------------------------------------------
    # The name-resolved call path
    # ------------------------------------------------------------------

    async def call(self, client_pid: int, service: str, op: str,
                   args: Any, *,
                   retry_of: Optional[int] = None,
                   view_epoch: Optional[int] = None) -> CallResult:
        """Issue one call to ``service`` from ``client_pid``.

        The service name is resolved to its current group through the
        binding registry *at call time* — the stub "does binding", as the
        paper assumes — and the call goes out through the caller's
        composite for that service.  Per-service metrics
        (``service.<name>.calls`` / ``.status.<S>`` / ``.latency``) are
        folded into the shared registry.

        ``retry_of`` names the call id of an earlier attempt: if that
        attempt completed, its reply is returned straight from the
        per-service :class:`~repro.core.replycache.ReplyCache` without
        re-execution — the safe way to retry after a rebind has pointed
        the name at servers that never saw the original call.  The
        cache is deployment-side, so the filter also spans replica
        promotions: a retry against a newly promoted primary is
        answered without re-executing.

        When the service is a registered replica group
        (``deployment.replication``), target selection defers to the
        group: reads narrow to one in-sync replica, passive writes to
        the elected primary (parking across promotions), and a passive
        write's state change is transferred to the backups before the
        result is returned.

        ``view_epoch`` is the placement-view epoch the caller routed
        under (stamped by the routers).  A stale epoch bounces with
        ``Status.REDIRECT`` *before* any message is built — the caller
        re-routes against the current view instead of dispatching to a
        shard that may no longer own the key.
        """
        if view_epoch is not None:
            views = self.views
            if views is not None and view_epoch != views.epoch:
                self.metrics.counter(
                    "placement.view.stale_bounces").inc()
                return views.redirect_result()
        svc = self.service(service)
        instruments = self._call_instruments.get(service)
        if instruments is None:
            prefix = f"service.{service}"
            instruments = (self.metrics.counter(f"{prefix}.calls"),
                           f"{prefix}.latency", {})
            self._call_instruments[service] = instruments
        calls_counter, latency_name, status_counters = instruments
        cache = self.reply_caches.get(service)
        if retry_of is not None and cache is not None:
            cached = cache.get(client_pid, retry_of)
            if cached is not None:
                self.metrics.counter(
                    f"service.{service}.reply_cache.hits").inc()
                return cached
            self.metrics.counter(
                f"service.{service}.reply_cache.misses").inc()
        grpc = svc.grpcs.get(client_pid)
        if grpc is None:
            raise BindingError(
                f"node {client_pid} has no composite for service "
                f"{service!r} (its participants: "
                f"{sorted(svc.grpcs)})")
        # Adaptation-aware admission: while the service is mid-switch,
        # new calls park here until the new composition is live; the
        # admit/release bracket is also how the engine knows when the
        # old composition has drained.
        adapt = self.adaptation
        if adapt is not None:
            await adapt.admit(service)
        try:
            group = self.registry.lookup(service)
            rgroup = None if self.replication is None \
                else self.replication.groups.get(service)
            start = self.runtime.now()
            if rgroup is not None:
                group = await rgroup.admit(op, group)
            result = await grpc.call(op, args, group)
            if rgroup is not None:
                result = await rgroup.complete(grpc, op, args, result,
                                               group)
        finally:
            if adapt is not None:
                adapt.release(service)
        latency = self.runtime.now() - start
        calls_counter.inc()
        status_counter = status_counters.get(result.status.value)
        if status_counter is None:
            status_counter = status_counters[result.status.value] = \
                self.metrics.counter(
                    f"service.{service}.status.{result.status.value}")
        status_counter.inc()
        self.metrics.histogram(latency_name).observe(latency)
        if self._slo is not None:
            self._slo.observe(service, latency)
        if cache is not None and result.ok:
            epoch = self.views.epoch if self.views is not None else None
            cache.put(client_pid, result.id, result, epoch=epoch)
            if retry_of is not None:
                # Future retries naming the original attempt hit too.
                cache.put(client_pid, retry_of, result, epoch=epoch)
        return result

    def watch_membership(self,
                         watcher: Callable[[int, bool], None]) -> None:
        """Subscribe to deployment-level membership changes.

        ``watcher(pid, alive)`` fires once per state change of a site,
        whatever the membership mode: the fabric's perfect crash/recover
        notifications under ``None``/``"oracle"``, or the deduplicated
        union of per-node heartbeat suspicions under ``"heartbeat"``
        (the first node to suspect a peer triggers the callback; repeat
        suspicions from other observers do not).  This is the hook the
        :class:`~repro.placement.driver.RebindDriver` builds on.
        """
        if self._membership_mode == "heartbeat":
            self._membership.watch(watcher)
        else:
            self.fabric.watch_membership(watcher)

    def unwatch_membership(self,
                           watcher: Callable[[int, bool], None]) -> None:
        """Detach a :meth:`watch_membership` subscriber.

        The inverse every reconfiguration driver needs to close
        cleanly; a no-op when the watcher was never attached.
        """
        if self._membership_mode == "heartbeat":
            self._membership.unwatch(watcher)
        else:
            self.fabric.unwatch_membership(watcher)

    def register_driver(self, driver: Any) -> None:
        """Enroll a reconfiguration driver for registry-driven teardown.

        Idempotent: re-registering the same object is a no-op, so a
        driver may register from its constructor without caring whether
        an installer helper already did.
        """
        if driver not in self.drivers:
            self.drivers.append(driver)

    def unregister_driver(self, driver: Any) -> None:
        """Drop a driver from the registry (no-op when absent); called
        by the drivers' own ``close()`` so an early manual close does
        not leave a dangling entry for :meth:`shutdown`."""
        try:
            self.drivers.remove(driver)
        except ValueError:
            pass

    def auto_rebind(self, *, plane: Any = None, regrow: bool = True):
        """Drive :meth:`rebind` from the membership service.

        Returns the installed :class:`~repro.placement.driver.
        RebindDriver`: suspicion shrinks a service's bound group,
        recovery regrows it, and — when ``plane`` is given — a shard
        whose last server died is drained onto the surviving shards.
        """
        from repro.placement.driver import RebindDriver
        if self._rebind_driver is not None:
            self._rebind_driver.close()
        driver = RebindDriver(self, plane=plane, regrow=regrow)
        self._rebind_driver = driver
        return driver

    # ------------------------------------------------------------------
    # Live adaptation
    # ------------------------------------------------------------------

    async def adapt(self, service: str, target: Any, *,
                    reason: str = "",
                    drain_timeout: Optional[float] = None,
                    drain_poll: Optional[float] = None) -> Any:
        """Reconfigure a *running* service's micro-protocol composition.

        ``target`` is the new :class:`~repro.core.config.ServiceSpec`
        (or a full :class:`~repro.adapt.plan.AdaptationPlan`).  The
        switch is guarded: the target is validated against the Figure-4
        graph (plus the replication-mode edges when the service is a
        replica group), new calls park, in-flight calls drain, every
        member's composite is re-linked atomically in virtual time, and
        the parked calls resume under the new composition — no
        acknowledged call is ever lost.  Returns the
        :class:`~repro.adapt.engine.AdaptationReport`.
        """
        from repro.adapt.engine import AdaptationManager
        return await AdaptationManager.ensure(self).adapt(
            service, target, reason=reason, drain_timeout=drain_timeout,
            drain_poll=drain_poll)

    def auto_adapt(self, **kwargs: Any):
        """Drive :meth:`adapt` from the membership service.

        Returns the installed :class:`~repro.adapt.driver.
        AdaptationDriver`: suspicion of a service's server degrades its
        ordering (Total Order pays a leader round per call — the wrong
        protocol while the leader may be the suspect), healing restores
        the original composition, both with hysteresis.  Keyword
        arguments are forwarded to the driver.
        """
        from repro.adapt.driver import AdaptationDriver
        if self._adapt_driver is not None:
            self._adapt_driver.close()
        driver = AdaptationDriver(self, **kwargs)
        self._adapt_driver = driver
        return driver

    def rebind(self, service: str,
               target: Union[Group, Iterable[int]]) -> Group:
        """Atomically repoint ``service`` at a new server group.

        Subsequent :meth:`call`\\ s resolve to ``target`` (an existing
        reconfiguration having shrunk/regrown the group).  Every member
        of the new group must already run a composite for the service.
        """
        svc = self.service(service)
        group = target if isinstance(target, Group) \
            else Group(service, target)
        missing = [pid for pid in group
                   if pid not in svc.grpcs or pid not in svc.server_pids]
        if missing:
            raise BindingError(
                f"cannot rebind {service!r} to {sorted(group.members)}: "
                f"pids {missing} run no server composite for it")
        self.registry.bind(service, group, replace=True)
        svc.group = group
        if self.flight is not None:
            self.flight.note("rebind", service=service,
                             members=sorted(group.members))
        return group

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def trace(self):
        return self.fabric.trace

    @property
    def pipeline(self):
        """The fabric's wire pipeline (one per deployment)."""
        return self.fabric.pipeline

    def publish_runtime_stats(self) -> None:
        """Snapshot the runtime's scheduler counters into ``kernel.*``
        gauges (and, when enabled, the observatory's instruments), so
        they ride along in metric exports."""
        for name, value in self.runtime.stats().items():
            self.metrics.gauge(f"kernel.{name}").set(value)
        if self.observatory is not None:
            self.observatory.publish()

    def render_report(self) -> str:
        """The observatory's one-page deployment health report."""
        if self.observatory is None:
            raise ReproError(
                "the observatory is not enabled (construct the "
                "deployment with observatory=True)")
        return self.observatory.render_report()

    def export_trace(self, stream) -> int:
        """Write the recorded trace + metrics as JSONL; returns the line
        count.  Requires the obs layer (``obs=True``)."""
        if self.obs is None:
            raise ReproError("observability layer is not enabled "
                             "(construct the deployment with obs=True)")
        self.publish_runtime_stats()
        return to_jsonl(self.obs, stream)

    def format_flame(self, trace: Optional[int] = None) -> str:
        """Human-readable span tree(s); requires the obs layer."""
        if self.obs is None:
            raise ReproError("observability layer is not enabled "
                             "(construct the deployment with obs=True)")
        return format_flame(self.obs, trace)

    # ------------------------------------------------------------------
    # Driving the simulation
    # ------------------------------------------------------------------

    def node(self, pid: int) -> Node:
        return self.nodes[pid]

    def spawn_client(self, pid: int, coro: Coroutine, *,
                     name: str = "") -> Any:
        """Run client code as a task owned by node ``pid``.

        The task dies if that node crashes — required for the orphan
        experiments to be meaningful.
        """
        return self.nodes[pid].spawn(coro, name=name or f"client-{pid}")

    def call_and_run(self, service: str, op: str, args: Any, *,
                     client_pid: Optional[int] = None,
                     extra_time: float = 0.0) -> CallResult:
        """Blockingly run one named-service call from outside the kernel.

        Spawns the call on the client node, drives the simulation until
        it finishes, optionally runs ``extra_time`` more virtual seconds
        (to let retransmissions and acks drain), and returns the result.
        """
        pid = client_pid if client_pid is not None \
            else self.service(service).client
        results: List[CallResult] = []

        async def issue() -> None:
            results.append(await self.call(pid, service, op, args))

        task = self.spawn_client(pid, issue())

        async def supervise() -> None:
            try:
                await self.runtime.join(task)
            except TaskCancelled:
                pass

        self.runtime.run(supervise(), shutdown=False)
        if extra_time > 0:
            self.runtime.run_for(extra_time)
        if not results:
            raise TaskCancelled("client crashed before the call returned")
        return results[0]

    def run_scenario(self, coro: Coroutine, *,
                     extra_time: float = 0.0) -> Any:
        """Run an arbitrary scenario coroutine to completion.

        The scenario runs as a plain kernel task (not owned by any node),
        so it survives node crashes; spawn node-owned work from within it
        via :meth:`spawn_client`.
        """
        result = self.runtime.run(coro, shutdown=False)
        if extra_time > 0:
            self.runtime.run_for(extra_time)
        return result

    def settle(self, duration: float) -> None:
        """Advance virtual time (heartbeats, retransmits, timeouts)."""
        self.runtime.run_for(duration)

    def shutdown(self) -> None:
        """Tear the whole deployment down, cancelling in-flight work.

        Only needed when an experiment intentionally ends with calls
        still in progress (overload studies); normal runs drain
        naturally.  Also releases the observatory's process-global
        marshaller hook.
        """
        for driver in reversed(list(self.drivers)):
            driver.close()
        self.drivers.clear()
        self._adapt_driver = None
        self._rebind_driver = None
        if self.observatory is not None:
            self.observatory.close()
        self.runtime.kernel.shutdown()

    # ------------------------------------------------------------------
    # Fault injection shorthands
    # ------------------------------------------------------------------

    def crash(self, pid: int) -> None:
        self.nodes[pid].crash()

    def recover(self, pid: int) -> None:
        self.nodes[pid].recover()

    def partition(self, side_a, side_b) -> None:
        self.fabric.partition(side_a, side_b)

    def heal(self) -> None:
        self.fabric.heal()

    def make_slow(self, pid: int, delay: float) -> None:
        """Give every link toward ``pid`` a large delay (performance
        failure)."""
        self.fabric.set_links_to(pid, LinkSpec(delay=delay, jitter=0.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Deployment services={sorted(self.services)} "
                f"nodes={len(self.nodes)}>")
