"""Message and status types exchanged by the gRPC composite (Section 4.2).

Mirrors the paper's type definitions:

* ``Net_Msgtype`` -> :class:`NetMsg` with ``type`` in {Call, Reply, ACK,
  Order}, the call identifier, operation, argument field, server group,
  sender, incarnation number and ``ackid``;
* ``User_Msgtype`` -> :class:`UserMsg` with ``type`` in {Call, Request},
  used between the user protocol and gRPC;
* ``Status_type`` -> :class:`Status` = {OK, WAITING, TIMEOUT}.

From gRPC's perspective arguments are "one continuous untyped field"
produced by the stubs; we carry any Python object and let
:mod:`repro.stubs` do the marshalling above.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

from repro.net.message import Group, ProcessId

__all__ = ["NetOp", "UserOp", "Status", "MemChange", "NetMsg", "UserMsg",
           "CallKey", "CallResult"]


class MemChange(enum.Enum):
    """Membership change kinds (the paper's ``Mem_Change``)."""

    FAILURE = "FAILURE"
    RECOVERY = "RECOVERY"


class NetOp(enum.Enum):
    """Wire message kinds (the paper's ``Net_Optype``).

    CALL/REPLY/ACK/ORDER are the paper's; PING/PONG serve the
    probing-based orphan detection the paper mentions as the alternative
    to incarnation-based detection (extension).
    """

    CALL = "Call"
    REPLY = "Reply"
    ACK = "ACK"
    ORDER = "Order"
    PING = "Ping"
    PONG = "Pong"
    # Total Order's leader-change agreement phase (extension; the paper
    # omits this phase "for brevity"): the new leader queries survivors
    # for their known order assignments and redistributes the merge.
    ORDER_QUERY = "OrderQuery"
    ORDER_INFO = "OrderInfo"


class UserOp(enum.Enum):
    """User-to-gRPC message kinds (the paper's ``User_Optype``)."""

    CALL = "Call"
    REQUEST = "Request"


class Status(enum.Enum):
    """Return status of a call (the paper's ``Status_type``).

    ``REDIRECT`` extends the paper's set for the placement plane: a call
    stamped with a stale view epoch is bounced back (with the current
    epoch in its args) instead of being dispatched against a routing
    table that no longer holds.  It never travels on the wire — the
    bounce happens deployment-side, before any message is built.
    """

    OK = "OK"
    WAITING = "WAITING"
    TIMEOUT = "TIMEOUT"
    REDIRECT = "REDIRECT"


#: Server-side tables key calls by (client pid, client incarnation, call id).
#: The paper indexes by the bare call id, which collides across clients
#: because ids are client-assigned (deviation #2 in DESIGN.md).
CallKey = Tuple[ProcessId, int, int]


@dataclass
class NetMsg:
    """One gRPC wire message (the paper's ``Net_Msgtype``)."""

    type: NetOp
    id: int = 0
    op: str = ""
    args: Any = None
    server: Optional[Group] = None
    sender: ProcessId = -1
    inc: int = 0
    ackid: int = 0
    #: Incarnation the acked/ordered call belongs to (completes ``ackid``
    #: into a full :data:`CallKey`; the paper's single-field ``ackid``
    #: under-identifies the call).
    ack_inc: int = 0
    #: Assigned total-order rank carried by ORDER messages.
    order: int = 0
    #: Client process the ordered call belongs to (ORDER messages only);
    #: together with ``inc`` and ``id`` it reconstructs the CallKey.
    client: ProcessId = -1
    #: Name of the service this message belongs to.  Stamped by the
    #: sending composite's ``net_push`` so a node hosting several
    #: composites (one per service of a deployment) can demultiplex the
    #: arrival to the right one; ``""`` on hand-built single-composite
    #: stacks, which route by payload type alone.
    service: str = ""
    #: Extension point: per-call data piggybacked by micro-protocols
    #: (e.g. Causal Order's dependency set) and by the observability
    #: layer, whose span context rides under
    #: :data:`repro.obs.recorder.CTX_KEY`.  Populated from the client
    #: record's annotations on every transmission of the call.
    annotations: Optional[dict] = None

    def annotation(self, key: str, default: Any = None) -> Any:
        if self.annotations is None:
            return default
        return self.annotations.get(key, default)

    def trace_ctx(self) -> Optional[Tuple[int, int]]:
        """The ``(trace, span)`` context this message carries, if any."""
        ctx = self.annotation("obs.ctx")
        return (int(ctx[0]), int(ctx[1])) if ctx is not None else None

    @property
    def call_key(self) -> CallKey:
        """Key of the call this CALL/REPLY message belongs to."""
        return (self.sender, self.inc, self.id) if self.type is NetOp.CALL \
            else (self.sender, self.inc, self.id)

    def copy(self, **changes: Any) -> "NetMsg":
        return replace(self, **changes)


@dataclass
class UserMsg:
    """One message between the user protocol and gRPC.

    For a ``CALL`` the user fills ``op``/``args``/``server``; RPC Main
    assigns ``id``.  On return from the trigger chain, ``args`` holds the
    collated results and ``status`` the outcome — arguments are in/out,
    as in the paper.
    """

    type: UserOp
    id: int = 0
    op: str = ""
    args: Any = None
    server: Optional[Group] = None
    status: Status = Status.WAITING


@dataclass(frozen=True)
class CallResult:
    """What the public client API returns for a completed call."""

    id: int
    status: Status
    args: Any

    @property
    def ok(self) -> bool:
        return self.status is Status.OK
