"""Command-line entry point: ``python -m repro <command>``.

Commands
--------

``info``        library version, micro-protocol catalog, presets
``enumerate``   Figure-4 service counts (the paper's 198)
``demo``        run a quick replicated-KV demo on the simulator
``trace``       run one observed call and print its protocol timeline,
                or — given a configuration preset — run a traced
                workload and dump the span tree as JSONL (``--flame``
                for the human-readable tree)
``report``      run a preset deployment with the observatory enabled
                (Zipfian workload + an injected server crash) and print
                the one-page health report
``obslint``     run the static observability lints (micro-protocol
                registration, metric-namespace catalog)
``adapt``       live-adaptation demo: switch a running Total Order
                group to FIFO under load (and back) with zero lost
                calls, printing per-phase latency and the switch
                reports
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Any, List, Optional

import repro
from repro import LinkSpec, ServiceCluster, ServiceSpec, read_optimized
from repro.apps import KVStore
from repro.bench import render_table
from repro.core.config import (
    CALL_CHOICES,
    EXECUTION_CHOICES,
    ORDERING_CHOICES,
    ORPHAN_CHOICES,
    at_least_once,
    at_most_once,
    exactly_once,
    replicated_state_machine,
)
from repro.core.enumerate import enumerate_services

#: Presets the trace subcommand can run (name -> spec factory taking the
#: server count, which only the replicated-state-machine preset uses).
TRACE_CONFIGS = {
    "read-optimized": lambda n: read_optimized(),
    "at-least-once": lambda n: at_least_once(),
    "exactly-once": lambda n: exactly_once(),
    "at-most-once": lambda n: at_most_once(),
    "replicated-state-machine": lambda n: replicated_state_machine(n),
}


def cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {repro.__version__} — configurable group RPC "
          f"(Hiltunen & Schlichting, ICDCS 1995)")
    print()
    spec = ServiceSpec(unique=True, execution="atomic", ordering="total",
                       orphans="terminate")
    print("micro-protocol catalog (a maximal legal composition):")
    for name in spec.micro_protocol_names():
        print(f"  || {name}")
    print()
    print(render_table(
        ["property", "choices"],
        [["call semantics", " | ".join(CALL_CHOICES)],
         ["orphan handling", " | ".join(ORPHAN_CHOICES)],
         ["execution discipline", " | ".join(EXECUTION_CHOICES)],
         ["ordering", " | ".join(ORDERING_CHOICES)]]))
    return 0


def cmd_enumerate(args: argparse.Namespace) -> int:
    result = enumerate_services()
    print(render_table(
        ["quantity", "value"],
        [["cluster combinations (the paper's '11')",
          result.cluster_choices],
         ["paper count (2 x 3 x 3 x 11)", result.paper_count],
         ["strict count (every Figure-4 edge)", result.strict_count]]))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    cluster = ServiceCluster(read_optimized(timebound=1.0), KVStore,
                             n_servers=args.servers,
                             default_link=LinkSpec(delay=0.01,
                                                   jitter=0.005))
    print(f"{args.servers}-replica KV store, Section-5 read-optimized "
          f"configuration")
    for i in range(args.calls):
        result = cluster.call_and_run("put",
                                      {"key": f"k{i}", "value": i})
        print(f"  put k{i}={i}: {result.status.value} "
              f"(t={cluster.runtime.now() * 1000:.1f} ms)")
    result = cluster.call_and_run("keys", {})
    print(f"  keys: {result.args}")
    print(f"messages on the wire: {cluster.trace.sends}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    if args.config is not None:
        return _trace_config(args)
    # Legacy mode: one observed call, protocol-timeline output.
    # Total Order forbids Bounded Termination (Figure 4).
    bounded = 0.0 if args.ordering == "total" else 5.0
    spec = ServiceSpec(acceptance=3, bounded=bounded, unique=True,
                       ordering=args.ordering)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=LinkSpec(delay=0.01,
                                                   jitter=0.005),
                             observe=True)
    result = cluster.call_and_run("put", {"key": "traced", "value": 1},
                                  extra_time=0.3)
    key = (cluster.client, 1, result.id)
    print(cluster.call_log.format_timeline(key))
    latency = cluster.call_log.first_execution_latency(key)
    print(f"\nfirst execution after {latency * 1000:.2f} ms; "
          f"status {result.status.value}")
    return 0


def _trace_config(args: argparse.Namespace) -> int:
    """Run a traced workload under a preset and dump the span tree."""
    spec = TRACE_CONFIGS[args.config](args.servers)
    cluster = ServiceCluster(spec, KVStore, n_servers=args.servers,
                             default_link=LinkSpec(delay=0.01,
                                                   jitter=0.005),
                             obs=True)
    for i in range(args.calls):
        result = cluster.call_and_run("put",
                                      {"key": f"k{i}", "value": i},
                                      extra_time=0.2)
        if not result.ok:
            print(f"call {i} ended {result.status.value}",
                  file=sys.stderr)
    if args.flame:
        print(cluster.format_flame())
    else:
        cluster.export_trace(sys.stdout)
    return 0


#: Deployments the report subcommand can observe.
REPORT_CONFIGS = ("sharded-kv",)


def cmd_report(args: argparse.Namespace) -> int:
    """Run a preset under the observatory and print the health report.

    The ``sharded-kv`` preset deploys N elastic shards (two servers
    each) under heartbeat membership with automatic rebinding, drives a
    Zipfian keyed workload through the placement plane, then crashes
    one server mid-run so the report shows the whole causal chain: the
    suspicion flip, the rebind, the latency excursion in the SLO
    windows, and the flight-recorder dump trail.  A final act grows the
    ring by one shard and kills the migration coordinator at catch-up,
    so the report's *placement takeover chain* section shows the
    replicated-view failover end to end: the persisted proposal, the
    successor's takeover, and the committed epoch.
    """
    from repro.core.deployment import Deployment
    from repro.obs.observatory import ObservatoryConfig
    from repro.placement import build_elastic_kv

    config = ObservatoryConfig(
        slo_thresholds={95: args.slo_p95, 99: args.slo_p99},
        slo_min_samples=16)
    # A deliberately sluggish failure detector (~0.75 s to suspicion):
    # the post-crash stall must outlast the p99 bound for the report to
    # show the breach -> flight-dump chain.
    deployment = Deployment(
        seed=args.seed, membership="heartbeat",
        heartbeat_interval=0.25, suspect_after=3,
        default_link=LinkSpec(delay=0.01, jitter=0.005),
        observatory=config)
    # acceptance=2 with two servers: a call needs both replies, so after
    # the injected crash the calls to the victim's shard stall against
    # the dead replica until the suspicion flip rebinds the group — a
    # visible latency excursion for the SLO windows to catch.  Two
    # client pids = two coordinator candidates, so the final act's
    # coordinator kill has a successor to elect.
    spec = ServiceSpec(reliable=True, unique=True, execution="serial",
                       bounded=2.0, acceptance=2)
    plane, kv = build_elastic_kv(deployment, args.shards, spec=spec,
                                 servers_per_shard=2, clients=2)
    deployment.auto_rebind(plane=plane)

    rng = random.Random(args.seed)
    keys = [f"key-{i:04d}" for i in range(args.keys)]
    weights = [1.0 / (rank + 1) for rank in range(args.keys)]  # Zipf s=1

    async def burst(n: int) -> None:
        for _ in range(n):
            key = rng.choices(keys, weights)[0]
            await kv.put(key, rng.randrange(1 << 16))

    deployment.run_scenario(burst(args.ops // 2))
    victim = deployment.services["shard-0"].server_pids[0]
    deployment.crash(victim)
    # No settling: the next calls race the failure detector, so the
    # first ones time out against the dead replica (SLO breach -> flight
    # dump) until suspicion flips and the rebind takes hold.
    deployment.run_scenario(burst(args.ops - args.ops // 2),
                            extra_time=0.2)

    # Final act: grow the ring and kill the coordinator at catch-up.
    # The successor resumes from the replicated plan; the report's
    # takeover-chain section narrates propose -> takeover -> commit.
    coordinator = plane.coordinator
    fired: List[str] = []

    async def kill_coordinator() -> None:
        deployment.crash(coordinator)

    def at_phase(phase: str) -> None:
        if phase == "catchup" and not fired:
            fired.append(phase)
            deployment.runtime.spawn(kill_coordinator(),
                                     name="coordinator-killer",
                                     daemon=True)

    plane.phase_hook = at_phase

    async def grow() -> None:
        await plane.add_shard()

    deployment.run_scenario(grow(), extra_time=0.3)
    deployment.settle(0.5)
    deployment.publish_runtime_stats()
    print(deployment.render_report())
    deployment.shutdown()
    return 0


def cmd_obslint(args: argparse.Namespace) -> int:
    """Static observability lints; exit 1 on any violation."""
    from repro.analysis.obslint import (check_metric_names,
                                        check_obs_registration)
    results = [check_obs_registration()]
    # Validate a live registry against the namespace catalog: a tiny
    # observatory-enabled deployment exercises every instrument family.
    from repro.core.deployment import Deployment
    deployment = Deployment(membership="oracle", observatory=True)
    deployment.add_service("lint", ServiceSpec(), KVStore, servers=2)
    deployment.call_and_run("lint", "put", {"key": "k", "value": 1})
    deployment.publish_runtime_stats()
    snapshot = deployment.metrics.snapshot()
    names = [name for kind in snapshot.values() for name in kind]
    results.append(check_metric_names(names))
    deployment.shutdown()
    failed = False
    for result in results:
        status = "ok" if result.ok else "FAIL"
        print(f"{result.name}: {status}")
        for violation in result.violations:
            print(f"  {violation}", file=sys.stderr)
        failed = failed or not result.ok
    return 1 if failed else 0


#: Scenarios the adapt subcommand can run.
ADAPT_CONFIGS = ("total-to-fifo",)


def cmd_adapt(args: argparse.Namespace) -> int:
    """Live-adaptation demo on a running group.

    Deploys a Total Order group, slows its ordering leader down (a
    performance failure), then reconfigures the *running* service to
    FIFO delivery mid-workload — no restart, no lost call — and back to
    Total Order after the leader heals.  The per-phase latencies show
    why: under Total Order every call pays the slow leader's ORDER
    round; FIFO with a quorum acceptance is answered by the fast
    replicas.
    """
    from repro.core.deployment import Deployment

    link = LinkSpec(delay=0.01, jitter=0.0)
    deployment = Deployment(seed=args.seed, default_link=link)
    spec = ServiceSpec(reliable=True, unique=True, ordering="total",
                       acceptance=min(2, args.servers))
    svc = deployment.add_service("adaptive", spec, KVStore,
                                 servers=args.servers)
    client = svc.client
    leader = max(svc.server_pids)      # the paper's leader rule
    print(f"{args.servers}-server group, Total Order, "
          f"acceptance {spec.acceptance}; leader pid {leader}")

    async def burst(label: str) -> None:
        ok = 0
        start = deployment.runtime.now()
        for i in range(args.calls):
            result = await deployment.call(client, "adaptive", "put",
                                           {"key": f"k{i}", "value": i})
            ok += bool(result.ok)
        per_call = (deployment.runtime.now() - start) / args.calls
        print(f"  {label:<26} {ok}/{args.calls} ok  "
              f"{per_call * 1000:7.2f} ms/call")

    def show(report: Any) -> None:
        print(f"  -> epoch {report.epoch}: "
              f"{' || '.join(report.to_protocols)}")
        print(f"     kept {len(report.kept)} running instances, "
              f"parked {report.parked} calls, "
              f"drained in {report.drain_s * 1000:.1f} ms (virtual)")

    async def scenario() -> None:
        await burst("total order, healthy")
        deployment.make_slow(leader, args.slow)
        await burst("total order, slow leader")
        show(await deployment.adapt(
            "adaptive", svc.spec.with_(ordering="fifo"),
            reason="demo: leader slow"))
        await burst("fifo, slow leader")
        deployment.fabric.set_links_to(leader, link)
        show(await deployment.adapt(
            "adaptive", svc.spec.with_(ordering="total"),
            reason="demo: leader healed"))
        await burst("total order, healed")

    deployment.run_scenario(scenario(), extra_time=0.5)
    dropped = deployment.metrics.counter("adapt.fence.dropped").value
    switches = deployment.metrics.counter("adapt.switches").value
    print(f"switches: {switches}; stale cross-epoch messages fenced: "
          f"{dropped}")
    deployment.shutdown()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Configurable group RPC from micro-protocols "
                    "(ICDCS 1995 reproduction)")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("info", help="version and micro-protocol catalog")
    sub.add_parser("enumerate", help="Figure-4 service counts")

    demo = sub.add_parser("demo", help="run a quick replicated-KV demo")
    demo.add_argument("--servers", type=int, default=3)
    demo.add_argument("--calls", type=int, default=3)

    trace = sub.add_parser(
        "trace",
        help="trace one call's timeline, or dump a configuration's "
             "span-tree trace as JSONL")
    trace.add_argument("config", nargs="?", default=None,
                       choices=sorted(TRACE_CONFIGS),
                       help="preset to run with the obs layer on; "
                            "omit for the legacy single-call timeline")
    trace.add_argument("--ordering", default="none",
                       choices=["none", "fifo", "total", "causal"])
    trace.add_argument("--servers", type=int, default=3)
    trace.add_argument("--calls", type=int, default=2)
    trace.add_argument("--flame", action="store_true",
                       help="print the human-readable span tree instead "
                            "of JSONL")

    report = sub.add_parser(
        "report",
        help="run a preset under the observatory and print the "
             "one-page deployment health report")
    report.add_argument("config", nargs="?", default="sharded-kv",
                        choices=sorted(REPORT_CONFIGS))
    report.add_argument("--shards", type=int, default=3)
    report.add_argument("--keys", type=int, default=64)
    report.add_argument("--ops", type=int, default=120)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--slo-p95", type=float, default=0.25)
    report.add_argument("--slo-p99", type=float, default=0.5)

    sub.add_parser("obslint",
                   help="static observability lints (protocol "
                        "registration, metric namespaces)")

    adapt = sub.add_parser(
        "adapt",
        help="live-adaptation demo: reconfigure a running Total Order "
             "group to FIFO under load and back, zero lost calls")
    adapt.add_argument("config", nargs="?", default="total-to-fifo",
                       choices=sorted(ADAPT_CONFIGS))
    adapt.add_argument("--servers", type=int, default=3)
    adapt.add_argument("--calls", type=int, default=8,
                       help="calls per workload phase")
    adapt.add_argument("--slow", type=float, default=0.25,
                       help="injected one-way delay toward the leader "
                            "(virtual seconds)")
    adapt.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    handlers = {"info": cmd_info, "enumerate": cmd_enumerate,
                "demo": cmd_demo, "trace": cmd_trace,
                "report": cmd_report, "obslint": cmd_obslint,
                "adapt": cmd_adapt}
    if args.command is None:
        parser.print_help()
        return 2
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
