"""Multi-seed replication: means with confidence intervals.

One seeded run is reproducible but still a single draw from the fault
distributions; publication-grade claims replicate across seeds.
:func:`replicate` runs a measurement function over a seed list and
reports mean, sample standard deviation and a normal-approximation 95%
confidence interval — enough to say whether two configurations actually
differ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

__all__ = ["Replication", "replicate", "significantly_different"]

#: z for a 95% two-sided normal interval.
_Z95 = 1.96


@dataclass(frozen=True)
class Replication:
    """Aggregate of one metric across seeded runs."""

    samples: Tuple[float, ...]
    mean: float
    stdev: float
    ci95: float          # half-width of the 95% interval

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def __str__(self) -> str:
        return (f"{self.mean:.4g} +/- {self.ci95:.2g} "
                f"(n={len(self.samples)})")


def replicate(measure: Callable[[int], float],
              seeds: Iterable[int]) -> Replication:
    """Run ``measure(seed)`` per seed and aggregate the results."""
    samples: List[float] = [float(measure(seed)) for seed in seeds]
    if not samples:
        raise ValueError("replicate needs at least one seed")
    n = len(samples)
    mean = sum(samples) / n
    if n > 1:
        variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
        stdev = math.sqrt(variance)
        ci95 = _Z95 * stdev / math.sqrt(n)
    else:
        stdev = 0.0
        ci95 = 0.0
    return Replication(tuple(samples), mean, stdev, ci95)


def significantly_different(a: Replication, b: Replication) -> bool:
    """Conservative check: do the 95% intervals fail to overlap?

    Non-overlapping intervals imply a significant difference (the
    converse does not hold, so this under-claims — the right direction
    for a reproduction's headline comparisons).
    """
    return a.high < b.low or b.high < a.low
