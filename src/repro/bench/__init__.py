"""Benchmark support: workloads, statistics, harness, reporting."""

from repro.bench.harness import Experiment, RunConfig, RunOutcome, run_one
from repro.bench.reporting import banner, render_series, render_table
from repro.bench.seeds import (
    Replication,
    replicate,
    significantly_different,
)
from repro.bench.stats import LatencyStats, summarize
from repro.bench.workload import (
    ClosedLoopWorkload,
    OpenLoopWorkload,
    WorkloadResult,
    counter_workload,
    kv_workload,
    read_only_workload,
)

__all__ = [
    "Experiment",
    "RunConfig",
    "RunOutcome",
    "run_one",
    "banner",
    "render_table",
    "render_series",
    "LatencyStats",
    "summarize",
    "Replication",
    "replicate",
    "significantly_different",
    "ClosedLoopWorkload",
    "OpenLoopWorkload",
    "WorkloadResult",
    "kv_workload",
    "read_only_workload",
    "counter_workload",
]
