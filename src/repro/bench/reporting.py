"""Plain-text table/figure rendering for the experiment harness.

Every benchmark prints its regenerated table or series through these
helpers so EXPERIMENTS.md and the bench output stay visually comparable
to the paper's figures.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

__all__ = ["render_table", "render_series", "banner"]


def banner(title: str, subtitle: str = "") -> str:
    """A header block naming the experiment (e.g. 'Figure 1')."""
    line = "=" * max(len(title), len(subtitle), 40)
    parts = [line, title]
    if subtitle:
        parts.append(subtitle)
    parts.append(line)
    return "\n".join(parts)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Any]]) -> str:
    """Fixed-width ASCII table with a header rule."""
    materialized: List[List[str]] = [[_fmt(c) for c in row]
                                     for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def render_series(x_label: str, y_label: str,
                  points: Iterable[Sequence[Any]], *,
                  bar: bool = True, width: int = 40) -> str:
    """A one-series 'figure': x, y and an optional ASCII bar."""
    pts = [(p[0], float(p[1])) for p in points]
    if not pts:
        return f"{x_label} vs {y_label}: (no data)"
    peak = max(y for _, y in pts) or 1.0
    rows = []
    for x, y in pts:
        cells = [_fmt(x), _fmt(y)]
        if bar:
            cells.append("#" * max(1, int(round(y / peak * width))))
        rows.append(cells)
    headers = [x_label, y_label] + (["plot"] if bar else [])
    return render_table(headers, rows)
