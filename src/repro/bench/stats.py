"""Latency/throughput statistics for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["LatencyStats", "summarize"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample set (times in seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float
    stdev: float

    def scaled(self, factor: float) -> "LatencyStats":
        """Same stats in another unit (e.g. ``scaled(1000)`` for ms)."""
        return LatencyStats(
            count=self.count, mean=self.mean * factor,
            p50=self.p50 * factor, p95=self.p95 * factor,
            p99=self.p99 * factor, minimum=self.minimum * factor,
            maximum=self.maximum * factor, stdev=self.stdev * factor)

    def __str__(self) -> str:
        ms = self.scaled(1000.0)
        return (f"n={self.count} mean={ms.mean:.2f}ms p50={ms.p50:.2f}ms "
                f"p95={ms.p95:.2f}ms max={ms.maximum:.2f}ms")


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile on pre-sorted samples."""
    if not sorted_samples:
        raise ValueError("no samples")
    rank = max(0, min(len(sorted_samples) - 1,
                      math.ceil(q / 100.0 * len(sorted_samples)) - 1))
    return sorted_samples[rank]


def summarize(samples: Sequence[float]) -> LatencyStats:
    """Compute the standard summary over raw latency samples."""
    if not samples:
        raise ValueError("cannot summarize an empty sample set")
    ordered = sorted(samples)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((x - mean) ** 2 for x in ordered) / n
    return LatencyStats(
        count=n, mean=mean,
        p50=percentile(ordered, 50.0),
        p95=percentile(ordered, 95.0),
        p99=percentile(ordered, 99.0),
        minimum=ordered[0], maximum=ordered[-1],
        stdev=math.sqrt(variance))
