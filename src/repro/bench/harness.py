"""The experiment harness tying specs, clusters and workloads together.

Each benchmark file builds an :class:`Experiment`, adds parameterized
runs, and prints the regenerated table/series.  The harness keeps runs
deterministic (explicit seeds) and records the knobs alongside the
metrics so EXPERIMENTS.md rows can be traced back to exact parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.bench.reporting import banner, render_table
from repro.bench.stats import LatencyStats
from repro.bench.workload import ClosedLoopWorkload, Op, WorkloadResult
from repro.core.config import ServiceSpec
from repro.core.service import ServiceCluster
from repro.net.fabric import LinkSpec

__all__ = ["RunConfig", "RunOutcome", "Experiment", "run_one"]


@dataclass
class RunConfig:
    """Everything needed to reproduce one measured point."""

    label: str
    spec: ServiceSpec
    app_factory: Callable[..., Any]
    n_servers: int = 3
    n_clients: int = 1
    seed: int = 0
    default_link: LinkSpec = field(default_factory=LinkSpec)
    membership: Optional[str] = None
    calls_per_client: int = 50
    make_ops: Optional[Callable[[int], Iterator[Op]]] = None
    mutate_cluster: Optional[Callable[[ServiceCluster], None]] = None


@dataclass
class RunOutcome:
    """One measured point: the config, the workload result, the stats."""

    config: RunConfig
    result: WorkloadResult
    cluster: ServiceCluster

    @property
    def latency(self) -> LatencyStats:
        return self.result.latency_stats()

    def metric(self, name: str) -> float:
        if name == "throughput":
            return self.result.throughput
        if name == "messages_per_call":
            return self.result.messages_per_call
        if name == "ok_ratio":
            return self.result.ok_ratio
        stats = self.latency
        if hasattr(stats, name):
            return getattr(stats, name)
        raise KeyError(name)


def run_one(config: RunConfig) -> RunOutcome:
    """Build the cluster, drive the workload, return the measurements."""
    cluster = ServiceCluster(
        config.spec, config.app_factory,
        n_servers=config.n_servers, n_clients=config.n_clients,
        seed=config.seed, default_link=config.default_link,
        membership=config.membership,
        keep_trace=False)   # counters only: big runs stay lean
    if config.mutate_cluster is not None:
        config.mutate_cluster(cluster)
    if config.make_ops is None:
        raise ValueError(f"run {config.label!r} has no workload")
    workload = ClosedLoopWorkload(
        config.make_ops, calls_per_client=config.calls_per_client)
    result = workload.run(cluster)
    return RunOutcome(config, result, cluster)


class Experiment:
    """A named experiment accumulating comparable runs."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.outcomes: List[RunOutcome] = []

    def run(self, config: RunConfig) -> RunOutcome:
        outcome = run_one(config)
        self.outcomes.append(outcome)
        return outcome

    def table(self, extra_columns: Optional[Dict[str, Callable[
            [RunOutcome], Any]]] = None) -> str:
        """The standard results table (+ caller-provided columns)."""
        headers = ["configuration", "calls", "ok%", "mean ms", "p95 ms",
                   "msgs/call", "calls/s"]
        extra = extra_columns or {}
        headers.extend(extra.keys())
        rows = []
        for outcome in self.outcomes:
            stats = outcome.latency.scaled(1000.0)
            row = [outcome.config.label, outcome.result.calls,
                   f"{outcome.result.ok_ratio * 100:.0f}",
                   f"{stats.mean:.2f}", f"{stats.p95:.2f}",
                   f"{outcome.result.messages_per_call:.1f}",
                   f"{outcome.result.throughput:.0f}"]
            row.extend(fn(outcome) for fn in extra.values())
            rows.append(row)
        return "\n".join([banner(self.name, self.description),
                          render_table(headers, rows)])

    def print(self, **kwargs: Any) -> None:
        print()
        print(self.table(**kwargs))
