"""Workload generators and the closed-loop load driver.

All workloads run on *virtual* time, so a "latency" here is simulated
network + protocol time, not Python execution time; pytest-benchmark
separately measures the real CPU cost of pushing calls through the
composed micro-protocols.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.messages import CallResult, Status
from repro.core.service import ServiceCluster
from repro.bench.stats import LatencyStats, summarize

__all__ = ["Op", "kv_workload", "read_only_workload", "counter_workload",
           "WorkloadResult", "ClosedLoopWorkload", "OpenLoopWorkload"]

#: One operation to issue: (op name, args).
Op = Tuple[str, Any]


def kv_workload(*, read_ratio: float = 0.5, key_space: int = 16,
                seed: int = 0, value_size: int = 8) -> Iterator[Op]:
    """An endless mixed read/write KV stream."""
    rng = random.Random(seed)
    payload = "v" * value_size
    counter = 0
    while True:
        key = f"key-{rng.randrange(key_space)}"
        if rng.random() < read_ratio:
            yield ("get", {"key": key})
        else:
            counter += 1
            yield ("put", {"key": key, "value": f"{payload}-{counter}"})


def read_only_workload(*, key_space: int = 16, seed: int = 0
                       ) -> Iterator[Op]:
    """The Section-5 scenario: read-only requests."""
    rng = random.Random(seed)
    while True:
        yield ("get", {"key": f"key-{rng.randrange(key_space)}"})


def counter_workload() -> Iterator[Op]:
    """Endless non-idempotent increments (failure-semantics probes)."""
    tag = 0
    while True:
        yield ("inc", {"amount": 1, "tag": tag})
        tag += 1


@dataclass
class WorkloadResult:
    """Everything a closed-loop run measured."""

    latencies: List[float] = field(default_factory=list)
    statuses: Dict[Status, int] = field(default_factory=dict)
    results: List[CallResult] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    messages_sent: int = 0
    #: Open-loop only: arrivals still in flight when the run ended.
    incomplete: int = 0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def calls(self) -> int:
        return len(self.latencies)

    @property
    def throughput(self) -> float:
        """Completed calls per simulated second."""
        return self.calls / self.duration if self.duration > 0 else 0.0

    @property
    def ok_ratio(self) -> float:
        ok = self.statuses.get(Status.OK, 0)
        return ok / self.calls if self.calls else 0.0

    @property
    def messages_per_call(self) -> float:
        return self.messages_sent / self.calls if self.calls else 0.0

    def latency_stats(self) -> LatencyStats:
        return summarize(self.latencies)


class ClosedLoopWorkload:
    """``n`` calls per client, issued back-to-back with optional think
    time — the classic closed-loop load model."""

    def __init__(self, make_ops: Callable[[int], Iterator[Op]], *,
                 calls_per_client: int = 50, think_time: float = 0.0):
        """``make_ops(client_index)`` yields that client's op stream."""
        self.make_ops = make_ops
        self.calls_per_client = calls_per_client
        self.think_time = think_time

    def run(self, cluster: ServiceCluster, *,
            settle_time: float = 1.0) -> WorkloadResult:
        """Drive the cluster to completion and collect measurements."""
        result = WorkloadResult()
        sends_before = cluster.metrics.value("net.send")
        result.started_at = cluster.runtime.now()

        async def client_loop(index: int, pid: int) -> None:
            ops = self.make_ops(index)
            for _ in range(self.calls_per_client):
                op, args = next(ops)
                t0 = cluster.runtime.now()
                call_result = await cluster.call(pid, op, args)
                result.latencies.append(cluster.runtime.now() - t0)
                result.results.append(call_result)
                result.statuses[call_result.status] = \
                    result.statuses.get(call_result.status, 0) + 1
                if self.think_time:
                    await cluster.runtime.sleep(self.think_time)

        async def scenario() -> None:
            tasks = [
                cluster.spawn_client(pid, client_loop(i, pid),
                                     name=f"load-{pid}")
                for i, pid in enumerate(cluster.client_pids)
            ]
            for task in tasks:
                await cluster.runtime.join(task)

        cluster.run_scenario(scenario())
        result.finished_at = cluster.runtime.now()
        if settle_time:
            cluster.settle(settle_time)
        result.messages_sent = int(
            cluster.metrics.value("net.send") - sends_before)
        return result


class OpenLoopWorkload:
    """Poisson arrivals at a fixed offered rate, independent of service
    completions — the load model for saturation studies.

    Each arrival runs as its own task on the (single) client node, so
    in-flight calls accumulate when the service cannot keep up.  The
    result separates completed calls from those still in flight at the
    deadline, which is the saturation signal.
    """

    def __init__(self, make_ops: Callable[[int], Iterator[Op]], *,
                 rate: float, duration: float, seed: int = 0):
        if rate <= 0 or duration <= 0:
            raise ValueError("rate and duration must be positive")
        self.make_ops = make_ops
        self.rate = rate
        self.duration = duration
        self.seed = seed

    def run(self, cluster: ServiceCluster, *,
            drain_time: float = 5.0) -> WorkloadResult:
        rng = random.Random(self.seed)
        ops = self.make_ops(0)
        result = WorkloadResult()
        sends_before = cluster.metrics.value("net.send")
        result.started_at = cluster.runtime.now()
        issued = {"count": 0}
        pid = cluster.client_pids[0]

        async def one_call(op: str, args: Any) -> None:
            t0 = cluster.runtime.now()
            call_result = await cluster.call(pid, op, args)
            result.latencies.append(cluster.runtime.now() - t0)
            result.results.append(call_result)
            result.statuses[call_result.status] = \
                result.statuses.get(call_result.status, 0) + 1

        async def arrival_process() -> None:
            deadline = cluster.runtime.now() + self.duration
            while cluster.runtime.now() < deadline:
                await cluster.runtime.sleep(rng.expovariate(self.rate))
                op, args = next(ops)
                issued["count"] += 1
                cluster.spawn_client(pid, one_call(op, args),
                                     name=f"open-{issued['count']}")

        cluster.run_scenario(arrival_process())
        cluster.settle(drain_time)
        result.finished_at = cluster.runtime.now()
        result.messages_sent = int(
            cluster.metrics.value("net.send") - sends_before)
        #: Arrivals that never completed within the drain window.
        result.incomplete = issued["count"] - result.calls
        return result
