"""repro: a configurable group RPC service built from micro-protocols.

A full reproduction of Hiltunen & Schlichting, *Constructing a
Configurable Group RPC Service* (ICDCS 1995 / Arizona TR 94-28): every
semantic property of (group) RPC is a composable micro-protocol over an
event-driven framework, running here on a deterministic virtual-time
simulation of an asynchronous, failure-prone distributed system.

Quickstart::

    from repro import ServiceCluster, read_optimized
    from repro.apps import KVStore

    cluster = ServiceCluster(read_optimized(), KVStore, n_servers=3)
    result = cluster.call_and_run("put", {"key": "k", "value": 1})
    assert result.ok
"""

from repro.core import (
    CallResult,
    Deployment,
    GroupRPC,
    Service,
    ServiceCluster,
    ServiceSpec,
    Status,
    at_least_once,
    at_most_once,
    exactly_once,
    read_optimized,
    replicated_state_machine,
)
from repro.core import ReplyCache
from repro.core.grpc import PendingCall, gather_calls
from repro.net import Group, LinkSpec, WireConfig
from repro.obs import MetricsRegistry, Recorder
from repro.placement import (
    ElasticKV,
    HashRing,
    PlacementPlane,
    RebindDriver,
    build_elastic_kv,
)
from repro.replication import (
    ReplicaGroup,
    ReplicaSpec,
    ReplicationManager,
    active_replicas,
    primary_backup,
)
from repro.runtime import AsyncioRuntime, SimRuntime

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "Service",
    "ServiceCluster",
    "ServiceSpec",
    "GroupRPC",
    "CallResult",
    "Status",
    "Group",
    "LinkSpec",
    "WireConfig",
    "SimRuntime",
    "AsyncioRuntime",
    "PendingCall",
    "gather_calls",
    "Recorder",
    "MetricsRegistry",
    "at_least_once",
    "exactly_once",
    "at_most_once",
    "read_optimized",
    "replicated_state_machine",
    "HashRing",
    "PlacementPlane",
    "ElasticKV",
    "build_elastic_kv",
    "RebindDriver",
    "ReplyCache",
    "ReplicaSpec",
    "ReplicaGroup",
    "ReplicationManager",
    "active_replicas",
    "primary_backup",
    "__version__",
]
