"""Membership services that feed gRPC's ``MEMBERSHIP_CHANGE`` event.

Two implementations of the membership composite the paper assumes:

* :class:`OracleMembership` — a perfect detector wired straight into the
  fabric's crash/recover notifications, optionally with a fixed detection
  delay.  Used by experiments that must separate the semantics under test
  from detector inaccuracy.
* :class:`HeartbeatMembership` — the realistic service: one
  :class:`~repro.membership.detector.HeartbeatDetector` per node, with
  suspicions local to each node (different sites may briefly disagree, as
  in any real asynchronous system).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.core.grpc import GroupRPC
from repro.core.messages import MemChange
from repro.membership.detector import Heartbeat, HeartbeatDetector
from repro.net.fabric import NetworkFabric
from repro.net.message import ProcessId
from repro.xkernel.demux import TypeDemux

__all__ = ["OracleMembership", "HeartbeatMembership"]


class OracleMembership:
    """Perfect failure detection from the fabric's own lifecycle events.

    ``delay`` models detection latency: changes are announced to the
    composites ``delay`` seconds after they happen (0 = instantaneous).
    """

    def __init__(self, fabric: NetworkFabric, *, delay: float = 0.0):
        self.fabric = fabric
        self.delay = delay
        self._composites: List[GroupRPC] = []
        fabric.watch_membership(self._on_change)

    def connect(self, grpc: GroupRPC,
                initial: Optional[Iterable[ProcessId]] = None) -> None:
        """Give ``grpc`` membership knowledge and future change events."""
        grpc.set_members(initial if initial is not None
                         else self.fabric.alive_pids())
        self._composites.append(grpc)

    def _on_change(self, pid: ProcessId, alive: bool) -> None:
        change = MemChange.RECOVERY if alive else MemChange.FAILURE

        def announce() -> None:
            for grpc in self._composites:
                if grpc.node.up:
                    grpc.membership_change(pid, change)

        if self.delay > 0:
            self.fabric.runtime.call_later(self.delay, announce)
        else:
            announce()


class HeartbeatMembership:
    """Realistic per-node membership built on heartbeat detectors.

    One detector per *node*, shared by every composite the node hosts: a
    site's liveness is service-independent, so a node carrying several
    differently-configured composites (a multi-service
    :class:`~repro.core.deployment.Deployment`) sends one heartbeat
    stream and fans each suspicion out to all of its composites.
    """

    def __init__(self, *, interval: float = 0.05, suspect_after: int = 3):
        self.interval = interval
        self.suspect_after = suspect_after
        self.detectors: Dict[ProcessId, HeartbeatDetector] = {}
        self._started: set = set()
        #: Deployment-level subscribers: ``watcher(pid, alive)``.
        self._watchers: List[Callable[[ProcessId, bool], None]] = []
        #: Pids some node currently suspects (the deduplication state
        #: behind :meth:`watch`: N observers, one callback per change).
        self._down: Set[ProcessId] = set()
        #: Nodes whose detector already feeds :meth:`_record_change`.
        self._recorded: Set[ProcessId] = set()

    def attach(self, grpc: GroupRPC, demux: TypeDemux,
               peers: Iterable[ProcessId]) -> HeartbeatDetector:
        """Install a detector on ``grpc``'s node, routed through ``demux``.

        If the node already carries a detector (another composite on the
        same node attached first), it is reused: ``grpc`` just subscribes
        to the existing suspicion stream.  The detector's suspicions
        update this node's view only; call :meth:`start_all` once every
        node is attached.
        """
        node = grpc.node
        detector = self.detectors.get(node.pid)
        if detector is None:
            detector = HeartbeatDetector(node, peers,
                                         interval=self.interval,
                                         suspect_after=self.suspect_after)
            demux.attach(Heartbeat, detector)
            self.detectors[node.pid] = detector
            if self._watchers:
                self._ensure_recording()
        grpc.set_members(set(peers) | {node.pid})
        detector.listeners.append(
            lambda pid, change: grpc.membership_change(pid, change))
        return detector

    def start_all(self) -> None:
        """Start every not-yet-started detector (idempotent, so services
        added to a live deployment can call it again)."""
        for pid, detector in self.detectors.items():
            if pid not in self._started and detector.node.up:
                detector.start()
                self._started.add(pid)

    # ------------------------------------------------------------------
    # Deployment-level subscription (reconfiguration drivers)
    # ------------------------------------------------------------------

    def watch(self, watcher: Callable[[ProcessId, bool], None]) -> None:
        """Subscribe to the union of every node's suspicion stream.

        Per-node detectors may disagree transiently; a deployment-level
        reconfiguration driver wants *one* notification per state
        change, so the first node to suspect a peer fires
        ``watcher(pid, False)`` and the first heartbeat-witnessed
        recovery fires ``watcher(pid, True)``; echoes from other
        observers are swallowed.

        The recording listener is installed lazily, on first
        subscription, so deployments without a reconfiguration driver
        pay nothing (and see no extra per-detector listeners).
        """
        self._watchers.append(watcher)
        self._ensure_recording()

    def unwatch(self, watcher: Callable[[ProcessId, bool], None]) -> None:
        """Detach a :meth:`watch` subscriber (no-op if never attached).

        Closing a reconfiguration driver must stop its callbacks, or a
        long-lived deployment leaks one dead listener per driver
        lifecycle — and a closed driver would keep reacting to
        suspicions.
        """
        try:
            self._watchers.remove(watcher)
        except ValueError:
            pass

    def _ensure_recording(self) -> None:
        # One service-level listener per detector (not per composite):
        # feeds the deduplicated watch() stream.
        for pid, detector in self.detectors.items():
            if pid not in self._recorded:
                detector.listeners.append(self._record_change)
                self._recorded.add(pid)

    def _record_change(self, pid: ProcessId, change: MemChange) -> None:
        if change is MemChange.FAILURE:
            if pid in self._down:
                return
            self._down.add(pid)
            alive = False
        else:
            if pid not in self._down:
                return
            self._down.discard(pid)
            alive = True
        for watcher in list(self._watchers):
            watcher(pid, alive)
