"""Heartbeat-based failure detection (the membership substrate).

The paper assumes membership as a separate composite protocol that
triggers ``MEMBERSHIP_CHANGE`` "when a process fails or recovers".  This
module provides the realistic implementation: every monitored process
periodically multicasts a heartbeat; a peer that misses
``suspect_after`` consecutive intervals is declared failed, and a
heartbeat from a suspected peer declares it recovered.

Being timeout-based in an asynchronous system, the detector is
unavoidably unreliable — a long network delay can cause a false
suspicion.  Experiments that need a perfect detector use
:class:`repro.membership.service.OracleMembership` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Set

from repro.core.messages import MemChange
from repro.net.message import ProcessId
from repro.net.node import Node
from repro.xkernel.upi import Protocol

__all__ = ["Heartbeat", "HeartbeatDetector"]


@dataclass(frozen=True)
class Heartbeat:
    """The wire payload heartbeat senders multicast.

    ``wire_control`` marks the type for the wire pipeline's control fast
    lane: beats bypass link-level coalescing and queue budgets so a
    detector is never head-of-line blocked behind bulk RPC traffic
    (which would cause false suspicions under load).
    """

    sender: ProcessId
    seq: int

    #: Fast-lane marker read by :mod:`repro.net.wire` (class attribute,
    #: not a field — it never travels).
    wire_control = True


class HeartbeatDetector(Protocol):
    """Per-node heartbeat sender + peer liveness monitor.

    Routes its :class:`Heartbeat` payloads through the node's
    :class:`~repro.xkernel.demux.TypeDemux`.  ``listeners`` receive
    ``(pid, MemChange)`` callbacks; the service layer forwards these into
    the local gRPC composite's ``MEMBERSHIP_CHANGE`` event.
    """

    def __init__(self, node: Node, peers: Iterable[ProcessId], *,
                 interval: float = 0.05, suspect_after: int = 3):
        super().__init__(f"heartbeat@{node.pid}")
        if suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        self.node = node
        self.peers: Set[ProcessId] = {p for p in peers if p != node.pid}
        self.interval = interval
        self.suspect_after = suspect_after
        self.listeners: List[Callable[[ProcessId, MemChange], None]] = []
        self._last_seen: Dict[ProcessId, float] = {}
        self._suspected: Set[ProcessId] = set()
        self._seq = 0
        node.crash_listeners.append(self._on_crash)
        node.recover_listeners.append(self._on_recover)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin sending and monitoring (call once the node is up)."""
        now = self.node.runtime.now()
        for peer in self.peers:
            self._last_seen[peer] = now
        self.node.spawn(self._sender_loop(), name=f"{self.name}-send",
                        daemon=True)
        self.node.spawn(self._monitor_loop(), name=f"{self.name}-mon",
                        daemon=True)

    def alive(self) -> Set[ProcessId]:
        """Peers currently believed alive (self always included)."""
        return ({self.node.pid} | self.peers) - self._suspected

    def add_peers(self, peers: Iterable[ProcessId]) -> None:
        """Start monitoring additional peers (deployment grew).

        New peers begin with a fresh last-seen stamp so they get a full
        ``suspect_after`` grace period before a missing heartbeat can be
        interpreted as a failure.
        """
        now = self.node.runtime.now()
        for pid in peers:
            if pid == self.node.pid or pid in self.peers:
                continue
            self.peers.add(pid)
            self._last_seen[pid] = now

    def is_suspected(self, pid: ProcessId) -> bool:
        return pid in self._suspected

    # ------------------------------------------------------------------

    async def pop(self, payload: Heartbeat, sender: ProcessId) -> None:
        """A heartbeat arrived from a peer."""
        pid = payload.sender
        if pid not in self.peers:
            return
        self._last_seen[pid] = self.node.runtime.now()
        if pid in self._suspected:
            self._suspected.discard(pid)
            self._notify(pid, MemChange.RECOVERY)

    async def _sender_loop(self) -> None:
        while True:
            self._seq += 1
            beat = Heartbeat(self.node.pid, self._seq)
            if self.lower is not None:
                await self.lower.push(self.peers, beat)
            await self.node.runtime.sleep(self.interval)

    async def _monitor_loop(self) -> None:
        deadline = self.interval * self.suspect_after
        while True:
            await self.node.runtime.sleep(self.interval)
            now = self.node.runtime.now()
            for peer in self.peers:
                silent = now - self._last_seen.get(peer, 0.0)
                if peer not in self._suspected and silent > deadline:
                    self._suspected.add(peer)
                    self._notify(peer, MemChange.FAILURE)

    def _notify(self, pid: ProcessId, change: MemChange) -> None:
        for listener in list(self.listeners):
            listener(pid, change)

    # ------------------------------------------------------------------

    def _on_crash(self) -> None:
        self._suspected.clear()
        self._last_seen.clear()

    def _on_recover(self, incarnation: int) -> None:
        self.start()
