"""Membership services: heartbeat failure detection and oracle variant."""

from repro.membership.detector import Heartbeat, HeartbeatDetector
from repro.membership.service import HeartbeatMembership, OracleMembership

__all__ = [
    "Heartbeat",
    "HeartbeatDetector",
    "HeartbeatMembership",
    "OracleMembership",
]
