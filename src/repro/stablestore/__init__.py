"""Simulated stable storage (crash-surviving state and checkpoints)."""

from repro.stablestore.store import StableStore

__all__ = ["StableStore"]
