"""Simulated stable storage: state that survives site crashes.

The paper distinguishes volatile state (lost on a crash) from *stable*
state "that would persist across failures, such as values stored on
disk".  A :class:`StableStore` is a node's disk: it lives on the
:class:`~repro.net.node.Node` object, which persists across simulated
crashes while everything the node's tasks held in memory does not.

Two interfaces are provided:

* **checkpoint cells** (``write``/``read``/``free``) — anonymous
  addressed blobs, used by the Atomic Execution micro-protocol's
  ``checkpoint()``/``load(address)`` operations;
* **named cells** (``put``/``get``/``delete``) — the application-visible
  stable variables (e.g. the bank example's account balances).  Each
  individual ``put`` is atomic, as the paper assumes for assignments to
  ``stable`` variables, but a *sequence* of puts is not — which is exactly
  the window that makes non-atomic execution observable when a server
  crashes mid-procedure.

Values are deep-copied on the way in and out so no aliasing can let
volatile mutations leak into "disk".
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import StableStoreError

__all__ = ["StableStore"]


class StableStore:
    """Crash-surviving storage for one simulated site."""

    def __init__(self) -> None:
        self._checkpoints: Dict[int, Any] = {}
        self._next_address = 1
        self._cells: Dict[str, Any] = {}
        #: Write counters, handy for benchmarks measuring checkpoint cost.
        self.checkpoint_writes = 0
        self.cell_writes = 0

    # ------------------------------------------------------------------
    # Checkpoint cells (Atomic Execution)
    # ------------------------------------------------------------------

    def write(self, value: Any) -> int:
        """Persist a snapshot; returns its stable address."""
        address = self._next_address
        self._next_address += 1
        self._checkpoints[address] = copy.deepcopy(value)
        self.checkpoint_writes += 1
        return address

    def read(self, address: int) -> Any:
        """Load the snapshot at ``address`` (a fresh copy)."""
        if address not in self._checkpoints:
            raise StableStoreError(f"no checkpoint at address {address}")
        return copy.deepcopy(self._checkpoints[address])

    def free(self, address: int) -> None:
        """Release a snapshot no longer referenced."""
        self._checkpoints.pop(address, None)

    def has_checkpoint(self, address: Optional[int]) -> bool:
        return address is not None and address in self._checkpoints

    # ------------------------------------------------------------------
    # Named cells (application stable state)
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Atomically write one named stable variable."""
        self._cells[key] = copy.deepcopy(value)
        self.cell_writes += 1

    def get(self, key: str, default: Any = None) -> Any:
        return copy.deepcopy(self._cells.get(key, default))

    def delete(self, key: str) -> None:
        self._cells.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def keys(self) -> List[str]:
        return list(self._cells)

    def keys_with_prefix(self, prefix: str) -> List[str]:
        """Named cells under a dotted namespace (sorted).

        The placement plane salvages a dead shard's state by reading the
        cells its application mirrored under a known prefix — the
        simulation's stand-in for mounting a failed site's disk.
        """
        return sorted(k for k in self._cells if k.startswith(prefix))

    def items_with_prefix(self, prefix: str) -> Iterator:
        """``(cell, value)`` pairs under a namespace (values copied)."""
        return iter([(k, copy.deepcopy(v))
                     for k, v in sorted(self._cells.items())
                     if k.startswith(prefix)])

    def items(self) -> Iterator:
        return iter({k: copy.deepcopy(v)
                     for k, v in self._cells.items()}.items())

    def snapshot_cells(self) -> Dict[str, Any]:
        """A copy of every named cell (used by checkpoints of apps whose
        stable state lives here)."""
        return copy.deepcopy(self._cells)

    def restore_cells(self, cells: Dict[str, Any]) -> None:
        """Overwrite all named cells from a snapshot."""
        self._cells = copy.deepcopy(cells)
