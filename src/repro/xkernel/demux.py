"""Payload demultiplexing above the transport.

The x-kernel demultiplexes arriving messages to the right upper protocol;
our reduced UPI does the same in two stages.  A :class:`TypeDemux` sits
directly on the transport and routes each arrived payload by its Python
type — gRPC traffic (:class:`~repro.core.messages.NetMsg`) one way, the
heartbeat membership detector's ``Heartbeat`` payloads another.  When a
node hosts *several* gRPC composites (one per named service of a
:class:`~repro.core.deployment.Deployment`), a :class:`ServiceDemux`
sits between the type demux and the composites and routes each ``NetMsg``
by the service key stamped into it on transmission — the x-kernel's
"relative protocol id" reduced to a service name.  Pushes from any of the
uppers pass straight down through both stages.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Type

from repro.errors import ReproError
from repro.xkernel.upi import Protocol

__all__ = ["TypeDemux", "ServiceDemux"]


class TypeDemux(Protocol):
    """Routes popped payloads by their Python type."""

    def __init__(self, name: str = "demux"):
        super().__init__(name)
        self._routes: Dict[Type, Protocol] = {}

    def attach(self, payload_type: Type, upper: Protocol) -> None:
        """Deliver payloads of ``payload_type`` (or subclasses) to
        ``upper``; also wires ``upper.lower`` to this demux for pushes."""
        self._routes[payload_type] = upper
        upper.lower = self

    async def pop(self, payload: Any, **kwargs: Any) -> Any:
        for payload_type, upper in self._routes.items():
            if isinstance(payload, payload_type):
                return await upper.pop(payload, **kwargs)
        # Unclaimed payload types are dropped silently, like a port with
        # no listener.
        return None


class ServiceDemux(Protocol):
    """Routes popped payloads by their ``service`` key.

    Sits between a :class:`TypeDemux` and the per-service gRPC composites
    of a node that hosts more than one.  Each composite stamps its
    service name into every wire message it transmits
    (:meth:`repro.core.grpc.GroupRPC.net_push`), so the receiving side
    can hand the payload to the composite configured for that service —
    which may run an entirely different micro-protocol stack than its
    neighbours on the same node.

    Payloads whose key matches no route fall back to the first attached
    service (messages from hand-built stacks predating service keys), so
    a single-service node behaves exactly as if the composite sat on the
    type demux directly.
    """

    def __init__(self, name: str = "services"):
        super().__init__(name)
        self._routes: Dict[str, Protocol] = {}
        #: Where unkeyed/unknown payloads go; defaults to the first
        #: attached upper, assignable for explicit control.
        self.default_upper: Optional[Protocol] = None

    def attach(self, service: str, upper: Protocol) -> None:
        """Deliver payloads stamped with ``service`` to ``upper``; also
        wires ``upper.lower`` to this demux for pushes."""
        if service in self._routes:
            raise ReproError(
                f"{self.name}: service {service!r} is already attached")
        self._routes[service] = upper
        upper.lower = self
        if self.default_upper is None:
            self.default_upper = upper

    def detach(self, service: str) -> None:
        upper = self._routes.pop(service, None)
        if upper is self.default_upper:
            self.default_upper = next(iter(self._routes.values()), None)

    def services(self) -> List[str]:
        return sorted(self._routes)

    def route(self, service: str) -> Optional[Protocol]:
        return self._routes.get(service)

    async def pop(self, payload: Any, **kwargs: Any) -> Any:
        upper = self._routes.get(getattr(payload, "service", ""),
                                 self.default_upper)
        if upper is None:
            return None
        return await upper.pop(payload, **kwargs)
