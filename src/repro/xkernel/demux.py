"""Payload-type demultiplexing above the transport.

The x-kernel demultiplexes arriving messages to the right upper protocol;
our reduced UPI does the same by payload type.  A :class:`TypeDemux` sits
directly on the transport and routes each arrived payload to whichever
upper protocol claimed its type — gRPC claims :class:`~repro.core.
messages.NetMsg`, the heartbeat membership detector claims its
``Heartbeat`` payloads, and so on.  Pushes from any of the uppers pass
straight down.
"""

from __future__ import annotations

from typing import Any, Dict, Type

from repro.xkernel.upi import Protocol

__all__ = ["TypeDemux"]


class TypeDemux(Protocol):
    """Routes popped payloads by their Python type."""

    def __init__(self, name: str = "demux"):
        super().__init__(name)
        self._routes: Dict[Type, Protocol] = {}

    def attach(self, payload_type: Type, upper: Protocol) -> None:
        """Deliver payloads of ``payload_type`` (or subclasses) to
        ``upper``; also wires ``upper.lower`` to this demux for pushes."""
        self._routes[payload_type] = upper
        upper.lower = self

    async def pop(self, payload: Any, **kwargs: Any) -> Any:
        for payload_type, upper in self._routes.items():
            if isinstance(payload, payload_type):
                return await upper.pop(payload, **kwargs)
        # Unclaimed payload types are dropped silently, like a port with
        # no listener.
        return None
