"""The x-kernel Uniform Protocol Interface (UPI), reduced to essentials.

In the x-kernel every protocol object exports the same interface and is
composed hierarchically: ``push`` carries a message *down* toward the
network, ``pop`` carries a message *up* toward the user.  The paper's
composite gRPC protocol "exports the standard x-kernel Uniform Protocol
Interface, even though its internal structure is richer than a standard
x-kernel protocol" — this module provides that outer shell.

We keep only what the reproduction needs: named protocol objects with
``upper``/``lower`` links, async ``push``/``pop``, and a helper to wire a
stack together.  Sessions, participant lists and the x-kernel's open/demux
machinery are collapsed into keyword arguments on push/pop, which is
sufficient because gRPC's demultiplexing is done with call identifiers
carried in the messages themselves.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ReproError

__all__ = ["Protocol", "compose_stack"]


class Protocol:
    """A protocol object in an x-kernel style stack.

    Subclasses override :meth:`push` (invoked by the protocol above) and/or
    :meth:`pop` (invoked by the protocol below).  The default
    implementations forward transparently, so pass-through layers (tracing,
    filtering) only override one side.
    """

    def __init__(self, name: str):
        self.name = name
        self.upper: Optional["Protocol"] = None
        self.lower: Optional["Protocol"] = None

    async def push(self, *args: Any, **kwargs: Any) -> Any:
        """Handle a message travelling down; default: forward to lower."""
        if self.lower is None:
            raise ReproError(f"{self.name}: push with no lower protocol")
        return await self.lower.push(*args, **kwargs)

    async def pop(self, *args: Any, **kwargs: Any) -> Any:
        """Handle a message travelling up; default: forward to upper."""
        if self.upper is None:
            raise ReproError(f"{self.name}: pop with no upper protocol")
        return await self.upper.pop(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Protocol {self.name}>"


def compose_stack(*protocols: Protocol) -> List[Protocol]:
    """Wire protocols top-to-bottom into a stack and return them.

    ``compose_stack(user, grpc, transport)`` makes ``user`` the top (its
    pushes go to ``grpc``) and ``transport`` the bottom (its pops go to
    ``grpc``).  Returns the list for convenient unpacking.
    """
    if not protocols:
        raise ReproError("compose_stack requires at least one protocol")
    for above, below in zip(protocols, protocols[1:]):
        above.lower = below
        below.upper = above
    return list(protocols)
