"""x-kernel Uniform Protocol Interface shell for composite protocols."""

from repro.xkernel.demux import ServiceDemux, TypeDemux
from repro.xkernel.upi import Protocol, compose_stack

__all__ = ["Protocol", "TypeDemux", "ServiceDemux", "compose_stack"]
