"""The kernel profiler: where do the cycles (and the virtual time) go?

The ROADMAP's hot-path speed program needs a baseline before anything
can be optimised, and "run cProfile by hand" does not compose with the
simulation: one kernel step interleaves many tasks, and the interesting
unit of attribution is the *handler site* (micro-protocol owner +
handler), not the Python frame.  :class:`KernelProfiler` therefore
profiles at the seams the framework already has:

* **kernel steps** — a sampling hook in :meth:`repro.sim.kernel.Kernel.
  _step`: every ``sample_every``-th step captures ``perf_counter`` and
  the running task's name, and the wall-clock delta between consecutive
  samples is attributed to the earlier sample's task (start-to-start
  attribution, the classic sampling-profiler scheme).  This is the only
  wall-clock measurement in the system — everything else is virtual
  time — because "which task burns real CPU" is exactly what the speed
  program needs to know;
* **handler sites** — enter/exit hooks on the event bus's dispatch
  paths accumulate *virtual-time* self and cumulative totals per
  ``(owner, handler)`` site, with per-task frame stacks so nested
  ``trigger`` chains attribute child time to the child.  The same
  stacks yield collapsed-stack lines (``a;b;c <self>``), the format
  flamegraph tooling consumes;
* **the stub marshaller** — :func:`repro.stubs.marshal.install_profiler`
  routes per-call byte counts and wall-clock into :meth:`on_marshal` /
  :meth:`on_unmarshal`, since argument marshalling is the one real-CPU
  cost every call pays twice.

Zero overhead when disabled: the kernel hook is ``kernel.profile_hook``
(``None`` by default — one ``is None`` test per step), the bus captures
``runtime.profiler`` once at construction, and the marshaller checks a
module global once per call.  ``tests/test_obs_overhead.py`` guards all
three.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["KernelProfiler", "HandlerSite", "StepSite"]

#: A handler site: (owning micro-protocol, qualified handler name).
SiteKey = Tuple[str, str]


class StepSite:
    """Wall-clock accounting for one task name in the step sampler."""

    __slots__ = ("name", "samples", "wall")

    def __init__(self, name: str):
        self.name = name
        self.samples = 0
        self.wall = 0.0


class HandlerSite:
    """Virtual-time accounting for one (owner, handler) site."""

    __slots__ = ("owner", "handler", "calls", "cum", "self_time")

    def __init__(self, owner: str, handler: str):
        self.owner = owner
        self.handler = handler
        self.calls = 0
        #: Virtual time from enter to exit, children included.
        self.cum = 0.0
        #: Virtual time minus the time spent in nested handler sites.
        self.self_time = 0.0

    @property
    def label(self) -> str:
        return f"{self.owner or 'framework'}:{self.handler}"


class KernelProfiler:
    """Sampling profiler over kernel steps, handler sites and the
    marshaller.  One instance per deployment, owned by the observatory.
    """

    def __init__(self, *, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        # -- step sampler (wall clock) --
        self.steps_seen = 0
        self._pending: Optional[Tuple[str, float]] = None
        self._step_sites: Dict[str, StepSite] = {}
        # -- handler sites (virtual time) --
        self._handler_sites: Dict[SiteKey, HandlerSite] = {}
        #: Per-task stacks of [site_key, child_virtual_time] frames.
        self._stacks: Dict[int, List[List[Any]]] = {}
        #: Collapsed stack path -> accumulated self virtual time.
        self._collapsed: Dict[Tuple[str, ...], float] = {}
        # -- marshaller --
        self.marshal_calls = 0
        self.marshal_bytes = 0
        self.marshal_wall = 0.0
        self.unmarshal_calls = 0
        self.unmarshal_bytes = 0
        self.unmarshal_wall = 0.0

    # ------------------------------------------------------------------
    # Kernel step hook (wall clock, sampled)
    # ------------------------------------------------------------------

    def on_step(self, task: Any) -> None:
        """Installed as ``kernel.profile_hook``; called once per step."""
        self.steps_seen += 1
        if self.steps_seen % self.sample_every:
            return
        now = perf_counter()
        pending = self._pending
        if pending is not None:
            name, then = pending
            site = self._step_sites.get(name)
            if site is None:
                site = self._step_sites[name] = StepSite(name)
            site.samples += 1
            site.wall += now - then
        self._pending = (task.name, now)

    def step_sites(self) -> List[StepSite]:
        """Sampled tasks, most wall-clock first."""
        return sorted(self._step_sites.values(),
                      key=lambda s: (-s.wall, s.name))

    # ------------------------------------------------------------------
    # Handler-site hooks (virtual time, exact)
    # ------------------------------------------------------------------

    def handler_enter(self, task_key: int, owner: str,
                      handler: str) -> None:
        self._stacks.setdefault(task_key, []).append(
            [(owner, handler), 0.0])

    def handler_exit(self, task_key: int, duration: float) -> None:
        stack = self._stacks.get(task_key)
        if not stack:
            return
        key, child = stack.pop()
        site = self._handler_sites.get(key)
        if site is None:
            site = self._handler_sites[key] = HandlerSite(*key)
        self_time = duration - child
        if self_time < 0.0:
            self_time = 0.0
        site.calls += 1
        site.cum += duration
        site.self_time += self_time
        path = tuple(f"{fk[0] or 'framework'}:{fk[1]}"
                     for fk, _ in stack) + (site.label,)
        self._collapsed[path] = self._collapsed.get(path, 0.0) + self_time
        if stack:
            stack[-1][1] += duration
        else:
            del self._stacks[task_key]

    def handler_sites(self) -> List[HandlerSite]:
        """Handler sites, most cumulative virtual time first."""
        return sorted(self._handler_sites.values(),
                      key=lambda s: (-s.cum, s.owner, s.handler))

    def collapsed(self) -> str:
        """Collapsed-stack export (``a;b;c <microseconds>`` per line),
        the flamegraph input format.  Self virtual time, scaled to
        integer microseconds; sorted for determinism."""
        lines = []
        for path, self_time in sorted(self._collapsed.items()):
            lines.append(f"{';'.join(path)} {round(self_time * 1e6)}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Marshaller hooks (wall clock, exact)
    # ------------------------------------------------------------------

    def on_marshal(self, nbytes: int, seconds: float) -> None:
        self.marshal_calls += 1
        self.marshal_bytes += nbytes
        self.marshal_wall += seconds

    def on_unmarshal(self, nbytes: int, seconds: float) -> None:
        self.unmarshal_calls += 1
        self.unmarshal_bytes += nbytes
        self.unmarshal_wall += seconds

    # ------------------------------------------------------------------
    # Publishing and reporting
    # ------------------------------------------------------------------

    def publish(self, metrics: Any) -> None:
        """Snapshot the profile into ``obs.profile.*`` gauges."""
        gauge = metrics.gauge
        gauge("obs.profile.steps").set(self.steps_seen)
        gauge("obs.profile.step_sites").set(len(self._step_sites))
        gauge("obs.profile.handler_sites").set(len(self._handler_sites))
        gauge("obs.profile.handler_virtual").set(
            sum(s.self_time for s in self._handler_sites.values()))
        gauge("obs.profile.marshal.calls").set(self.marshal_calls)
        gauge("obs.profile.marshal.bytes").set(self.marshal_bytes)
        gauge("obs.profile.marshal.wall").set(self.marshal_wall)
        gauge("obs.profile.unmarshal.calls").set(self.unmarshal_calls)
        gauge("obs.profile.unmarshal.bytes").set(self.unmarshal_bytes)
        gauge("obs.profile.unmarshal.wall").set(self.unmarshal_wall)

    def report_lines(self, *, top: int = 8) -> List[str]:
        """The profiler section of the deployment health report."""
        lines = [f"kernel steps seen: {self.steps_seen} "
                 f"(sampling 1/{self.sample_every})"]
        sites = self.handler_sites()
        if sites:
            lines.append(f"top handler sites by virtual time "
                         f"(of {len(sites)}):")
            for site in sites[:top]:
                lines.append(
                    f"  {site.label:<46} calls={site.calls:<6} "
                    f"self={site.self_time * 1000:8.2f}ms "
                    f"cum={site.cum * 1000:8.2f}ms")
        else:
            lines.append("no handler sites recorded")
        steps = self.step_sites()
        if steps:
            lines.append("top tasks by sampled wall clock:")
            for site in steps[:top]:
                lines.append(
                    f"  {site.name:<46} samples={site.samples:<6} "
                    f"wall={site.wall * 1000:8.2f}ms")
        if self.marshal_calls or self.unmarshal_calls:
            lines.append(
                f"marshalling: {self.marshal_calls} encodes "
                f"({self.marshal_bytes} B, "
                f"{self.marshal_wall * 1000:.2f}ms), "
                f"{self.unmarshal_calls} decodes "
                f"({self.unmarshal_bytes} B, "
                f"{self.unmarshal_wall * 1000:.2f}ms)")
        return lines
