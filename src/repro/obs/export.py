"""Trace exporters: JSONL dump, span-tree reconstruction, flame summary.

Three consumers of one :class:`~repro.obs.recorder.Recorder`:

* :func:`to_jsonl` — the machine format.  One JSON object per line,
  discriminated by ``"t"``: ``span`` lines, ``event`` lines (dispatch
  records), and ``metric`` lines (the registry snapshot).  This is what
  ``python -m repro trace <config>`` emits.
* :func:`span_trees` — rebuilds the per-trace call trees from flat
  spans; a span whose parent never materialized (e.g. its message was
  dropped and the sender crashed) becomes an extra root of its trace
  rather than being lost.
* :func:`format_flame` — the human format: one indented tree per trace
  with virtual-time offsets/durations, handler records nested under the
  span that was current when they ran.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.recorder import EventRecord, Recorder, Span

__all__ = ["to_jsonl", "read_jsonl", "span_trees", "format_flame",
           "SpanNode"]


def _span_line(span: Span) -> Dict[str, Any]:
    return {"t": "span", "trace": span.trace, "id": span.sid,
            "parent": span.parent, "name": span.name, "node": span.node,
            "start": span.start, "end": span.end, "attrs": span.attrs}


def _event_line(event: EventRecord) -> Dict[str, Any]:
    line = {"t": "event", "kind": event.kind, "time": event.time,
            "node": event.node}
    line.update(event.fields)
    return line


def to_jsonl(recorder: Recorder, stream: IO[str]) -> int:
    """Serialize the recorder (and its metrics) as JSONL; returns the
    number of lines written."""
    lines = 0
    for span in recorder.spans:
        stream.write(json.dumps(_span_line(span), default=str) + "\n")
        lines += 1
    for event in recorder.events:
        stream.write(json.dumps(_event_line(event), default=str) + "\n")
        lines += 1
    snapshot = recorder.metrics.snapshot()
    for name, value in snapshot["counters"].items():
        stream.write(json.dumps({"t": "metric", "kind": "counter",
                                 "name": name, "value": value}) + "\n")
        lines += 1
    for name, value in snapshot["gauges"].items():
        stream.write(json.dumps({"t": "metric", "kind": "gauge",
                                 "name": name, "value": value}) + "\n")
        lines += 1
    for name, summary in snapshot["histograms"].items():
        line = {"t": "metric", "kind": "histogram", "name": name}
        line.update(summary)
        stream.write(json.dumps(line) + "\n")
        lines += 1
    return lines


def read_jsonl(stream: Iterable[str]) -> Dict[str, List[Dict[str, Any]]]:
    """Parse a JSONL trace back into ``{"span": [...], "event": [...],
    "metric": [...]}`` (round-trip aid for tests and offline tooling)."""
    out: Dict[str, List[Dict[str, Any]]] = {"span": [], "event": [],
                                            "metric": []}
    for raw in stream:
        raw = raw.strip()
        if not raw:
            continue
        obj = json.loads(raw)
        out.setdefault(obj.get("t", "?"), []).append(obj)
    return out


@dataclass
class SpanNode:
    """One node of a reconstructed call tree."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)
    #: Handler event records whose context pointed at this span.
    handlers: List[EventRecord] = field(default_factory=list)


def span_trees(recorder: Recorder) -> Dict[int, List[SpanNode]]:
    """Trace id -> list of root nodes (one, for a connected trace)."""
    nodes: Dict[int, SpanNode] = {s.sid: SpanNode(s)
                                  for s in recorder.spans}
    trees: Dict[int, List[SpanNode]] = {}
    for span in recorder.spans:
        node = nodes[span.sid]
        parent = nodes.get(span.parent) if span.parent is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            trees.setdefault(span.trace, []).append(node)
    for event in recorder.events:
        if event.kind != "handler":
            continue
        ctx = event.fields.get("span")
        if ctx and ctx[1] in nodes:
            nodes[ctx[1]].handlers.append(event)
    return trees


def _format_node(node: SpanNode, base: float, depth: int,
                 lines: List[str]) -> None:
    span = node.span
    offset = (span.start - base) * 1000.0
    dur = span.duration * 1000.0
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
    lines.append(f"{'  ' * depth}{span.name}  node={span.node}  "
                 f"@{offset:.2f}ms  ({dur:.2f}ms)"
                 + (f"  {attrs}" if attrs else ""))
    for event in sorted(node.handlers, key=lambda e: e.time):
        lines.append(f"{'  ' * (depth + 1)}· {event.fields['owner']}"
                     f".{event.fields['handler'].rsplit('.', 1)[-1]}"
                     f" [{event.fields['event']}]"
                     f"  {event.fields['dur'] * 1000.0:.2f}ms")
    for child in sorted(node.children, key=lambda n: n.span.start):
        _format_node(child, base, depth + 1, lines)


def format_flame(recorder: Recorder,
                 trace: Optional[int] = None) -> str:
    """Human-readable per-call flame summary (one tree per trace)."""
    trees = span_trees(recorder)
    selected: List[Tuple[int, List[SpanNode]]] = sorted(
        (t, roots) for t, roots in trees.items()
        if trace is None or t == trace)
    lines: List[str] = []
    for trace_id, roots in selected:
        base = min(n.span.start for n in roots)
        lines.append(f"trace {trace_id}:")
        for root in sorted(roots, key=lambda n: n.span.start):
            _format_node(root, base, 1, lines)
    return "\n".join(lines)
