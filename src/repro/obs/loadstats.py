"""Per-key load accounting: which keys are hot, per shard.

The routers already count *how many* lookups each shard absorbs
(``placement.router.keys_routed.<service>``); what they cannot answer is
*which keys* are responsible — the datum hot-key splitting needs before
it can act (see ROADMAP: load-aware placement).  Tracking every key
exactly is unbounded, so :class:`SpaceSaving` implements the classic
Metwally/Agrawal/El Abbadi space-saving sketch: a fixed budget of ``k``
counters that provably contains every key whose true frequency exceeds
``total / k``, each with an explicit overestimation bound.

:class:`KeyLoadTracker` holds one sketch per shard service and is the
object the observatory hands to :meth:`ShardRouter.attach_load` /
:class:`~repro.placement.plane.PlacementPlane`.  Its per-note cost is a
counter increment plus one sketch update; publishing lands
``placement.load.*`` gauges in the shared registry.  Like every obs
hook, the tracker is attached once at construction time — a deployment
without the observatory keeps routers on a single ``is None`` test.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SpaceSaving", "KeyLoadTracker"]


class SpaceSaving:
    """Top-K frequency sketch with a fixed counter budget.

    ``hit(key)`` costs O(budget) in the worst case (eviction scans for
    the minimum) but O(1) while the key set fits; ``top(n)`` returns
    ``(key, count, err)`` triples where ``count - err`` lower-bounds the
    key's true frequency.
    """

    __slots__ = ("budget", "total", "_counts", "_errs")

    def __init__(self, budget: int):
        if budget < 1:
            raise ValueError("space-saving budget must be >= 1")
        self.budget = budget
        self.total = 0
        self._counts: Dict[str, int] = {}
        self._errs: Dict[str, int] = {}

    def hit(self, key: str, n: int = 1) -> None:
        self.total += n
        counts = self._counts
        if key in counts:
            counts[key] += n
            return
        if len(counts) < self.budget:
            counts[key] = n
            self._errs[key] = 0
            return
        # Evict the minimum counter; the newcomer inherits its count as
        # the overestimation error (the sketch's defining move).
        victim = min(counts, key=lambda k: (counts[k], k))
        floor = counts.pop(victim)
        self._errs.pop(victim)
        counts[key] = floor + n
        self._errs[key] = floor

    def top(self, n: Optional[int] = None) -> List[Tuple[str, int, int]]:
        """``(key, count, err)`` triples, hottest first (ties by key)."""
        ranked = sorted(self._counts.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        if n is not None:
            ranked = ranked[:n]
        return [(key, count, self._errs[key]) for key, count in ranked]

    def __len__(self) -> int:
        return len(self._counts)


class KeyLoadTracker:
    """One space-saving sketch per shard service.

    ``note(service, key)`` is the hook routers call per routed lookup;
    ``publish`` snapshots ``placement.load.*`` gauges; ``top`` feeds the
    health report and future hot-key splitting.
    """

    def __init__(self, metrics: Any, *, top_k: int = 8):
        self.metrics = metrics
        self.top_k = top_k
        self._sketches: Dict[str, SpaceSaving] = {}
        self._noted = metrics.counter("placement.load.noted")

    def note(self, service: str, key: str) -> None:
        self._noted.inc()
        sketch = self._sketches.get(service)
        if sketch is None:
            sketch = self._sketches[service] = SpaceSaving(self.top_k)
        sketch.hit(key)

    def services(self) -> List[str]:
        return sorted(self._sketches)

    def top(self, service: str,
            n: Optional[int] = None) -> List[Tuple[str, int, int]]:
        sketch = self._sketches.get(service)
        if sketch is None:
            return []
        return sketch.top(n if n is not None else self.top_k)

    def publish(self) -> None:
        """Per-shard gauges: tracked volume and the hottest key's count."""
        for service, sketch in self._sketches.items():
            self.metrics.gauge(
                f"placement.load.volume.{service}").set(sketch.total)
            top = sketch.top(1)
            self.metrics.gauge(
                f"placement.load.hottest.{service}").set(
                top[0][1] if top else 0)

    def report_lines(self) -> List[str]:
        """The hot-key section of the deployment health report."""
        if not self._sketches:
            return ["no routed lookups recorded"]
        lines = []
        for service in self.services():
            sketch = self._sketches[service]
            ranked = ", ".join(
                f"{key}×{count}" + (f"(-{err})" if err else "")
                for key, count, err in sketch.top(self.top_k))
            lines.append(f"{service}: {sketch.total} lookups, "
                         f"top keys: {ranked}")
        return lines
