"""Windowed SLO tracking: rolling latency watermarks and breach events.

A deployment-wide histogram answers "what was the p99 over the whole
run"; an operator needs "what is the p99 *now*, and when did it cross
the line".  :class:`SloTracker` keeps one bounded rolling window of the
most recent latencies per service (fed from the deployment's call path,
the same observation the ``service.<name>.latency`` histogram gets) and
recomputes the p50/p95/p99 watermarks on each observation once the
window holds enough samples.

Crossing a configured threshold *latches* a breach: one
:class:`SloBreach` is recorded per excursion (the latch re-arms when the
watermark drops back under), counted in ``obs.slo.breaches``, and the
``on_breach`` callback fires — the observatory points it at the flight
recorder's dump, so the control-plane history leading up to the breach
is preserved exactly when it is worth reading.

Enabled-only by design: the tracker exists only inside an observatory,
and the deployment's call path guards it with the usual attach-time
``is None`` test.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["SloTracker", "SloBreach"]

#: The watermarks every window reports.
PERCENTILES = (50, 95, 99)


@dataclass(frozen=True)
class SloBreach:
    """One latched threshold excursion."""

    time: float
    service: str
    percentile: int
    value: float
    threshold: float


def _nearest_rank(ordered: List[float], p: float) -> float:
    rank = max(0, min(len(ordered) - 1,
                      int(round(p / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class SloTracker:
    """Rolling latency windows with threshold breach detection.

    ``thresholds`` maps a percentile (50/95/99) to the latency bound in
    virtual seconds, applied to every service; ``None`` disables breach
    detection (watermarks still track).  ``min_samples`` delays
    judgement until a window is statistically meaningful.
    """

    def __init__(self, metrics: Any, *, window: int = 128,
                 thresholds: Optional[Dict[int, float]] = None,
                 min_samples: int = 16,
                 clock: Callable[[], float] = lambda: 0.0):
        if window < 1:
            raise ValueError("slo window must be >= 1")
        self.window = window
        self.min_samples = max(1, min_samples)
        self.thresholds = dict(thresholds) if thresholds else {}
        for p in self.thresholds:
            if p not in PERCENTILES:
                raise ValueError(f"unsupported SLO percentile p{p}; "
                                 f"choose from {PERCENTILES}")
        self.metrics = metrics
        self.clock = clock
        self.breaches: List[SloBreach] = []
        #: Breach callback (the observatory wires the flight-recorder
        #: dump here); called with the fresh :class:`SloBreach`.
        self.on_breach: Optional[Callable[[SloBreach], None]] = None
        self._windows: Dict[str, Deque[float]] = {}
        #: (service, percentile) pairs currently over their threshold.
        self._latched: set = set()
        self._observed = metrics.counter("obs.slo.observed")
        self._breached = metrics.counter("obs.slo.breaches")

    # ------------------------------------------------------------------

    def observe(self, service: str, latency: float) -> None:
        """Fold one call latency into the service's rolling window."""
        self._observed.inc()
        window = self._windows.get(service)
        if window is None:
            window = self._windows[service] = deque(maxlen=self.window)
        window.append(latency)
        if not self.thresholds or len(window) < self.min_samples:
            return
        ordered = sorted(window)
        for p, bound in self.thresholds.items():
            value = _nearest_rank(ordered, p)
            latch = (service, p)
            if value > bound:
                if latch not in self._latched:
                    self._latched.add(latch)
                    breach = SloBreach(self.clock(), service, p, value,
                                       bound)
                    self.breaches.append(breach)
                    self._breached.inc()
                    if self.on_breach is not None:
                        self.on_breach(breach)
            else:
                self._latched.discard(latch)

    # ------------------------------------------------------------------

    def services(self) -> List[str]:
        return sorted(self._windows)

    def watermarks(self, service: str) -> Dict[str, float]:
        """Current p50/p95/p99 over the service's rolling window."""
        window = self._windows.get(service)
        if not window:
            return {f"p{p}": 0.0 for p in PERCENTILES}
        ordered = sorted(window)
        return {f"p{p}": _nearest_rank(ordered, p) for p in PERCENTILES}

    def publish(self) -> None:
        """Snapshot every window's watermarks into ``obs.slo.*`` gauges."""
        for service in self._windows:
            marks = self.watermarks(service)
            for label, value in marks.items():
                self.metrics.gauge(
                    f"obs.slo.{label}.{service}").set(value)

    def report_lines(self) -> List[str]:
        """The SLO section of the deployment health report."""
        if not self._windows:
            return ["no latencies observed"]
        lines = []
        for service in self.services():
            marks = self.watermarks(service)
            n = len(self._windows[service])
            lines.append(
                f"{service}: window n={n}  "
                + "  ".join(f"{label}={value * 1000:.2f}ms"
                            for label, value in marks.items()))
        for breach in self.breaches:
            lines.append(
                f"BREACH t={breach.time:.3f}s {breach.service} "
                f"p{breach.percentile}={breach.value * 1000:.2f}ms "
                f"> {breach.threshold * 1000:.2f}ms")
        if not self.breaches and self.thresholds:
            bounds = ", ".join(f"p{p}<={v * 1000:.1f}ms"
                               for p, v in sorted(self.thresholds.items()))
            lines.append(f"no breaches (thresholds: {bounds})")
        return lines
