"""The micro-protocol catalog of the observability layer.

Every micro-protocol module registers its protocol name here at import
time (``register_protocol(MyMicro.protocol_name)``), so trace consumers
can resolve the ``owner`` field of a dispatch record to a known
micro-protocol and the :mod:`repro.analysis` lint can statically verify
that no module forgot.  Registration is idempotent and costs one set
insert per process lifetime — it carries no per-call overhead.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

__all__ = ["register_protocol", "registered_protocols", "is_registered"]

#: Protocol name -> defining module ("" when unknown).
_CATALOG: Dict[str, str] = {}


def register_protocol(name: str, module: str = "") -> str:
    """Announce a micro-protocol name to the obs layer.

    Returns the name so modules can write
    ``register_protocol(MyMicro.protocol_name)`` as a bare statement.
    """
    if not name:
        raise ValueError("micro-protocol name must be non-empty")
    _CATALOG.setdefault(name, module)
    return name


def registered_protocols() -> FrozenSet[str]:
    """The names every imported micro-protocol has registered."""
    return frozenset(_CATALOG)


def is_registered(name: str) -> bool:
    return name in _CATALOG
