"""repro.obs — the unified observability layer.

One instrumentation surface threaded through the simulation kernel, the
composite-protocol framework, every micro-protocol and the network
fabric:

* **RPC spans** (:mod:`repro.obs.recorder`) — a trace minted at
  ``GroupRPC.call()``, propagated inside wire messages, closed on
  termination, yielding one span tree per call;
* **event-dispatch tracing** — structured records from the framework's
  ``register``/``trigger``/``cancel_event``/``TIMEOUT`` paths with
  per-micro-protocol virtual-time handler durations;
* a **metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges
  and virtual-time histograms, also backing the network fabric's
  counters;
* **exporters** (:mod:`repro.obs.export`) — JSONL dump, per-call flame
  summary, and the ``python -m repro trace <config>`` CLI;
* the **observatory** (:mod:`repro.obs.observatory`) — the deployment
  measurement plane: a sampling kernel profiler
  (:mod:`repro.obs.profiler`), per-key load accounting
  (:mod:`repro.obs.loadstats`), windowed SLO tracking
  (:mod:`repro.obs.slo`), a bounded flight recorder
  (:mod:`repro.obs.flight`), and the ``python -m repro report`` CLI.

Disabled is the default and costs (nearly) nothing: the recorder is
checked once at :meth:`~repro.runtime.base.Runtime.attach_obs` time and
instrumented components store ``None``, leaving their hot paths on the
untraced branch (see ``tests/test_obs_overhead.py``).
"""

from repro.obs.export import (
    SpanNode,
    format_flame,
    read_jsonl,
    span_trees,
    to_jsonl,
)
from repro.obs.flight import FlightRecorder, live_recorders
from repro.obs.loadstats import KeyLoadTracker, SpaceSaving
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observatory import Observatory, ObservatoryConfig
from repro.obs.profiler import KernelProfiler
from repro.obs.recorder import (
    CTX_KEY,
    EventRecord,
    Recorder,
    Span,
    SpanContext,
)
from repro.obs.registry import (
    is_registered,
    register_protocol,
    registered_protocols,
)
from repro.obs.slo import SloBreach, SloTracker

__all__ = [
    "CTX_KEY",
    "Counter",
    "EventRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "KeyLoadTracker",
    "MetricsRegistry",
    "Observatory",
    "ObservatoryConfig",
    "Recorder",
    "SloBreach",
    "SloTracker",
    "SpaceSaving",
    "Span",
    "SpanContext",
    "SpanNode",
    "format_flame",
    "is_registered",
    "live_recorders",
    "read_jsonl",
    "register_protocol",
    "registered_protocols",
    "span_trees",
    "to_jsonl",
]
