"""repro.obs — the unified observability layer.

One instrumentation surface threaded through the simulation kernel, the
composite-protocol framework, every micro-protocol and the network
fabric:

* **RPC spans** (:mod:`repro.obs.recorder`) — a trace minted at
  ``GroupRPC.call()``, propagated inside wire messages, closed on
  termination, yielding one span tree per call;
* **event-dispatch tracing** — structured records from the framework's
  ``register``/``trigger``/``cancel_event``/``TIMEOUT`` paths with
  per-micro-protocol virtual-time handler durations;
* a **metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges
  and virtual-time histograms, also backing the network fabric's
  counters;
* **exporters** (:mod:`repro.obs.export`) — JSONL dump, per-call flame
  summary, and the ``python -m repro trace <config>`` CLI.

Disabled is the default and costs (nearly) nothing: the recorder is
checked once at :meth:`~repro.runtime.base.Runtime.attach_obs` time and
instrumented components store ``None``, leaving their hot paths on the
untraced branch (see ``tests/test_obs_overhead.py``).
"""

from repro.obs.export import (
    SpanNode,
    format_flame,
    read_jsonl,
    span_trees,
    to_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.recorder import (
    CTX_KEY,
    EventRecord,
    Recorder,
    Span,
    SpanContext,
)
from repro.obs.registry import (
    is_registered,
    register_protocol,
    registered_protocols,
)

__all__ = [
    "CTX_KEY",
    "Counter",
    "EventRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Recorder",
    "Span",
    "SpanContext",
    "SpanNode",
    "format_flame",
    "is_registered",
    "read_jsonl",
    "register_protocol",
    "registered_protocols",
    "span_trees",
    "to_jsonl",
]
