"""The trace recorder: RPC spans and event-dispatch records.

One :class:`Recorder` serves a whole deployment.  It collects two kinds
of data:

* **spans** — timed, parented intervals forming one tree per RPC
  (``rpc.call`` at the client, one ``rpc.send`` per transmission, one
  ``msg.*`` per delivered wire message, one ``server.execute`` per
  server-procedure run).  Span context — the ``(trace, span)`` id pair —
  crosses the simulated network inside ``NetMsg.annotations`` under
  :data:`CTX_KEY`, which is how the per-server subtrees reconnect to the
  client's root.
* **event records** — flat structured records from the framework's
  ``register`` / ``trigger`` / ``cancel_event`` / ``TIMEOUT`` paths,
  each carrying the handler name, owning micro-protocol, priority and
  virtual-time duration.  Handler durations are simultaneously folded
  into the shared :class:`~repro.obs.metrics.MetricsRegistry` under
  ``handler.<micro>``, which is what decomposes composition overhead
  per micro-protocol.

Zero overhead when disabled
---------------------------

Instrumented components never consult a recorder per operation.
:meth:`repro.runtime.base.Runtime.attach_obs` performs the enabled check
*once at attach time* and stores ``None`` for a disabled (or absent)
recorder; each component captures that reference at construction, so the
disabled hot path is a single ``is None`` test — guarded by
``tests/test_obs_overhead.py``.

Context propagation within a process uses a per-task stack keyed by the
runtime's current task handle, so concurrent dispatch chains (one per
network arrival) cannot cross wires.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["CTX_KEY", "SpanContext", "Span", "EventRecord", "Recorder"]

#: Annotation key under which span context travels inside wire messages.
CTX_KEY = "obs.ctx"

#: ``(trace id, span id)`` — what crosses task and process boundaries.
SpanContext = Tuple[int, int]


@dataclass
class Span:
    """One timed, parented interval of a trace."""

    trace: int
    sid: int
    parent: Optional[int]
    name: str
    node: int
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def ctx(self) -> SpanContext:
        return (self.trace, self.sid)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass(frozen=True)
class EventRecord:
    """One structured observation outside the span tree proper."""

    time: float
    kind: str
    node: int
    fields: Dict[str, Any]


def _no_task() -> Optional[int]:
    return None


def _zero_clock() -> float:
    return 0.0


class Recorder:
    """Collects spans and event records for one deployment.

    Construct with ``enabled=False`` for a no-op recorder: every record
    method returns immediately, and
    :meth:`~repro.runtime.base.Runtime.attach_obs` refuses to install it
    at all, keeping instrumented code on its untraced path.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None, *,
                 enabled: bool = True):
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []
        self.events: List[EventRecord] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        # Per-task context stacks; key None collects out-of-task pushes.
        self._ctx: Dict[Optional[int], List[SpanContext]] = {}
        self._clock: Callable[[], float] = _zero_clock
        self._task_key: Callable[[], Optional[int]] = _no_task

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    def bind(self, runtime: Any) -> None:
        """Adopt ``runtime``'s clock and task identity.

        Called by :meth:`Runtime.attach_obs`; until bound, timestamps
        are 0 and context is process-global (fine for unit tests that
        exercise the recorder standalone).
        """
        self._clock = runtime.now

        def task_key() -> Optional[int]:
            try:
                return id(runtime.current_handle_nowait())
            except Exception:  # outside any task (setup/teardown code)
                return None

        self._task_key = task_key

    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def new_trace(self) -> int:
        return next(self._trace_ids)

    def start_span(self, name: str, *, node: int = -1,
                   parent: Optional[SpanContext] = None,
                   attrs: Optional[Dict[str, Any]] = None) -> Optional[Span]:
        """Open a span; parent defaults to the calling task's context.

        With no parent anywhere a fresh trace is minted (this is the
        root-span case, e.g. ``rpc.call``).
        """
        if not self.enabled:
            return None
        if parent is None:
            parent = self.current()
        if parent is not None:
            trace, parent_sid = int(parent[0]), int(parent[1])
        else:
            trace, parent_sid = self.new_trace(), None
        span = Span(trace=trace, sid=next(self._span_ids),
                    parent=parent_sid, name=name, node=node,
                    start=self.now(), attrs=dict(attrs) if attrs else {})
        self.spans.append(span)
        return span

    def end_span(self, span: Optional[Span], **attrs: Any) -> None:
        if span is None:
            return
        span.end = self.now()
        if attrs:
            span.attrs.update(attrs)

    def span_event(self, name: str, *, node: int = -1,
                   parent: Optional[SpanContext] = None,
                   **attrs: Any) -> Optional[Span]:
        """A zero-duration span (an instantaneous action like a send)."""
        span = self.start_span(name, node=node, parent=parent, attrs=attrs)
        if span is not None:
            span.end = span.start
        return span

    # ------------------------------------------------------------------
    # Per-task context
    # ------------------------------------------------------------------

    def push_ctx(self, ctx: SpanContext) -> None:
        self._ctx.setdefault(self._task_key(), []).append(ctx)

    def pop_ctx(self) -> None:
        key = self._task_key()
        stack = self._ctx.get(key)
        if stack:
            stack.pop()
            if not stack:
                self._ctx.pop(key, None)

    def current(self) -> Optional[SpanContext]:
        """The calling task's innermost span context, if any."""
        stack = self._ctx.get(self._task_key())
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Structured event records
    # ------------------------------------------------------------------

    def record_event(self, kind: str, *, node: int = -1,
                     time: Optional[float] = None, **fields: Any) -> None:
        if not self.enabled:
            return
        self.events.append(EventRecord(
            time=self.now() if time is None else time,
            kind=kind, node=node, fields=fields))

    def record_handler(self, event: str, owner: str, handler: str,
                       priority: float, start: float, end: float, *,
                       node: int = -1, cancelled: bool = False) -> None:
        """One handler invocation on a ``trigger``/``TIMEOUT`` path.

        Besides the flat record (tagged with the calling task's span
        context so exporters can nest it), the virtual-time duration is
        folded into the ``handler.<owner>`` histogram — the per-micro-
        protocol cost accounting the benchmarks decompose.
        """
        if not self.enabled:
            return
        ctx = self.current()
        self.events.append(EventRecord(
            time=start, kind="handler", node=node,
            fields={"event": event, "owner": owner or "framework",
                    "handler": handler, "priority": priority,
                    "dur": end - start, "cancelled": cancelled,
                    "span": list(ctx) if ctx else None}))
        self.metrics.histogram(
            "handler." + (owner or "framework")).observe(end - start)
        self.metrics.counter("obs.handlers").inc()

    # ------------------------------------------------------------------
    # Queries / maintenance
    # ------------------------------------------------------------------

    def trace_spans(self, trace: int) -> List[Span]:
        return [s for s in self.spans if s.trace == trace]

    def roots(self) -> List[Span]:
        """Spans that start their trace (no parent)."""
        return [s for s in self.spans if s.parent is None]

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._ctx.clear()
