"""The deployment observatory: one measurement plane over everything.

The paper's configurability argument is only actionable if an operator
can *see* what each composition costs at runtime; this module is where
the individual instruments — the sampling kernel profiler
(:mod:`repro.obs.profiler`), per-key load accounting
(:mod:`repro.obs.loadstats`), windowed SLO tracking
(:mod:`repro.obs.slo`) and the flight recorder
(:mod:`repro.obs.flight`) — are assembled and wired into a running
:class:`~repro.core.deployment.Deployment`:

* the profiler is attached to the runtime (kernel step hook), captured
  by every event bus built afterwards, and installed as the stub
  marshaller's module hook;
* the load tracker is what :meth:`ShardRouter.attach_load` and the
  placement plane's routed call path feed;
* the SLO tracker observes every name-resolved call's latency, and its
  breach callback triggers a flight-recorder dump — the tape of
  suspicion flips, rebinds, migration phases, backpressure stalls and
  fast-lane activations leading up to the breach;
* membership changes are taped via
  :meth:`Deployment.watch_membership`.

Construct a deployment with ``observatory=True`` (or an
:class:`ObservatoryConfig`); everything else holds ``None`` hooks and
stays on the zero-overhead disabled path.  ``python -m repro report``
renders :meth:`Observatory.render_report`, the one-page health view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.flight import FlightRecorder
from repro.obs.loadstats import KeyLoadTracker
from repro.obs.profiler import KernelProfiler
from repro.obs.slo import SloBreach, SloTracker

__all__ = ["Observatory", "ObservatoryConfig"]


def _marshal_module():
    """The stub marshaller, imported lazily: :mod:`repro.stubs` pulls in
    the whole composite-protocol layer, which itself imports
    :mod:`repro.obs` — a cycle at module-import time, gone by the time
    an observatory is actually constructed.  ``importlib`` rather than
    ``from repro.stubs import marshal``: the package re-exports the
    :func:`~repro.stubs.marshal.marshal` *function* under that name."""
    import importlib
    return importlib.import_module("repro.stubs.marshal")


@dataclass(frozen=True)
class ObservatoryConfig:
    """Knobs for the measurement plane."""

    #: Kernel step sampling period (1 = every step).
    sample_every: int = 1
    #: Hot-key counters per shard (space-saving sketch budget).
    top_k: int = 8
    #: Rolling latency window size per service.
    slo_window: int = 128
    #: Percentile -> latency bound in virtual seconds ({} = watermarks
    #: only, no breach detection).
    slo_thresholds: Dict[int, float] = field(default_factory=dict)
    #: Observations a window needs before breaches are judged.
    slo_min_samples: int = 16
    #: Flight-recorder ring capacity.
    recorder_capacity: int = 256
    #: Dump the flight recorder automatically on an SLO breach.
    dump_on_breach: bool = True


class Observatory:
    """The assembled measurement plane of one deployment."""

    def __init__(self, deployment: Any,
                 config: Optional[ObservatoryConfig] = None):
        cfg = self.config = config or ObservatoryConfig()
        self.deployment = deployment
        metrics = deployment.metrics
        runtime = deployment.runtime
        self.profiler = KernelProfiler(sample_every=cfg.sample_every)
        self.load = KeyLoadTracker(metrics, top_k=cfg.top_k)
        self.slo = SloTracker(metrics, window=cfg.slo_window,
                              thresholds=cfg.slo_thresholds,
                              min_samples=cfg.slo_min_samples,
                              clock=runtime.now)
        self.flight = FlightRecorder(metrics,
                                     capacity=cfg.recorder_capacity,
                                     clock=runtime.now)
        if cfg.dump_on_breach:
            self.slo.on_breach = self._dump_on_breach
        # Hook installation.  Order matters only for the profiler: it
        # must be attached before composites (and their event buses) are
        # built, which Deployment guarantees by constructing the
        # observatory inside its own __init__.
        runtime.attach_profiler(self.profiler)
        _marshal_module().install_profiler(self.profiler)
        deployment.watch_membership(self._on_membership)
        deployment.fabric.pipeline.flight = self.flight

    # ------------------------------------------------------------------
    # Wiring callbacks
    # ------------------------------------------------------------------

    def _dump_on_breach(self, breach: SloBreach) -> None:
        self.flight.note("slo-breach", service=breach.service,
                         percentile=breach.percentile,
                         value=round(breach.value, 6),
                         threshold=breach.threshold)
        self.flight.dump(
            f"slo-breach:{breach.service}:p{breach.percentile}")

    def _on_membership(self, pid: int, alive: bool) -> None:
        self.flight.note("recover" if alive else "suspect", pid=pid)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the process-global marshaller hook.

        The other hooks die with the deployment; the marshaller's is a
        module global (the stub layer has no runtime reference) and must
        be detached explicitly when several deployments share a process
        (tests do).
        """
        marshal = _marshal_module()
        if marshal._PROFILER is self.profiler:
            marshal.install_profiler(None)

    def publish(self) -> None:
        """Snapshot every instrument into the shared metrics registry."""
        self.profiler.publish(self.deployment.metrics)
        self.load.publish()
        self.slo.publish()
        self.flight.publish()

    # ------------------------------------------------------------------
    # The one-page health report
    # ------------------------------------------------------------------

    def render_report(self) -> str:
        """Deployment health: profile, hot keys, SLO state, the tape."""
        deployment = self.deployment
        width = 68
        lines: List[str] = []

        def section(title: str, body: List[str]) -> None:
            lines.append("")
            lines.append(f"── {title} " + "─" * max(0, width - len(title) - 4))
            lines.extend(f"  {line}" for line in body)

        services = ", ".join(sorted(deployment.services)) or "none"
        lines.append("deployment health report")
        lines.append(f"  virtual time: {deployment.runtime.now():.3f}s   "
                     f"nodes: {len(deployment.nodes)}   "
                     f"services: {services}")
        section("kernel profile", self.profiler.report_lines())
        section("per-shard hot keys", self.load.report_lines())
        section("SLO windows", self.slo.report_lines())
        chain = [entry for entry in self.flight.entries()
                 if entry[2] in ("view-propose", "coord-takeover",
                                 "view-commit", "view-rollback",
                                 "recover-failed")]
        if chain:
            body = []
            for seq, time, kind, fields in chain:
                rendered = " ".join(f"{key}={fields[key]!r}"
                                    for key in sorted(fields))
                body.append(f"[{seq:>5}] t={time:9.4f}s {kind:<14} "
                            f"{rendered}".rstrip())
            section("placement takeover chain", body)
        tape = self.flight.format_dump()
        body = tape.split("\n") if tape else ["(empty)"]
        retained = len(self.flight)
        section(f"flight recorder ({retained}/{self.flight.capacity} "
                f"events, {self.flight.total_noted} noted, "
                f"{len(self.flight.dumps)} dumps)", body)
        return "\n".join(lines)
