"""The flight recorder: the last N control-plane events, always on tape.

Traces and metrics answer "how much"; what post-mortems need is "what
happened *just before* it went wrong", cheaply enough to leave running.
:class:`FlightRecorder` is a bounded ring buffer of causal control-plane
events — suspicion flips, rebinds, migration phase transitions,
backpressure stalls, fast-lane activations — each a ``(seq, virtual
time, kind, fields)`` tuple.  When the ring fills, the oldest entry is
overwritten; capacity bounds memory however long the deployment runs.

Dumps are **deterministic**: :meth:`format_dump` renders only virtual
times, sequence numbers and sorted fields (no wall clock, no object
ids), so two seeded runs of the same scenario produce byte-identical
dumps — which is what makes a dump diffable against a known-good run.
Dumps happen on demand, on an SLO breach (the observatory wires
:class:`~repro.obs.slo.SloTracker.on_breach` here) and on test failure:
``tests/conftest.py`` walks :func:`live_recorders` from a pytest
hookwrapper and attaches each dump to the failing test's report.

Noting an event is a list assignment plus a counter increment; as with
every obs hook, components hold ``None`` instead of a recorder when the
observatory is disabled.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["FlightRecorder", "FlightEntry", "live_recorders"]

#: One recorded event: (seq, virtual time, kind, fields).
FlightEntry = Tuple[int, float, str, Dict[str, Any]]

#: Every live recorder, so the pytest failure hook can find them
#: without plumbing; weak so finished deployments do not accumulate.
_LIVE: "weakref.WeakSet[FlightRecorder]" = weakref.WeakSet()


def live_recorders() -> List["FlightRecorder"]:
    """The flight recorders of every still-referenced deployment."""
    return list(_LIVE)


class FlightRecorder:
    """A bounded ring of control-plane events for one deployment."""

    def __init__(self, metrics: Any, *, capacity: int = 256,
                 clock: Callable[[], float] = lambda: 0.0):
        if capacity < 1:
            raise ValueError("flight-recorder capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self.metrics = metrics
        self._ring: List[Optional[FlightEntry]] = [None] * capacity
        self._seq = 0
        #: (reason, rendered dump) pairs, in dump order.
        self.dumps: List[Tuple[str, str]] = []
        self._notes = metrics.counter("obs.recorder.notes")
        self._dumped = metrics.counter("obs.recorder.dumps")
        self._dropped = metrics.counter("obs.recorder.overwrites")
        _LIVE.add(self)

    # ------------------------------------------------------------------

    def note(self, kind: str, **fields: Any) -> None:
        """Record one control-plane event, overwriting the oldest when
        the ring is full."""
        seq = self._seq
        slot = seq % self.capacity
        if self._ring[slot] is not None:
            self._dropped.inc()
        self._ring[slot] = (seq, self.clock(), kind, fields)
        self._seq = seq + 1
        self._notes.inc()

    def __len__(self) -> int:
        return min(self._seq, self.capacity)

    @property
    def total_noted(self) -> int:
        return self._seq

    def entries(self) -> List[FlightEntry]:
        """The retained events, oldest first."""
        if self._seq <= self.capacity:
            return [e for e in self._ring[:self._seq] if e is not None]
        head = self._seq % self.capacity
        ring = self._ring[head:] + self._ring[:head]
        return [e for e in ring if e is not None]

    # ------------------------------------------------------------------

    def format_dump(self) -> str:
        """Deterministic rendering of the retained tape (virtual times,
        sequence numbers and sorted fields only)."""
        lines = []
        for seq, time, kind, fields in self.entries():
            rendered = " ".join(f"{key}={fields[key]!r}"
                                for key in sorted(fields))
            lines.append(f"[{seq:>5}] t={time:9.4f}s {kind:<18} "
                         f"{rendered}".rstrip())
        return "\n".join(lines)

    def dump(self, reason: str) -> str:
        """Snapshot the tape under ``reason``; returns the rendering."""
        text = self.format_dump()
        self.dumps.append((reason, text))
        self._dumped.inc()
        return text

    def publish(self) -> None:
        self.metrics.gauge("obs.recorder.retained").set(len(self))
        self.metrics.gauge("obs.recorder.seq").set(self._seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlightRecorder {len(self)}/{self.capacity} "
                f"seq={self._seq}>")
