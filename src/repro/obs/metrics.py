"""Counters, gauges and virtual-time histograms.

The metrics half of :mod:`repro.obs`: a single :class:`MetricsRegistry`
per deployment absorbs what used to be scattered ad-hoc counters (most
prominently :class:`repro.net.trace.NetTrace`'s ``collections.Counter``)
so experiments, benchmarks and the trace exporters all read from one
place.  Instruments are created on first use and are deliberately tiny —
a counter increment is one attribute add — because the network fabric
increments them on every message even when tracing is disabled.

Histograms record *virtual-time* observations (handler durations, span
lengths); :meth:`Histogram.summary` reports count/sum/min/max/mean and
the interpolation-free percentiles the benchmarks quote.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (queue depth, kernel step count, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A distribution of virtual-time observations.

    Stores the raw values (simulation runs are small enough that exact
    percentiles beat bucketing) and summarizes on demand.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]); 0 when empty."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        if not self._values:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": min(self._values),
            "max": max(self._values),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Name -> instrument table shared by one deployment.

    Instruments live in separate namespaces per type; asking for a
    counter named like an existing gauge is an error caught by the
    caller's own naming discipline (names are dotted paths such as
    ``net.send`` or ``handler.Reliable_Communication``).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (create on first use) -------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    # -- read-only views --------------------------------------------------

    def value(self, name: str, default: float = 0) -> float:
        """A counter's value without creating it."""
        inst = self._counters.get(name)
        return inst.value if inst is not None else default

    def counter_names(self, prefix: str = "") -> List[str]:
        return [n for n in self._counters if n.startswith(prefix)]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything, as plain data (what the exporters serialize)."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.summary()
                           for n, h in self._histograms.items()},
        }

    def reset(self, prefix: str = "") -> None:
        """Zero counters/gauges and drop histograms under ``prefix``."""
        for name, counter in self._counters.items():
            if name.startswith(prefix):
                counter.value = 0
        for name, gauge in self._gauges.items():
            if name.startswith(prefix):
                gauge.value = 0.0
        for name in [n for n in self._histograms if n.startswith(prefix)]:
            del self._histograms[name]
