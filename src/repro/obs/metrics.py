"""Counters, gauges and virtual-time histograms.

The metrics half of :mod:`repro.obs`: a single :class:`MetricsRegistry`
per deployment absorbs what used to be scattered ad-hoc counters (most
prominently :class:`repro.net.trace.NetTrace`'s ``collections.Counter``)
so experiments, benchmarks and the trace exporters all read from one
place.  Instruments are created on first use and are deliberately tiny —
a counter increment is one attribute add — because the network fabric
increments them on every message even when tracing is disabled.

Histograms record *virtual-time* observations (handler durations, span
lengths); :meth:`Histogram.summary` reports count/sum/min/max/mean and
the interpolation-free percentiles the benchmarks quote.  Raw-sample
storage is bounded by a deterministic reservoir (seeded per instrument
name, Vitter's Algorithm R): below the cap every observation is kept
exactly — which is what keeps the seeded benchmarks byte-identical —
and beyond it percentiles come from a uniform sample while count, sum,
mean, min and max stay exact.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (queue depth, kernel step count, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A distribution of virtual-time observations.

    Keeps every raw value exactly up to ``reservoir`` samples (runs
    small enough for exact percentiles stay exact), then degrades to a
    seeded uniform reservoir (Algorithm R) so memory is bounded however
    long an experiment runs.  ``count``/``total``/``mean`` and min/max
    are tracked exactly regardless; only the percentiles become sampled
    beyond the cap.  The RNG is seeded from the instrument name, so two
    runs of the same workload summarize identically.
    """

    __slots__ = ("name", "_values", "_count", "_sum", "_min", "_max",
                 "_cap", "_rng")

    #: Default raw-sample cap; far above what any shipped benchmark
    #: observes per instrument, so existing summaries are unchanged.
    DEFAULT_RESERVOIR = 65536

    def __init__(self, name: str, *, reservoir: Optional[int] = None):
        self.name = name
        cap = self.DEFAULT_RESERVOIR if reservoir is None else reservoir
        if cap < 1:
            raise ValueError("histogram reservoir must be >= 1")
        self._cap = cap
        self._values: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0
        # Lazily created: most histograms never reach the cap.
        self._rng: Optional[random.Random] = None

    def observe(self, value: float) -> None:
        count = self._count = self._count + 1
        self._sum += value
        if count == 1:
            self._min = self._max = value
        elif value < self._min:
            self._min = value
        elif value > self._max:
            self._max = value
        if len(self._values) < self._cap:
            self._values.append(value)
            return
        rng = self._rng
        if rng is None:
            rng = self._rng = random.Random(
                zlib.crc32(self.name.encode("utf-8")) ^ self._cap)
        slot = rng.randrange(count)
        if slot < self._cap:
            self._values[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def samples(self) -> List[float]:
        """The retained raw values (exact below the reservoir cap)."""
        return list(self._values)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]); 0 when empty."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        if not self._count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Name -> instrument table shared by one deployment.

    Instruments live in separate namespaces per type; asking for a
    counter named like an existing gauge is an error caught by the
    caller's own naming discipline (names are dotted paths such as
    ``net.send`` or ``handler.Reliable_Communication``).
    """

    def __init__(self, *, default_reservoir: Optional[int] = None) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._default_reservoir = default_reservoir

    # -- instrument access (create on first use) -------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(
                name, reservoir=self._default_reservoir)
        return inst

    # -- read-only views --------------------------------------------------

    def value(self, name: str, default: float = 0) -> float:
        """A counter's value without creating it."""
        inst = self._counters.get(name)
        return inst.value if inst is not None else default

    def counter_names(self, prefix: str = "") -> List[str]:
        return [n for n in self._counters if n.startswith(prefix)]

    def histogram_names(self, prefix: str = "") -> List[str]:
        return [n for n in self._histograms if n.startswith(prefix)]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything, as plain data (what the exporters serialize)."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.summary()
                           for n, h in self._histograms.items()},
        }

    def reset(self, prefix: str = "") -> None:
        """Zero counters/gauges and drop histograms under ``prefix``."""
        for name, counter in self._counters.items():
            if name.startswith(prefix):
                counter.value = 0
        for name, gauge in self._gauges.items():
            if name.startswith(prefix):
                gauge.value = 0.0
        for name in [n for n in self._histograms if n.startswith(prefix)]:
            del self._histograms[name]
