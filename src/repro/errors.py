"""Exception hierarchy shared across the repro packages.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
Task cancellation intentionally derives from :class:`BaseException` (mirroring
``asyncio.CancelledError``) so that micro-protocol code using broad
``except Exception`` clauses cannot accidentally swallow a kill request from
the Terminate Orphan micro-protocol or a simulated node crash.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TaskCancelled(BaseException):
    """Raised inside a task that has been cancelled.

    Derives from ``BaseException`` (like ``asyncio.CancelledError``) so it
    propagates through ordinary ``except Exception`` handlers.  The simulated
    node crash machinery and the Terminate Orphan micro-protocol both rely on
    this to tear down server threads cleanly.
    """


class KernelError(ReproError):
    """The simulation kernel was used incorrectly (e.g. nested ``run``)."""


class NoCurrentTask(KernelError):
    """A kernel trap was awaited outside of any running task."""


class ConfigurationError(ReproError):
    """An invalid micro-protocol configuration was requested.

    Raised when a selection of micro-protocols violates the dependency
    graph of Figure 4 in the paper (e.g. Total Order without Unique
    Execution, or both Synchronous Call and Asynchronous Call chosen).
    """


class DependencyError(ConfigurationError):
    """A micro-protocol dependency edge from Figure 4 is unsatisfied."""


class ChoiceError(ConfigurationError):
    """More than one micro-protocol from an exclusive choice group chosen."""


class RPCError(ReproError):
    """Base class for errors surfaced through the RPC public API."""


class RPCTimeout(RPCError):
    """A bounded-termination deadline expired before the call completed."""


class RPCAborted(RPCError):
    """The call was aborted (e.g. the client node crashed mid-call)."""


class UnknownCallError(RPCError):
    """An operation or call id could not be resolved."""


class BindingError(RPCError):
    """A service name could not be bound to a server group."""


class MarshalError(ReproError):
    """Arguments could not be marshalled or unmarshalled."""


class NodeDown(ReproError):
    """An operation was attempted on a crashed simulated node."""


class StableStoreError(ReproError):
    """Stable storage was used incorrectly (e.g. loading a bad address)."""


class MembershipError(ReproError):
    """The membership service was queried for an unknown process."""


class PlacementError(ReproError):
    """The placement plane was misused (empty ring, unknown shard...)."""


class MigrationError(PlacementError):
    """A live key migration could not complete safely."""


class ViewError(PlacementError):
    """The replicated placement-view plane was misused (malformed view
    blob, backwards epoch commit, no live metadata replica...)."""


class AdaptationError(ReproError):
    """A live micro-protocol reconfiguration could not complete safely
    (drain timeout, concurrent adaptation of the same service, ...).

    Raised by :class:`repro.adapt.engine.AdaptationManager` strictly
    *before* any handler has been touched: a failed adaptation leaves the
    running composition exactly as it was."""
