"""Multi-seed replication helpers."""

import pytest

from repro import LinkSpec, ServiceCluster
from repro.apps import KVStore
from repro.bench import (
    ClosedLoopWorkload,
    read_only_workload,
    replicate,
    significantly_different,
)
from repro.core.config import read_optimized


def test_replicate_aggregates():
    rep = replicate(lambda seed: float(seed), seeds=[1, 2, 3, 4, 5])
    assert rep.mean == 3.0
    assert rep.samples == (1.0, 2.0, 3.0, 4.0, 5.0)
    assert rep.stdev == pytest.approx(1.5811, abs=1e-3)
    assert rep.low < 3.0 < rep.high
    assert "n=5" in str(rep)


def test_replicate_single_seed_has_zero_interval():
    rep = replicate(lambda seed: 7.0, seeds=[0])
    assert rep.mean == 7.0
    assert rep.ci95 == 0.0


def test_replicate_requires_seeds():
    with pytest.raises(ValueError):
        replicate(lambda seed: 0.0, seeds=[])


def test_significance_check():
    tight_low = replicate(lambda s: 1.0 + s * 0.001, seeds=range(5))
    tight_high = replicate(lambda s: 2.0 + s * 0.001, seeds=range(5))
    wide = replicate(lambda s: 0.2 + s * 0.5, seeds=range(5))
    assert significantly_different(tight_low, tight_high)
    assert not significantly_different(tight_low, wide)
    assert not significantly_different(tight_low, tight_low)


def test_replicated_latency_comparison_end_to_end():
    """The Section-5 claim, now with error bars: acceptance=1 beats
    acceptance=ALL significantly across seeds."""
    def mean_latency(acceptance):
        def measure(seed):
            spec = read_optimized(timebound=5.0, acceptance=acceptance)
            cluster = ServiceCluster(
                spec, KVStore, n_servers=3, seed=seed,
                default_link=LinkSpec(delay=0.01, jitter=0.01))
            cluster.make_slow(3, 0.2)
            workload = ClosedLoopWorkload(
                lambda i: read_only_workload(seed=i),
                calls_per_client=10)
            return workload.run(cluster).latency_stats().mean
        return measure

    fast = replicate(mean_latency(1), seeds=range(5))
    slow = replicate(mean_latency(3), seeds=range(5))
    assert significantly_different(fast, slow)
    assert fast.mean < slow.mean
