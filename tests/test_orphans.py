"""Orphan handling semantics: interference avoidance, orphan termination.

Scenario template (the paper's motivating example): a client issues a
slow request, crashes, recovers with a new incarnation number, and issues
new requests while the orphaned computation is still running at the
server.
"""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import BankApp, KVStore

FAST = LinkSpec(delay=0.005, jitter=0.0)


def slow_kv(pid):
    return KVStore(op_delay=0.5)


def make_cluster(orphans, *, app=slow_kv, execution="none", n_servers=1,
                 bounded=10.0, **kwargs):
    spec = ServiceSpec(orphans=orphans, bounded=bounded, unique=True,
                       execution=execution)
    return ServiceCluster(spec, app, n_servers=n_servers,
                          default_link=FAST, **kwargs)


def crash_recover_scenario(cluster, *, crash_at=0.1, recover_at=0.3):
    """Client starts a slow put, dies, reincarnates, writes again."""
    client = cluster.client
    outcome = {}

    async def first_call():
        await cluster.call(client, "put", {"key": "orphaned", "value": 1})

    async def second_call():
        outcome["second"] = await cluster.call(
            client, "put", {"key": "fresh", "value": 2})

    async def scenario():
        cluster.spawn_client(client, first_call())
        await cluster.runtime.sleep(crash_at)
        cluster.crash(client)
        await cluster.runtime.sleep(recover_at - crash_at)
        cluster.recover(client)
        task = cluster.spawn_client(client, second_call())
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=3.0)
    return outcome


def test_ignore_orphans_lets_orphan_finish():
    cluster = make_cluster("none")
    outcome = crash_recover_scenario(cluster)
    assert outcome["second"].ok
    app = cluster.app(1)
    # The orphaned computation ran to completion alongside the new call.
    assert app.data.get("orphaned") == 1
    assert app.data.get("fresh") == 2


def test_interference_avoidance_defers_new_generation():
    cluster = make_cluster("avoid")
    outcome = crash_recover_scenario(cluster)
    assert outcome["second"].ok
    app = cluster.app(1)
    log_keys = [k for kind, k, _ in app.apply_log]
    # Both executed, but the orphan finished BEFORE the new incarnation's
    # call started (interference avoidance's whole point).
    assert log_keys == ["orphaned", "fresh"]


def test_interference_avoidance_old_incarnation_messages_dropped():
    cluster = make_cluster("avoid")
    crash_recover_scenario(cluster)
    ia = cluster.grpc(1).micro("Interference_Avoidance")
    info = ia.cinfo[cluster.client]
    assert info.inc == 2          # new generation admitted
    assert info.count == 0        # and fully drained


def test_terminate_orphan_kills_running_computation():
    cluster = make_cluster("terminate")
    outcome = crash_recover_scenario(cluster)
    assert outcome["second"].ok
    app = cluster.app(1)
    to = cluster.grpc(1).micro("Terminate_Orphan")
    assert to.kills == 1
    # The orphan was killed mid-flight: its put never landed.
    assert "orphaned" not in app.data
    assert app.data.get("fresh") == 2


def test_terminate_orphan_does_not_kill_completed_work():
    # Crash the client AFTER the slow call finished: nothing to kill.
    cluster = make_cluster("terminate", app=lambda pid: KVStore())
    client = cluster.client

    async def scenario():
        task = cluster.spawn_client(
            client, _put(cluster, client, "done", 1))
        await cluster.runtime.join(task)
        cluster.crash(client)
        await cluster.runtime.sleep(0.1)
        cluster.recover(client)
        task = cluster.spawn_client(
            client, _put(cluster, client, "fresh", 2))
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=1.0)
    to = cluster.grpc(1).micro("Terminate_Orphan")
    assert to.kills == 0
    assert cluster.app(1).data == {"done": 1, "fresh": 2}


def test_terminate_orphan_without_atomicity_can_break_invariants():
    # An orphan kill mid-transfer abandons the half-done stable writes —
    # the taxonomy's predicted interaction between orphan termination and
    # (non-)atomic execution.
    cluster = make_cluster(
        "terminate",
        app=lambda pid: BankApp({"alice": 100, "bob": 100},
                                transfer_delay=0.5))
    client = cluster.client

    async def transfer():
        await cluster.call(client, "transfer",
                           {"src": "alice", "dst": "bob", "amount": 30})

    async def scenario():
        cluster.spawn_client(client, transfer())
        await cluster.runtime.sleep(0.1)   # mid-transfer (delay 0.5)
        cluster.crash(client)
        await cluster.runtime.sleep(0.1)
        cluster.recover(client)
        task = cluster.spawn_client(
            client,
            _call(cluster, client, "balance", {"account": "alice"}))
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=2.0)
    stable = cluster.node(1).stable
    assert stable.get("acct:alice") == 70   # debit persisted
    assert stable.get("acct:bob") == 100    # credit never happened


def test_serial_execution_gate_released_after_orphan_kill():
    # With Serial Execution, killing the executing orphan must release
    # the gate or the server wedges forever.
    cluster = make_cluster("terminate", execution="serial")
    outcome = crash_recover_scenario(cluster)
    assert outcome["second"].ok
    grpc = cluster.grpc(1)
    assert grpc.serial.value == 1  # gate free again
    # And the server still works:
    res = cluster.call_and_run("get", {"key": "fresh"}, extra_time=1.0)
    assert res.ok and res.args == 2


def _put(cluster, client, key, value):
    async def inner():
        await cluster.call(client, "put", {"key": key, "value": value})
    return inner()


def _call(cluster, client, op, args):
    async def inner():
        await cluster.call(client, op, args)
    return inner()
