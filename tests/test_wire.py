"""The wire pipeline: coalescing, backpressure, fast lane, crash safety."""

import asyncio

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status, WireConfig
from repro.apps import KVStore
from repro.membership.detector import Heartbeat, HeartbeatDetector
from repro.net import (
    NetworkFabric,
    Node,
    UnreliableTransport,
    WireBatch,
    wire_size,
)
from repro.runtime import AsyncioRuntime, SimRuntime
from repro.sim import RandomSource
from repro.xkernel import Protocol, TypeDemux, compose_stack

FAST = LinkSpec(delay=0.02, jitter=0.0)


class Collector(Protocol):
    """Top protocol recording everything popped up to it."""

    def __init__(self, name="collector"):
        super().__init__(name)
        self.received = []

    async def pop(self, payload, sender):
        self.received.append((sender, payload))


def build_pair(runtime, pids=(1, 2), **fabric_kwargs):
    fabric_kwargs.setdefault("default_link", FAST)
    fabric = NetworkFabric(runtime, **fabric_kwargs)
    nodes, tops = {}, {}
    for pid in pids:
        node = Node(pid, runtime, fabric)
        top = Collector(f"top@{pid}")
        compose_stack(top, UnreliableTransport(node))
        node.start()
        nodes[pid], tops[pid] = node, top
    return fabric, nodes, tops


# ----------------------------------------------------------------------
# WireConfig / WireBatch basics
# ----------------------------------------------------------------------

def test_wire_config_validates():
    with pytest.raises(ValueError):
        WireConfig(max_batch_msgs=0)
    with pytest.raises(ValueError):
        WireConfig(max_batch_bytes=0)
    with pytest.raises(ValueError):
        WireConfig(queue_depth=-1)


def test_wire_batch_surface():
    batch = WireBatch(["a", "bb"])
    assert len(batch) == 2
    assert list(batch) == ["a", "bb"]
    assert batch.wire_size() == 5 + wire_size("a") + wire_size("bb")
    assert wire_size(batch) == batch.wire_size()  # defers to the method
    assert "n=2" in repr(batch) and "str" in repr(batch)
    with pytest.raises(ValueError):
        WireBatch([])


def test_heartbeat_is_a_control_payload():
    from repro.net.wire import is_control

    assert is_control(Heartbeat(1, 1))
    assert not is_control("bulk")
    assert not is_control(WireBatch(["x"]))
    # The marker is a class attribute, not a field: it never travels.
    assert "wire_control" not in Heartbeat.__dataclass_fields__


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------

def test_round_coalescing_batches_shared_link_messages():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt, wire=WireConfig(batch=True))
    metrics = fabric.trace.metrics

    async def main():
        for i in range(8):
            await nodes[1].transport.push(2, f"m{i}")
        await rt.sleep(1.0)

    rt.run(main())
    # All eight messages arrived, in order, but in ONE envelope.
    assert [p for _, p in tops[2].received] == [f"m{i}" for i in range(8)]
    assert fabric.trace.sends == 8
    assert fabric.trace.deliveries == 8
    assert metrics.value("net.envelopes") == 1
    assert metrics.value("net.batch.envelopes") == 1
    assert metrics.value("net.batch.messages") == 8
    assert metrics.value("net.batch.flush.round") == 1
    hist = metrics.histogram("net.batch.flush.1-2")
    assert hist.count == 1 and hist.mean == 8


def test_separate_rounds_do_not_coalesce():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt, wire=WireConfig(batch=True))

    async def main():
        await nodes[1].transport.push(2, "a")
        await rt.sleep(0.001)          # new scheduling round
        await nodes[1].transport.push(2, "b")
        await rt.sleep(1.0)

    rt.run(main())
    assert len(tops[2].received) == 2
    assert fabric.trace.metrics.value("net.envelopes") == 2


def test_size_caps_flush_early():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, wire=WireConfig(batch=True, max_batch_msgs=4))
    metrics = fabric.trace.metrics

    async def main():
        for i in range(10):
            await nodes[1].transport.push(2, i)
        await rt.sleep(1.0)

    rt.run(main())
    assert len(tops[2].received) == 10
    # 4 + 4 at the message cap, then 2 on the round flush.
    assert metrics.value("net.batch.flush.cap") == 2
    assert metrics.value("net.batch.flush.round") == 1
    assert metrics.value("net.envelopes") == 3


def test_byte_cap_flushes_early():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, wire=WireConfig(batch=True, max_batch_bytes=40))

    async def main():
        for i in range(4):
            await nodes[1].transport.push(2, "x" * 30)  # 35 bytes each
        await rt.sleep(1.0)

    rt.run(main())
    assert len(tops[2].received) == 4
    assert fabric.trace.metrics.value("net.batch.flush.cap") >= 1


def test_single_message_round_travels_unbatched():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt, wire=WireConfig(batch=True))

    async def main():
        await nodes[1].transport.push(2, "solo")
        await rt.sleep(1.0)

    rt.run(main())
    # A buffer of one flushes as the bare payload, not a WireBatch.
    assert tops[2].received == [(1, "solo")]
    assert not any(isinstance(p, WireBatch) for _, p in tops[2].received)


def test_batching_defaults_off_with_identical_accounting():
    def run(wire):
        rt = SimRuntime()
        fabric, nodes, tops = build_pair(
            rt, rand=RandomSource(5), wire=wire,
            default_link=LinkSpec(delay=0.02, jitter=0.01, loss=0.1))

        async def main():
            for i in range(50):
                await nodes[1].transport.push(2, i)
                if i % 10 == 9:
                    await rt.sleep(0.01)
            await rt.sleep(1.0)

        rt.run(main())
        return ([p for _, p in tops[2].received], dict(fabric.trace.counts),
                fabric.trace.metrics.value("net.envelopes"))

    default_payloads, default_counts, default_envelopes = run(None)
    explicit_payloads, explicit_counts, _ = run(WireConfig())
    # The default config IS the old per-message path: one envelope per
    # send, and an explicitly-constructed default behaves identically.
    assert default_envelopes == default_counts["send"]
    assert explicit_payloads == default_payloads
    assert explicit_counts == default_counts


def test_batched_and_unbatched_deliver_the_same_messages():
    def run(batch):
        rt = SimRuntime()
        fabric, nodes, tops = build_pair(
            rt, wire=WireConfig(batch=batch))

        async def main():
            for i in range(20):
                await nodes[1].transport.push(2, i)
            await rt.sleep(1.0)

        rt.run(main())
        return ([p for _, p in tops[2].received],
                fabric.trace.metrics.value("net.envelopes"))

    plain, plain_envelopes = run(False)
    batched, batched_envelopes = run(True)
    assert batched == plain        # same payloads, same order
    assert plain_envelopes == 20
    # 16 at the default message cap + 4 on the round flush: 10x fewer.
    assert batched_envelopes == 2


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------

def test_backpressure_blocks_senders_at_the_budget():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt, wire=WireConfig(queue_depth=2))
    metrics = fabric.trace.metrics
    done_at = []

    async def main():
        for i in range(6):
            await nodes[1].transport.push(2, i)
        done_at.append(rt.now())
        await rt.sleep(1.0)

    rt.run(main())
    assert len(tops[2].received) == 6
    # Budget 2, delivery frees a credit after the 0.02s link delay: the
    # sender could not complete all six pushes at t=0.
    assert done_at[0] >= 0.04
    assert metrics.value("net.queue.waits") >= 2
    assert fabric.pipeline.inflight(1, 2) == 0
    assert metrics.gauge("net.queue.depth.1-2").value == 0


def test_backpressure_credits_return_on_drop_paths():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, rand=RandomSource(42), wire=WireConfig(queue_depth=1),
        default_link=LinkSpec(delay=0.02, jitter=0.0, loss=1.0))

    async def main():
        for i in range(5):
            await nodes[1].transport.push(2, i)
        await rt.sleep(1.0)

    rt.run(main())
    # Every message was lost, yet no sender deadlocked: the fabric
    # resolves dropped envelopes synchronously, returning the budget.
    assert tops[2].received == []
    assert fabric.trace.losses == 5
    assert fabric.pipeline.inflight(1, 2) == 0


def test_backpressure_credits_survive_duplication():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, rand=RandomSource(3), wire=WireConfig(queue_depth=1),
        default_link=LinkSpec(delay=0.02, jitter=0.0, duplicate=1.0))

    async def main():
        for i in range(4):
            await nodes[1].transport.push(2, i)
        await rt.sleep(1.0)

    rt.run(main())
    # Both copies of each send share one idempotent resolver: the budget
    # comes back exactly once per message, not once per copy.
    assert len(tops[2].received) == 8
    assert fabric.pipeline.inflight(1, 2) == 0
    assert fabric.pipeline._links[(1, 2)].credits.value == 1


# ----------------------------------------------------------------------
# Control fast lane (the heartbeat head-of-line regression)
# ----------------------------------------------------------------------

def _run_heartbeats_under_bulk_load(fast_lane):
    """Node 1 heartbeats node 2 while drowning the 1->2 link in bulk
    sends; returns the membership changes node 2's detector observed."""
    rt = SimRuntime()
    fabric, nodes, _ = build_pair(
        rt, wire=WireConfig(queue_depth=2, fast_lane=fast_lane))
    demuxes = {}
    for pid, node in nodes.items():
        demux = TypeDemux(f"hb-demux@{pid}")
        compose_stack(demux, node.transport)
        demuxes[pid] = demux
    sender = HeartbeatDetector(nodes[1], [2], interval=0.05,
                               suspect_after=3)
    demuxes[1].attach(Heartbeat, sender)
    monitor = HeartbeatDetector(nodes[2], [1], interval=0.05,
                                suspect_after=3)
    demuxes[2].attach(Heartbeat, monitor)
    changes = []
    monitor.listeners.append(lambda pid, change: changes.append(change))

    async def bulk(i):
        await nodes[1].transport.push(2, f"bulk-{i}")

    async def main():
        # 60 one-shot senders against a budget of 2 on a 0.02s link:
        # the queue drains at ~100 msgs/s, so the backlog takes ~0.6s —
        # far past the detector's 0.15s suspicion deadline.
        for i in range(60):
            nodes[1].spawn(bulk(i), name=f"bulk-{i}", daemon=True)
        sender.start()
        monitor.start()
        await rt.sleep(1.2)

    rt.run(main())
    return changes, fabric.trace.metrics.value("net.fastlane.sends")


def test_heartbeats_queued_behind_bulk_cause_false_suspicion():
    changes, fastlane_sends = _run_heartbeats_under_bulk_load(
        fast_lane=False)
    assert fastlane_sends == 0
    from repro.core.messages import MemChange
    assert MemChange.FAILURE in changes   # the regression


def test_fast_lane_prevents_false_suspicion_under_bulk_load():
    changes, fastlane_sends = _run_heartbeats_under_bulk_load(
        fast_lane=True)
    assert fastlane_sends > 0
    from repro.core.messages import MemChange
    assert MemChange.FAILURE not in changes


# ----------------------------------------------------------------------
# Crash safety
# ----------------------------------------------------------------------

def test_crash_drops_buffered_outbound_messages():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt, wire=WireConfig(batch=True))

    async def main():
        for i in range(3):
            await nodes[1].transport.push(2, i)
        assert fabric.pipeline.buffered(src=1) == 3
        nodes[1].crash()   # same round: the flush timer has not fired
        await rt.sleep(1.0)

    rt.run(main())
    # A down site cannot transmit: nothing escaped on the flush timer.
    assert tops[2].received == []
    assert fabric.pipeline.buffered() == 0
    assert fabric.trace.counts["drop-src-down"] == 3
    assert fabric.trace.metrics.value("net.batch.envelopes") == 0


def test_recovered_node_sends_again_through_the_pipeline():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt, wire=WireConfig(batch=True))

    async def main():
        await nodes[1].transport.push(2, "pre")
        nodes[1].crash()
        await rt.sleep(0.1)
        nodes[1].recover()
        await nodes[1].transport.push(2, "post")
        await rt.sleep(1.0)

    rt.run(main())
    assert [p for _, p in tops[2].received] == ["post"]


# ----------------------------------------------------------------------
# Per-link delivery metrics
# ----------------------------------------------------------------------

def test_link_metrics_record_per_link_delivery_and_latency():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, wire=WireConfig(batch=True, link_metrics=True))
    metrics = fabric.trace.metrics

    async def main():
        for i in range(5):
            await nodes[1].transport.push(2, i)
        await rt.sleep(1.0)

    rt.run(main())
    assert metrics.value("net.link.delivered.1-2") == 5
    hist = metrics.histogram("net.link.latency.1-2")
    assert hist.count == 1    # one coalesced envelope
    assert hist.mean == pytest.approx(0.02)


# ----------------------------------------------------------------------
# End-to-end: full service stacks over a batching + budgeted pipeline
# ----------------------------------------------------------------------

def test_full_cluster_calls_work_over_batching_and_backpressure():
    cluster = ServiceCluster(
        ServiceSpec(bounded=5.0, unique=True), KVStore, n_servers=3,
        default_link=FAST,
        wire=WireConfig(batch=True, queue_depth=8))
    result = cluster.call_and_run("put", {"key": "k", "value": 7},
                                  extra_time=0.5)
    assert result.status is Status.OK
    result = cluster.call_and_run("get", {"key": "k"}, extra_time=0.5)
    assert result.args == 7
    metrics = cluster.metrics
    assert metrics.value("net.batch.envelopes") > 0
    # Coalescing never costs envelopes (it only merges shared links).
    assert metrics.value("net.envelopes") <= metrics.value("net.send")


def test_asyncio_runtime_drives_the_same_pipeline():
    async def main():
        cluster = ServiceCluster(
            ServiceSpec(bounded=2.0), KVStore, n_servers=3,
            default_link=LinkSpec(delay=0.002, jitter=0.001),
            runtime=AsyncioRuntime(),
            wire=WireConfig(batch=True, queue_depth=8))
        result = await cluster.call(cluster.client, "put",
                                    {"key": "k", "value": "v"})
        assert result.status is Status.OK
        result = await cluster.call(cluster.client, "get", {"key": "k"})
        assert result.args == "v"
        await asyncio.sleep(0.05)
        assert cluster.metrics.value("net.envelopes") <= \
            cluster.metrics.value("net.send")

    asyncio.run(main())


# ----------------------------------------------------------------------
# Batch-cap auto-tuning
# ----------------------------------------------------------------------

def test_auto_tune_defaults_off_and_validates():
    assert WireConfig().auto_tune is False
    rt = SimRuntime()
    fabric, _, _ = build_pair(rt, wire=WireConfig(batch=True))
    assert fabric.pipeline.auto_tune is False
    with pytest.raises(ValueError):
        WireConfig(tune_interval=0.0)


def test_auto_tune_grows_caps_under_cap_flush_load():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, wire=WireConfig(batch=True, max_batch_msgs=4,
                            auto_tune=True, tune_interval=0.05))
    pipeline = fabric.pipeline

    async def main():
        # Sustained bursts well past the message cap: every flush is a
        # cap flush, so each tune tick should double the caps.
        for _ in range(40):
            for i in range(16):
                await nodes[1].transport.push(2, i)
            await rt.sleep(0.02)
        await rt.sleep(1.0)

    rt.run(main())
    assert pipeline.max_batch_msgs > 4
    assert pipeline.tune_adjustments >= 1
    metrics = fabric.trace.metrics
    assert metrics.value("net.batch.tune.adjust") >= 1
    assert metrics.gauge("net.batch.tuned.msgs").value == \
        pipeline.max_batch_msgs
    # Everything still arrived exactly once.
    assert len(tops[2].received) == 40 * 16


def test_auto_tune_shrinks_oversized_caps():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, wire=WireConfig(batch=True, max_batch_msgs=128,
                            max_batch_bytes=1 << 16,
                            auto_tune=True, tune_interval=0.05))
    pipeline = fabric.pipeline

    async def main():
        # A trickle: one or two messages per round, far below the cap.
        for _ in range(60):
            await nodes[1].transport.push(2, "tick")
            await rt.sleep(0.01)
        await rt.sleep(1.0)

    rt.run(main())
    assert pipeline.max_batch_msgs < 128
    assert pipeline.max_batch_msgs >= pipeline.TUNE_MIN_MSGS
    assert len(tops[2].received) == 60


def test_auto_tune_is_deterministic_and_idles_quietly():
    def run_once():
        rt = SimRuntime()
        fabric, nodes, tops = build_pair(
            rt, wire=WireConfig(batch=True, max_batch_msgs=4,
                                auto_tune=True, tune_interval=0.05))

        async def main():
            for _ in range(10):
                for i in range(12):
                    await nodes[1].transport.push(2, i)
                await rt.sleep(0.02)
            await rt.sleep(1.0)

        rt.run(main())
        # The tick timer rearms only on traffic: once the run drains,
        # the kernel has no pending tune timers and idles out.
        rt.run_until_idle()
        return (fabric.pipeline.max_batch_msgs,
                fabric.pipeline.max_batch_bytes,
                fabric.pipeline.tune_adjustments,
                [p for _, p in tops[2].received])

    assert run_once() == run_once()
