"""Unit tests for the benchmark support package."""

import pytest

from repro import LinkSpec
from repro.apps import KVStore
from repro.bench import (
    ClosedLoopWorkload,
    Experiment,
    RunConfig,
    banner,
    counter_workload,
    kv_workload,
    read_only_workload,
    render_series,
    render_table,
    run_one,
    summarize,
)
from repro.core.config import read_optimized


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------

def test_summarize_basic():
    stats = summarize([0.001, 0.002, 0.003, 0.004])
    assert stats.count == 4
    assert stats.mean == pytest.approx(0.0025)
    assert stats.minimum == 0.001
    assert stats.maximum == 0.004
    assert stats.p50 in (0.002, 0.003)


def test_summarize_percentiles_monotone():
    stats = summarize([i / 1000 for i in range(1, 101)])
    assert stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum
    assert stats.p50 == pytest.approx(0.050)
    assert stats.p95 == pytest.approx(0.095)


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        summarize([])


def test_scaled_and_str():
    stats = summarize([0.01, 0.02])
    ms = stats.scaled(1000.0)
    assert ms.mean == pytest.approx(15.0)
    assert "mean=" in str(stats)


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------

def test_kv_workload_is_deterministic_per_seed():
    a = [next(kv_workload(seed=3)) for _ in range(1)]
    gen1 = kv_workload(seed=3)
    gen2 = kv_workload(seed=3)
    assert [next(gen1) for _ in range(20)] == \
        [next(gen2) for _ in range(20)]
    gen3 = kv_workload(seed=4)
    assert [next(gen1) for _ in range(20)] != \
        [next(gen3) for _ in range(20)]


def test_kv_workload_respects_read_ratio():
    gen = kv_workload(read_ratio=1.0, seed=0)
    ops = [next(gen)[0] for _ in range(50)]
    assert set(ops) == {"get"}
    gen = kv_workload(read_ratio=0.0, seed=0)
    ops = [next(gen)[0] for _ in range(50)]
    assert set(ops) == {"put"}


def test_read_only_workload_only_reads():
    gen = read_only_workload(seed=1)
    assert all(next(gen)[0] == "get" for _ in range(20))


def test_counter_workload_unique_tags():
    gen = counter_workload()
    tags = [next(gen)[1]["tag"] for _ in range(10)]
    assert tags == list(range(10))


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

def test_render_table_alignment_and_floats():
    out = render_table(["name", "value"], [["a", 1.23456], ["long", 2]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "1.235" in out
    assert len(lines) == 4


def test_render_series_bars_scale():
    out = render_series("x", "y", [(1, 10.0), (2, 20.0)], width=10)
    lines = out.splitlines()
    assert lines[-1].count("#") == 10       # peak gets full width
    assert 4 <= lines[-2].count("#") <= 6   # half peak ~ half width


def test_render_series_empty():
    assert "(no data)" in render_series("x", "y", [])


def test_banner_contains_title():
    out = banner("Figure 9", "sub")
    assert "Figure 9" in out and "sub" in out


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def small_config(label="run", **overrides):
    defaults = dict(
        label=label, spec=read_optimized(timebound=5.0),
        app_factory=KVStore, n_servers=2, calls_per_client=10,
        make_ops=lambda i: kv_workload(seed=i),
        default_link=LinkSpec(delay=0.005, jitter=0.002))
    defaults.update(overrides)
    return RunConfig(**defaults)


def test_run_one_produces_measurements():
    outcome = run_one(small_config())
    assert outcome.result.calls == 10
    assert outcome.result.ok_ratio == 1.0
    assert outcome.result.throughput > 0
    assert outcome.result.messages_per_call > 0
    assert outcome.latency.count == 10
    assert outcome.metric("throughput") == outcome.result.throughput
    assert outcome.metric("mean") == outcome.latency.mean
    with pytest.raises(KeyError):
        outcome.metric("nonsense")


def test_run_one_requires_workload():
    with pytest.raises(ValueError):
        run_one(small_config(make_ops=None))


def test_run_one_is_deterministic():
    first = run_one(small_config())
    second = run_one(small_config())
    assert first.result.latencies == second.result.latencies


def test_mutate_cluster_hook():
    slowed = []
    outcome = run_one(small_config(
        mutate_cluster=lambda c: (c.make_slow(2, 0.5),
                                  slowed.append(True))))
    assert slowed == [True]
    assert outcome.result.ok_ratio == 1.0


def test_experiment_table_renders_all_runs():
    exp = Experiment("unit", "test experiment")
    exp.run(small_config(label="alpha"))
    exp.run(small_config(label="beta", n_servers=3))
    table = exp.table(extra_columns={"servers":
                                     lambda o: o.config.n_servers})
    assert "alpha" in table and "beta" in table
    assert "servers" in table
    assert "unit" in table


def test_closed_loop_think_time_stretches_duration():
    from repro import ServiceCluster

    def build():
        return ServiceCluster(read_optimized(timebound=5.0), KVStore,
                              n_servers=1,
                              default_link=LinkSpec(delay=0.001,
                                                    jitter=0.0))

    fast = ClosedLoopWorkload(lambda i: read_only_workload(seed=i),
                              calls_per_client=5).run(build())
    slow = ClosedLoopWorkload(lambda i: read_only_workload(seed=i),
                              calls_per_client=5,
                              think_time=0.1).run(build())
    assert slow.duration > fast.duration + 0.4
